//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and
//! `BenchmarkId::from_parameter`.
//!
//! Each benchmark runs a short warm-up plus `sample_size` timed
//! iterations and prints the mean wall-clock time — enough to compare
//! configurations by eye; no statistics, plotting, or HTML reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed_ns: 0.0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    let per_iter = bencher.elapsed_ns / bencher.iters.max(1) as f64;
    println!("bench {label}: {:.1} ns/iter ({} iters)", per_iter, bencher.iters);
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs the routine once as warm-up, then `iters` timed repetitions.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and parameter.
    pub fn new(name: impl Into<String>, p: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{p}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::from_parameter("case"), |b| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_ids_accept_strs_and_params() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        let _ = BenchmarkId::new("f", 32);
    }
}
