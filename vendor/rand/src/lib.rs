//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open and inclusive primitive ranges.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the real crate cannot be fetched. The generator here is splitmix64 —
//! deterministic for a given seed, statistically fine for synthetic data
//! and fault schedules, and **not** a reproduction of the upstream
//! stream (code seeding `rand` must not expect upstream's exact values).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset used: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample from itself.
///
/// Implemented generically over [`SampleUniform`] item types so type
/// inference links the range's item type to the sampled type, exactly as
/// upstream `rand` does (e.g. `x_f32 + rng.gen_range(-0.2..0.2)` infers
/// an `f32` range).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from half-open and inclusive bounds.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                // 24 uniform high bits in [0, 1).
                let unit = (rng.next_u64() >> 40) as $t / (1u64 << 24) as $t;
                let v = lo + (hi - lo) * unit;
                // Rounding can land exactly on the excluded endpoint.
                if v >= hi { lo } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 40) as $t / ((1u64 << 24) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1000),
                b.gen_range(0usize..1000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&x), "{x}");
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n), "{n}");
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i), "{i}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
