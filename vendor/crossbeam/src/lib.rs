//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace
//! uses: scoped threads (`crossbeam::scope`, `Scope::spawn`,
//! `ScopedJoinHandle::join`), implemented on [`std::thread::scope`].
//!
//! Behavioral difference from upstream: a panicking child thread panics
//! the calling thread when the scope joins (std semantics) instead of
//! surfacing as `Err` from [`scope`] — every call site in this workspace
//! immediately `expect`s the result, so the observable outcome is the
//! same.

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads.

    /// Result of joining a scope or a scoped thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handed to the [`scope`] closure; spawns borrow-carrying
    /// threads that are joined before the scope returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope itself (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before
    /// this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this stand-in (child panics propagate as
    /// panics at join time instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_mutate_disjointly() {
        let mut data = vec![0u32; 4];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(2).collect();
        crate::scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 2 + j) as u32 + 1;
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn join_returns_value() {
        let out = crate::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().expect("child")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
