//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` macro, `Strategy` + `prop_map`,
//! ranges/tuples/`Just`/`prop_oneof!`/`collection::vec` strategies, the
//! `prop_assert*`/`prop_assume!` macros, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name, so failures reproduce). There is **no
//! shrinking** — a failing case reports its message and panics as-is.

#![warn(missing_docs)]

pub mod test_runner {
    //! Case execution: configuration, RNG, and the per-case error type.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of (non-rejected) cases to execute per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not a failure.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a name (FNV-1a), so each test has a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty draw");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// An empty union, populated arm-by-arm (used by `prop_oneof!`
        /// so each arm coerces at the call site).
        pub fn empty() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds one boxed arm.
        pub fn push_boxed(&mut self, arm: Box<dyn Strategy<Value = T>>) {
            self.arms.push(arm);
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 40) as $t / (1u64 << 24) as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-lower, exclusive-upper bound on generated lengths; a
    /// plain `usize` is an exact length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases ({} attempts for {} cases)",
                    attempts,
                    config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed (no shrinking in vendored stub): {msg}");
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $(union.push_boxed(::std::boxed::Box::new($strat));)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = crate::collection::vec(0usize..10, 1..5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_respect_bounds(
            x in -5i64..6,
            (a, b) in (0usize..4, 1u32..9),
            v in crate::collection::vec(0u8..3, 0..4),
            t in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((-5..6).contains(&x), "{x}");
            prop_assert!(a < 4 && (1..9).contains(&b));
            prop_assert!(v.len() < 4 && v.iter().all(|e| *e < 3));
            prop_assert!(t == 1 || t == 2);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1usize..5).prop_map(|v| v * 2);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }
}
