//! Defining a brand-new neuron type — the workflow the paper's DSL is
//! designed for: a researcher specifies forward/backward per neuron and
//! the compiler synthesizes, optimizes, and parallelizes the network.
//!
//! Here we define a *Swish* neuron (`x * sigmoid(x)`, Ramachandran et
//! al.) and a *leaky* ReLU with a learnable-looking fixed slope field,
//! drop them into a small network, and inspect what the compiler did.
//!
//! ```text
//! cargo run --release --example custom_neuron
//! ```

use latte::core::dsl::{Ensemble, FieldLen, Mapping, Net, NeuronType};
use latte::core::{compile, OptLevel};
use latte::ir::UnaryOp;
use latte::nn::layers::{data, fully_connected, l2_loss};
use latte::runtime::Executor;
use latte::tensor::Tensor;

/// Swish activation: value = x * σ(x); uses the identity
/// d/dx = σ(x) + x·σ(x)·(1-σ(x)) = value + σ(x)·(1 - value).
fn swish_neuron() -> NeuronType {
    NeuronType::builder("SwishNeuron")
        .forward(|b| {
            let x = b.input(0, 0);
            b.assign(b.value(), x.clone().mul(x.unary(UnaryOp::Sigmoid)));
        })
        .backward(|b| {
            let sig = b.input(0, 0).unary(UnaryOp::Sigmoid);
            let deriv = b
                .value_expr()
                .add(sig.mul(b.lit(1.0).sub(b.value_expr())));
            b.accumulate(b.grad_input(0, 0), b.grad_expr().mul(deriv));
        })
        .build()
}

/// Leaky ReLU with the slope stored as a per-neuron field, showing how
/// user fields become struct-of-arrays buffers.
fn leaky_relu_neuron() -> NeuronType {
    NeuronType::builder("LeakyReLU")
        .field("slope", FieldLen::Scalar)
        .forward(|b| {
            let x = b.input(0, 0);
            let scaled = b.field("slope", 0).mul(x.clone());
            b.assign(b.value(), x.max(scaled));
        })
        .backward(|b| {
            // step(x) + slope * (1 - step(x))
            let step = b.input(0, 0).unary(UnaryOp::Step);
            let deriv = step
                .clone()
                .add(b.field("slope", 0).mul(b.lit(1.0).sub(step)));
            b.accumulate(b.grad_input(0, 0), b.grad_expr().mul(deriv));
        })
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 4;
    let width = 16;
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![width]);
    let fc1 = fully_connected(&mut net, "fc1", d, 32, 1);

    // Custom neurons slot in exactly like the standard library's.
    let swish = net.add(Ensemble::new("swish1", vec![32], swish_neuron()));
    net.connect(fc1, swish, Mapping::one_to_one());

    let leaky = net.add(
        Ensemble::new("leaky1", vec![32], leaky_relu_neuron())
            .with_field("slope", vec![false], Tensor::full(vec![32, 1], 0.1)),
    );
    net.connect(swish, leaky, Mapping::one_to_one());

    let fc2 = fully_connected(&mut net, "fc2", leaky, width, 2);
    let target = data(&mut net, "target", vec![width]);
    l2_loss(&mut net, "loss", fc2, target);

    let compiled = compile(&net, &OptLevel::full())?;
    println!("== synthesized + optimized program ==");
    print!("{}", compiled.pretty());
    println!(
        "stats: {} GEMMs, {} fusions, {} aliased buffers",
        compiled.stats.gemms_matched, compiled.stats.fusions, compiled.stats.aliased_buffers
    );

    // Train the net as an identity autoencoder for a few steps.
    let mut exec = Executor::new(compiled)?;
    let input: Vec<f32> = (0..batch * width).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect();
    exec.set_input("data", &input)?;
    exec.set_input("target", &input)?;
    exec.forward();
    let before = exec.loss();
    for _ in 0..200 {
        exec.forward();
        exec.backward();
        exec.for_each_param_mut(|v, g, lr_mult| {
            for (vi, gi) in v.iter_mut().zip(g) {
                *vi -= 0.05 * lr_mult * gi;
            }
        });
    }
    exec.forward();
    println!("identity-fit loss: {before:.5} -> {:.5}", exec.loss());
    Ok(())
}
