//! A LeNet-style convolutional network on the synthetic MNIST-like
//! dataset, exercising the full compiler pipeline (staging copies, GEMM
//! pattern matching, tiling, conv+ReLU+pool fusion) plus the
//! double-buffered data loader.
//!
//! ```text
//! cargo run --release --example convnet
//! LATTE_TUNE=1 cargo run --release --example convnet   # autotuned schedule
//! ```
//!
//! With `LATTE_TUNE=1` the schedule comes from the autotuner (DESIGN.md
//! §16): the first run measures candidates and persists the winner in
//! `latte_tune.cache` (`LATTE_TUNE_CACHE` overrides the path); later
//! runs replay it with zero re-measurements. Results are bit-identical
//! either way.

use latte::core::{compile, OptLevel};
use latte::nn::models::{lenet, ModelConfig};
use latte::runtime::data::{synthetic_mnist, DoubleBufferedSource, MemoryDataSource};
use latte::runtime::solver::{solve, LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::{Executor, Tuner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig {
        batch: 8,
        input_size: 28,
        channel_div: 4, // scaled-down LeNet for quick runs
        classes: 10,
        with_loss: true,
        seed: 11,
    };
    let model = lenet(&cfg);
    // LATTE_TUNE=1 routes compilation through the autotuner; otherwise
    // the default schedule is used. Both paths are bit-identical.
    let (compiled, tuner) = match Tuner::from_env() {
        Some(tuner) => {
            let mut tuner = tuner?;
            let (schedule, compiled) = tuner.tune_net(&model.net, &OptLevel::full())?;
            println!(
                "autotuned schedule: tile={:?}, blocking={:?} ({} cache hit(s), {} measurement(s))",
                schedule.tile_size,
                schedule.gemm_blocking,
                tuner.stats().cache_hits,
                tuner.stats().measurements,
            );
            (compiled, Some((tuner, schedule)))
        }
        None => (compile(&model.net, &OptLevel::full())?, None),
    };
    println!(
        "LeNet compiled: {} fwd groups ({} fusions, {} GEMMs)",
        compiled.forward.len(),
        compiled.stats.fusions,
        compiled.stats.gemms_matched
    );
    for g in &compiled.forward {
        println!("  group {}", g.name);
    }

    let mut exec = match &tuner {
        Some((tuner, schedule)) => tuner.executor_for(compiled, schedule)?,
        None => Executor::new(compiled)?,
    };
    let train = synthetic_mnist(512, 3);
    let mut source = DoubleBufferedSource::new(MemoryDataSource::try_new(
        "data",
        "label",
        train,
        cfg.batch,
    ).unwrap());
    let mut sgd = Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.01 },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0005,
        max_epoch: 3,
    });
    let report = solve(&mut sgd, &mut exec, &mut source)?;
    println!(
        "trained {} iterations: loss {:.4} -> {:.4}",
        report.iterations, report.initial_loss, report.final_loss
    );

    // Accuracy.
    let test = synthetic_mnist(200, 91);
    let mut correct = 0;
    let mut total = 0;
    for chunk in test.chunks(cfg.batch) {
        if chunk.len() < cfg.batch {
            break;
        }
        let mut inputs = Vec::new();
        for (x, _) in chunk {
            inputs.extend_from_slice(x);
        }
        exec.set_input("data", &inputs)?;
        exec.set_input("label", &vec![0.0; cfg.batch])?;
        exec.forward();
        let out = exec.read_buffer("ip2.value")?;
        for (i, (_, label)) in chunk.iter().enumerate() {
            let row = &out[i * 10..(i + 1) * 10];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == *label as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    println!(
        "test top-1 accuracy: {:.1}% ({correct}/{total})",
        100.0 * correct as f32 / total as f32
    );
    Ok(())
}
