//! Numerical self-healing: a supervised training run surviving a NaN
//! batch (quarantine), a corrupted gradient (hygiene veto), and a
//! learning-rate spike (rate cut + rollback) — next to an unguarded
//! control run showing what the same injections do without guardrails.
//!
//! ```text
//! cargo run --release --example self_healing
//! ```
//!
//! Set `LATTE_SENTINEL_MODE=exhaustive` (or `sampled:<stride>`, `off`)
//! to override how aggressively tensor buffers are scanned for NaN/Inf.

use latte::core::{compile, OptLevel};
use latte::ir::BufferKind;
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::data::MemoryDataSource;
use latte::runtime::fault::{Fault, FaultPlan};
use latte::runtime::health::{AnomalyReaction, HealthConfig, SentinelConfig, SentinelMode};
use latte::runtime::metrics::FaultMetrics;
use latte::runtime::solver::{LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::supervisor::{supervise, SupervisorConfig};
use latte::runtime::Executor;

fn build_exec() -> Result<Executor, Box<dyn std::error::Error>> {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 8,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 5,
    };
    Ok(Executor::new(compile(&mlp(&cfg, &[10]).net, &OptLevel::full())?)?)
}

fn source() -> Result<MemoryDataSource, Box<dyn std::error::Error>> {
    let items: Vec<(Vec<f32>, f32)> = (0..40)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..8)
                .map(|j| {
                    let base = if j % 3 == class { 1.0 } else { 0.05 };
                    base + ((i * 8 + j) % 11) as f32 * 0.01
                })
                .collect();
            (x, class as f32)
        })
        .collect();
    Ok(MemoryDataSource::try_new("data", "label", items, 4)?)
}

fn solver() -> Sgd {
    Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.1 },
        mom_policy: MomPolicy::None,
        regu_coef: 0.0,
        max_epoch: 3,
    })
}

fn run(
    label: &str,
    faults: Vec<Fault>,
    health: Option<HealthConfig>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n{label}:");
    for f in &faults {
        println!("  injecting {f:?}");
    }
    let ckpt = std::env::temp_dir().join(format!("latte_self_healing_{}.ckpt", label.len()));
    let guarded = health.is_some();
    let cfg = SupervisorConfig {
        checkpoint_every: 5,
        health,
        ..SupervisorConfig::new(&ckpt)
    };
    let mut exec = build_exec()?;
    let mut solver = solver();
    let mut plan = FaultPlan::new(faults);
    let metrics = FaultMetrics::new();
    let report = supervise(
        &mut solver,
        &mut exec,
        &mut source()?,
        &cfg,
        &mut plan,
        &metrics,
    )?;
    println!(
        "  loss {:.4} -> {:.4} over {} iterations  \
         (quarantined {}, rollbacks {}, LR cuts {})",
        report.initial_loss,
        report.final_loss,
        report.iterations,
        report.quarantined,
        report.rollbacks,
        report.lr_reductions
    );
    let poisoned = exec
        .scan_numerics(SentinelMode::Exhaustive, |k| matches!(k, BufferKind::Param))
        .len();
    if poisoned > 0 {
        println!("  !! {poisoned} parameter buffer(s) poisoned with NaN — the net is bricked");
    } else if guarded {
        println!("  weights clean; counters: {}", metrics.snapshot());
    } else {
        println!("  weights clean");
    }
    let _ = std::fs::remove_file(&ckpt);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The production-grade guardrails: cheap sampled sentinels, gradient
    // hygiene, quarantine-on-NaN. `LATTE_SENTINEL_MODE` overrides the
    // scan mode from the environment.
    let guarded = HealthConfig {
        sentinel: SentinelConfig::cheap().env_override(),
        ..HealthConfig::default()
    };

    run(
        "NaN batch, guarded (sentinel trips, batch quarantined)",
        vec![Fault::BatchNaN { iter: 7 }],
        Some(guarded.clone()),
    )?;
    run(
        "NaN batch, unguarded control (ReLU launders the NaN; the loss \
         never goes NaN — the first layer silently bricks instead)",
        vec![Fault::BatchNaN { iter: 7 }],
        None,
    )?;

    run(
        "corrupted gradient, guarded (hygiene vetoes the step)",
        vec![Fault::GradCorrupt { iter: 9 }],
        Some(guarded.clone()),
    )?;

    run(
        "LR spike x1000, guarded (divergence detected, rate cut, rollback)",
        vec![Fault::LrSpike { iter: 6, factor: 1000.0 }],
        Some(HealthConfig {
            on_bad_batch: AnomalyReaction::rollback_and_reduce_lr(),
            on_spike: AnomalyReaction::rollback_and_reduce_lr(),
            rollback_budget: 6,
            // Tight divergence detection: the loss layer clamps at
            // ~27.6 per item, so the default 10x threshold would let a
            // high post-rollback baseline mask continued divergence.
            spike_threshold: 4.0,
            warmup: 1,
            ..guarded
        }),
    )?;

    Ok(())
}
