//! Quickstart: the paper's Figure-7 multi-layer perceptron, trained on a
//! synthetic MNIST-like dataset with the SGD solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use latte::core::{compile, OptLevel};
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::data::{synthetic_mnist, DoubleBufferedSource, MemoryDataSource};
use latte::runtime::solver::{solve, LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Net(8): an MLP 784 -> 128 -> 64 -> 10, softmax loss. This mirrors
    // the paper's Figure 7: layers from the standard library, a solver
    // with LRPolicy.Inv and fixed momentum, then solve(sgd, net).
    let cfg = ModelConfig {
        batch: 16,
        input_size: 28 * 28,
        channel_div: 1,
        classes: 10,
        with_loss: true,
        seed: 42,
    };
    let model = mlp(&cfg, &[128, 64]);

    let compiled = compile(&model.net, &OptLevel::full())?;
    println!(
        "compiled: {} forward groups, {} GEMMs matched, {} buffers aliased",
        compiled.forward.len(),
        compiled.stats.gemms_matched,
        compiled.stats.aliased_buffers,
    );
    let mut exec = Executor::new(compiled)?;

    let train = synthetic_mnist(1024, 7);
    let mut source = DoubleBufferedSource::new(MemoryDataSource::try_new(
        "data",
        "label",
        train.clone(),
        cfg.batch,
    ).unwrap());

    let params = SolverParams {
        lr_policy: LrPolicy::Inv {
            base: 0.01,
            gamma: 0.0001,
            power: 0.75,
        },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0005,
        max_epoch: 5,
    };
    let mut sgd = Sgd::new(params);
    let report = solve(&mut sgd, &mut exec, &mut source)?;
    println!(
        "trained {} iterations: loss {:.4} -> {:.4}",
        report.iterations, report.initial_loss, report.final_loss
    );

    // Top-1 accuracy on held-out synthetic digits.
    let test = synthetic_mnist(256, 99);
    let mut correct = 0;
    for chunk in test.chunks(cfg.batch) {
        if chunk.len() < cfg.batch {
            break;
        }
        let mut inputs = Vec::new();
        for (x, _) in chunk {
            inputs.extend_from_slice(x);
        }
        exec.set_input("data", &inputs)?;
        exec.set_input("label", &vec![0.0; cfg.batch])?;
        exec.forward();
        let out = exec.read_buffer("ip_out.value")?;
        for (i, (_, label)) in chunk.iter().enumerate() {
            let row = &out[i * 10..(i + 1) * 10];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == *label as usize {
                correct += 1;
            }
        }
    }
    let evaluated = (test.len() / cfg.batch) * cfg.batch;
    println!(
        "test top-1 accuracy: {:.1}% ({correct}/{evaluated})",
        100.0 * correct as f32 / evaluated as f32
    );
    Ok(())
}
