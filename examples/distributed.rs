//! Distributed training features: intra-node data parallelism with
//! synchronized vs. lossy gradient accumulation, and the cluster
//! simulator's scaling projections.
//!
//! ```text
//! cargo run --release --example distributed
//! ```

use latte::core::{compile, OptLevel};
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::cluster::{weak_scaling, LayerProfile, NetworkModel};
use latte::runtime::data::{synthetic_mnist, MemoryDataSource, BatchSource};
use latte::runtime::parallel::{DataParallelConfig, DataParallelTrainer, GradSync};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let worker_batch = 8;
    let workers = 4;
    let cfg = ModelConfig {
        batch: worker_batch,
        input_size: 28 * 28,
        channel_div: 1,
        classes: 10,
        with_loss: true,
        seed: 21,
    };

    for sync in [GradSync::Synchronized, GradSync::Lossy] {
        let mut trainer = DataParallelTrainer::new(
            || compile(&mlp(&cfg, &[64]).net, &OptLevel::full()).expect("compiles"),
            DataParallelConfig {
                workers,
                sync,
                lr: 0.02,
                momentum: 0.9,
            },
        )?;
        let train = synthetic_mnist(1024, 5);
        let mut sources: Vec<MemoryDataSource> = (0..workers)
            .map(|w| {
                let shard: Vec<_> = train
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .cloned()
                    .collect();
                MemoryDataSource::try_new("data", "label", shard, worker_batch).unwrap()
            })
            .collect();
        let mut last = 0.0;
        for _epoch in 0..3 {
            for s in &mut sources {
                s.reset();
            }
            loop {
                let shards: Option<Vec<_>> = sources
                    .iter_mut()
                    .map(|s| s.next_batch())
                    .collect::<Result<_, _>>()?;
                match shards {
                    Some(shards) => last = trainer.step(&shards)?,
                    None => break,
                }
            }
        }
        let acc = trainer.accuracy("data", "ip_out.value", &synthetic_mnist(256, 77))?;
        println!(
            "{sync:?}: final loss {last:.4}, top-1 accuracy {:.1}%",
            acc * 100.0
        );
    }

    // Cluster-scale projection with the discrete-event simulator.
    println!("\nweak scaling (64 items/node, InfiniBand-like fabric):");
    let layers: Vec<LayerProfile> = (0..8)
        .map(|i| LayerProfile {
            name: format!("layer{i}"),
            fwd_ms_per_item: 0.4 / (i + 1) as f64,
            bwd_ms_per_item: 0.8 / (i + 1) as f64,
            fixed_ms: 0.3,
            grad_bytes: if i >= 5 { 100e6 } else { 5e6 },
        })
        .collect();
    for (nodes, throughput, efficiency) in weak_scaling(
        NetworkModel::infiniband_like(),
        &layers,
        64,
        &[1, 2, 4, 8, 16, 32],
    ) {
        println!(
            "  {nodes:>3} nodes: {throughput:>9.1} img/s  ({:.1}% efficiency)",
            efficiency * 100.0
        );
    }
    Ok(())
}
