//! Fault-tolerant training: a simulated cluster surviving a crash, a
//! straggler, and a dropped gradient transfer, then a single-node
//! training run killed mid-epoch and resumed from the supervisor's
//! checkpoint.
//!
//! ```text
//! cargo run --release --example fault_tolerance [--seed N]
//! ```
//!
//! With `--seed N` the cluster faults are sampled randomly (but
//! reproducibly) from `FaultRates` instead of the scripted plan.

use latte::core::{compile, OptLevel};
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::cluster::{
    simulate_run, ClusterSpec, FaultPolicy, LayerProfile, NetworkModel,
};
use latte::runtime::data::MemoryDataSource;
use latte::runtime::fault::{Fault, FaultPlan, FaultRates};
use latte::runtime::metrics::FaultMetrics;
use latte::runtime::solver::{LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::supervisor::{supervise, SupervisorConfig};
use latte::runtime::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seed = match args.next().as_deref() {
        Some("--seed") => {
            let v = args
                .next()
                .ok_or("--seed requires a value, e.g. --seed 7")?;
            Some(v.parse::<u64>().map_err(|e| format!("--seed {v}: {e}"))?)
        }
        Some(other) => return Err(format!("unknown argument {other:?}; usage: fault_tolerance [--seed N]").into()),
        None => None,
    };

    // --- 1. Cluster under fire -----------------------------------------
    let nodes = 4;
    let iters = 12;
    let layers: Vec<LayerProfile> = (0..6)
        .map(|i| LayerProfile {
            name: format!("layer{i}"),
            fwd_ms_per_item: 0.2 / (i + 1) as f64,
            bwd_ms_per_item: 0.4 / (i + 1) as f64,
            fixed_ms: 0.3,
            grad_bytes: [0.5e6, 2e6, 9e6, 9e6, 200e6, 16e6][i],
        })
        .collect();
    let plan = match seed {
        Some(s) => {
            println!("random fault plan, seed {s}:");
            FaultPlan::random(s, nodes, iters, layers.len(), &FaultRates::default())
        }
        None => {
            println!("scripted fault plan:");
            FaultPlan::new(vec![
                Fault::TransferDrop { node: 0, iter: 2, layer: 4 },
                Fault::Straggler { node: 1, from_iter: 4, to_iter: 7, factor: 4.0 },
                Fault::NodeCrash { node: 2, iter: 8 },
            ])
        }
    };
    for f in plan.faults() {
        println!("  {f:?}");
    }

    let spec = ClusterSpec {
        nodes,
        network: NetworkModel::infiniband_like(),
    };
    let metrics = FaultMetrics::new();
    let run = simulate_run(
        &spec,
        &layers,
        32,
        iters,
        &plan,
        &FaultPolicy::default(),
        &metrics,
    )?;

    println!("\n{nodes}-node cluster, {iters} iterations (batch 32/node):");
    for it in &run.iterations {
        let mut notes = Vec::new();
        if !it.newly_dead.is_empty() {
            notes.push(format!("died: {:?}", it.newly_dead));
        }
        if !it.stragglers.is_empty() {
            notes.push(format!("straggling: {:?}", it.stragglers));
        }
        if it.retry_penalty_ms > 0.0 {
            notes.push(format!("retry penalty {:.1} ms", it.retry_penalty_ms));
        }
        println!(
            "  iter {:>2}: {:>7.1} ms  {:?} over {} node(s)  {}",
            it.iter,
            it.total_ms,
            it.mode,
            it.live_nodes,
            notes.join(", ")
        );
    }
    println!(
        "survivors: {}/{nodes}, final mode {:?}, total {:.1} ms",
        run.live_nodes,
        run.final_mode,
        run.total_ms()
    );
    println!("fault counters: {}", metrics.snapshot());

    // --- 2. Supervisor recovering a mid-epoch process death ------------
    println!("\nsupervised training, process killed after iteration 16:");
    let cfg = ModelConfig {
        batch: 4,
        input_size: 8,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 5,
    };
    let items: Vec<(Vec<f32>, f32)> = (0..40)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..8)
                .map(|j| {
                    let base = if j % 3 == class { 1.0 } else { 0.05 };
                    base + ((i * 8 + j) % 11) as f32 * 0.01
                })
                .collect();
            (x, class as f32)
        })
        .collect();
    let mut source = MemoryDataSource::try_new("data", "label", items, 4)?;
    let mut exec =
        Executor::new(compile(&mlp(&cfg, &[10]).net, &OptLevel::full())?)?;
    let mut solver = Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.1 },
        mom_policy: MomPolicy::None,
        regu_coef: 0.0,
        max_epoch: 3,
    });
    let ckpt = std::env::temp_dir().join("latte_fault_tolerance_example.ckpt");
    let sup_cfg = SupervisorConfig {
        checkpoint_every: 6,
        ..SupervisorConfig::new(&ckpt)
    };
    let mut death = FaultPlan::new(vec![Fault::ProcessDeath { iter: 16 }]);
    let sup_metrics = FaultMetrics::new();
    let report = supervise(
        &mut solver,
        &mut exec,
        &mut source,
        &sup_cfg,
        &mut death,
        &sup_metrics,
    )?;
    println!(
        "  loss {:.4} -> {:.4} over {} iterations, {} restart(s), resumed from {:?}",
        report.initial_loss,
        report.final_loss,
        report.iterations,
        report.restarts,
        report.resumed_from
    );
    println!("  fault counters: {}", sup_metrics.snapshot());
    let _ = std::fs::remove_file(&ckpt);
    Ok(())
}
