//! A recurrent network: an LSTM unit (built exactly as in the paper's
//! Figure 6 from ensembles and recurrent connections), unrolled through
//! time and trained on a toy sequence-classification task: report at
//! which of the `STEPS` time steps the "hot" input arrived.
//!
//! ```text
//! cargo run --release --example lstm_sequence
//! ```

use latte::core::{compile, OptLevel};
use latte::nn::layers::{fully_connected, softmax_loss};
use latte::nn::rnn::lstm;
use latte::core::dsl::{Ensemble, Net};
use latte::runtime::data::synthetic_sequences;
use latte::runtime::Executor;

const STEPS: usize = 4;
const WIDTH: usize = 6;
const HIDDEN: usize = 12;
const BATCH: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One-step network: x -> LSTM(h). Recurrent edges mark the h/C
    // feedback.
    let mut step_net = Net::new(BATCH);
    let x = step_net.add(Ensemble::data("x", vec![WIDTH]));
    let unit = lstm(&mut step_net, "lstm", x, HIDDEN, 5);
    let _ = unit;

    // Unroll through time: parameters are shared across steps, so
    // gradients accumulate across time (BPTT).
    let mut net = step_net.unroll(STEPS);

    // Classification head on the final hidden state.
    let last_h = net
        .find(&format!("lstm_h@t{}", STEPS - 1))
        .expect("unrolled output ensemble");
    let logits = fully_connected(&mut net, "head", last_h, STEPS, 77);
    let label = net.add(Ensemble::data("label", vec![1]));
    softmax_loss(&mut net, "loss", logits, label);

    let compiled = compile(&net, &OptLevel::full())?;
    println!(
        "unrolled LSTM: {} ensembles, {} forward groups, {} shared-parameter aliases",
        net.len(),
        compiled.forward.len(),
        compiled.stats.aliased_buffers
    );
    let mut exec = Executor::new(compiled)?;

    let items = synthetic_sequences(STEPS, WIDTH, 512, 13);
    let feed = |exec: &mut Executor, chunk: &[(Vec<f32>, f32)]| -> Result<(), Box<dyn std::error::Error>> {
        // Split each item's concatenated sequence into per-step inputs.
        for t in 0..STEPS {
            let mut step_in = Vec::with_capacity(BATCH * WIDTH);
            for (xs, _) in chunk {
                step_in.extend_from_slice(&xs[t * WIDTH..(t + 1) * WIDTH]);
            }
            exec.set_input(&format!("x@t{t}"), &step_in)?;
        }
        let labels: Vec<f32> = chunk.iter().map(|(_, y)| *y).collect();
        exec.set_input("label", &labels)?;
        Ok(())
    };

    let mut initial = None;
    for epoch in 0..8 {
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in items.chunks(BATCH) {
            if chunk.len() < BATCH {
                break;
            }
            feed(&mut exec, chunk)?;
            exec.forward();
            epoch_loss += exec.loss();
            batches += 1;
            exec.backward();
            exec.for_each_param_mut(|v, g, lr_mult| {
                for (vi, gi) in v.iter_mut().zip(g) {
                    *vi -= 0.05 * lr_mult * gi;
                }
            });
        }
        let mean = epoch_loss / batches as f32;
        if initial.is_none() {
            initial = Some(mean);
        }
        println!("epoch {epoch}: mean loss {mean:.4}");
    }

    // Accuracy on fresh sequences.
    let test = synthetic_sequences(STEPS, WIDTH, 128, 101);
    let mut correct = 0;
    let mut total = 0;
    for chunk in test.chunks(BATCH) {
        if chunk.len() < BATCH {
            break;
        }
        feed(&mut exec, chunk)?;
        exec.forward();
        let out = exec.read_buffer("head.value")?;
        for (i, (_, label)) in chunk.iter().enumerate() {
            let row = &out[i * STEPS..(i + 1) * STEPS];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == *label as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    println!(
        "sequence accuracy: {:.1}% ({correct}/{total})",
        100.0 * correct as f32 / total as f32
    );
    Ok(())
}
