//! End-to-end fault-tolerance acceptance tests (tier-1): a simulated
//! 4-node cluster surviving a node crash plus a straggler, and a
//! single-node training run surviving a process death mid-epoch by
//! resuming from the supervisor's checkpoint.

use latte::core::{compile, OptLevel};
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::cluster::{
    simulate_run, ClusterSpec, FaultPolicy, LayerProfile, NetworkModel, SyncMode,
};
use latte::runtime::data::MemoryDataSource;
use latte::runtime::fault::{Fault, FaultPlan};
use latte::runtime::metrics::FaultMetrics;
use latte::runtime::solver::{solve, LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::supervisor::{supervise, SupervisorConfig};
use latte::runtime::Executor;

fn layers() -> Vec<LayerProfile> {
    (0..6)
        .map(|i| LayerProfile {
            name: format!("layer{i}"),
            fwd_ms_per_item: 0.2 / (i + 1) as f64,
            bwd_ms_per_item: 0.4 / (i + 1) as f64,
            fixed_ms: 0.3,
            grad_bytes: [0.5e6, 2e6, 9e6, 9e6, 200e6, 16e6][i],
        })
        .collect()
}

/// A 4-node cluster hit by a mid-run node crash, a straggler phase, and
/// a dropped gradient transfer recovers: the transfer is retried, the
/// straggler is detected against the rolling estimate, and after the
/// crash the all-reduce degrades to the lossy unsynchronized mode over
/// the three survivors — with every event visible in the fault counters.
#[test]
fn cluster_survives_crash_straggler_and_dropped_transfer() {
    let spec = ClusterSpec {
        nodes: 4,
        network: NetworkModel::infiniband_like(),
    };
    let plan = FaultPlan::new(vec![
        Fault::TransferDrop { node: 0, iter: 2, layer: 4 },
        Fault::Straggler { node: 1, from_iter: 4, to_iter: 7, factor: 4.0 },
        Fault::NodeCrash { node: 2, iter: 8 },
    ]);
    let metrics = FaultMetrics::new();
    let run = simulate_run(
        &spec,
        &layers(),
        32,
        12,
        &plan,
        &FaultPolicy::default(),
        &metrics,
    )
    .unwrap();

    assert_eq!(run.iterations.len(), 12);

    // The dropped transfer costs a visible retry penalty but stays
    // synchronized.
    assert!(run.iterations[2].retry_penalty_ms > 0.0);
    assert_eq!(run.iterations[2].mode, SyncMode::Synchronized);

    // The straggler is detected while it is slow, and only then.
    assert_eq!(run.iterations[5].stragglers, vec![1]);
    assert!(run.iterations[3].stragglers.is_empty());
    assert!(run.iterations[7].stragglers.is_empty());

    // The crash removes node 2 from the ring and degrades the run to
    // the lossy unsynchronized mode over the 3 survivors.
    assert_eq!(run.iterations[7].live_nodes, 4);
    assert_eq!(run.iterations[8].newly_dead, vec![2]);
    assert_eq!(run.iterations[8].mode, SyncMode::LossyDegraded);
    assert_eq!(run.iterations[8].live_nodes, 3);
    assert_eq!(run.live_nodes, 3);
    assert_eq!(run.final_mode, SyncMode::LossyDegraded);

    // Degraded iterations no longer pay the straggler/sync barrier: the
    // post-crash iteration is not slower than the synchronized baseline.
    let healthy = run.iterations[1].total_ms;
    let straggled = run.iterations[5].total_ms;
    assert!(straggled > healthy, "sync mode pays for the straggler");

    // Every event is visible through the metrics registry.
    let snap = metrics.snapshot();
    assert_eq!(snap.nodes_failed, 1);
    assert_eq!(snap.transfers_dropped, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.stragglers_detected, 1);
    assert_eq!(snap.degraded_iterations, 4);
    let text = snap.to_string();
    assert!(text.contains("nodes_failed=1") && text.contains("retries=1"), "{text}");
}

fn build_exec(seed: u64) -> Executor {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 8,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed,
    };
    Executor::new(compile(&mlp(&cfg, &[10]).net, &OptLevel::full()).unwrap()).unwrap()
}

fn training_source() -> MemoryDataSource {
    let items: Vec<(Vec<f32>, f32)> = (0..40)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..8)
                .map(|j| {
                    let base = if j % 3 == class { 1.0 } else { 0.05 };
                    base + ((i * 8 + j) % 11) as f32 * 0.01
                })
                .collect();
            (x, class as f32)
        })
        .collect();
    MemoryDataSource::try_new("data", "label", items, 4).unwrap()
}

fn training_params() -> SolverParams {
    SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.1 },
        // No momentum: the update rule is a pure function of weights and
        // gradients, so recovery from a checkpoint is bit-exact.
        mom_policy: MomPolicy::None,
        regu_coef: 0.0,
        max_epoch: 3,
    }
}

/// Training killed mid-epoch resumes from the supervisor's checkpoint
/// and reaches the same final loss as the fault-free run.
#[test]
fn supervisor_recovers_process_death_mid_epoch() {
    // Fault-free baseline with the plain training loop.
    let mut exec_base = build_exec(5);
    let mut solver_base = Sgd::new(training_params());
    let baseline = solve(&mut solver_base, &mut exec_base, &mut training_source()).unwrap();
    assert!(
        baseline.final_loss < baseline.initial_loss,
        "baseline must learn: {baseline:?}"
    );

    // Supervised run killed mid-epoch (iteration 16 of 30; 10 iterations
    // per epoch, checkpoints every 6).
    let dir = std::env::temp_dir().join("latte_e2e_fault_tolerance");
    let _ = std::fs::create_dir_all(&dir);
    let cfg = SupervisorConfig {
        checkpoint_every: 6,
        ..SupervisorConfig::new(dir.join("ckpt.bin"))
    };
    let mut plan = FaultPlan::new(vec![Fault::ProcessDeath { iter: 16 }]);
    let mut exec = build_exec(5);
    let mut solver = Sgd::new(training_params());
    let metrics = FaultMetrics::new();
    let report = supervise(
        &mut solver,
        &mut exec,
        &mut training_source(),
        &cfg,
        &mut plan,
        &metrics,
    )
    .unwrap();

    assert_eq!(report.restarts, 1);
    // Last checkpoint before the death at 16 was at iteration 12, which
    // is mid-epoch (epoch 1, iteration 2 of 10).
    assert_eq!(report.resumed_from, vec![12]);
    // 30 productive iterations plus the 5 replayed ones (12..=16).
    assert_eq!(report.iterations, 35);

    let rel = (report.final_loss - baseline.final_loss).abs() / baseline.final_loss.abs();
    assert!(
        rel < 1e-5,
        "recovered loss {} must match fault-free loss {} (rel err {rel})",
        report.final_loss,
        baseline.final_loss
    );

    let snap = metrics.snapshot();
    assert_eq!(snap.restores, 1);
    assert!(snap.checkpoints_saved >= 5, "{snap:?}");
    assert_eq!(snap.io_errors, 0);
    let _ = std::fs::remove_file(&cfg.checkpoint_path);
}
