//! Real multi-process distributed training over loopback TCP: four
//! `latte-worker` processes rendezvous, train synchronized (identical
//! final parameter CRCs on every rank), and — with one rank killed
//! mid-run — the survivors evict it and finish in lossy mode.

use std::collections::HashMap;
use std::io::Read;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners. Racy in principle, fine in practice for CI.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

struct WorkerResult {
    exit_code: i32,
    /// Parsed `LATTE_WORKER_RESULT` key=value fields, if printed.
    fields: HashMap<String, String>,
    stderr: String,
}

fn spawn_worker(addrs: &str, rank: usize, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_latte-worker"))
        .args(["--rank", &rank.to_string(), "--addrs", addrs, "--steps", "3"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn latte-worker")
}

fn reap(mut child: Child, rank: usize) -> WorkerResult {
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(s) => break s,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("worker {rank} hung past the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let mut stdout = String::new();
    let mut stderr = String::new();
    child.stdout.take().unwrap().read_to_string(&mut stdout).unwrap();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    let fields = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("LATTE_WORKER_RESULT"))
        .map(|l| {
            l.split_whitespace()
                .skip(1)
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        })
        .unwrap_or_default();
    WorkerResult {
        exit_code: status.code().unwrap_or(-1),
        fields,
        stderr,
    }
}

fn launch(world: usize, per_rank_extra: impl Fn(usize) -> Vec<String>) -> Vec<WorkerResult> {
    let ports = free_ports(world);
    let addrs = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");
    let children: Vec<Child> = (0..world)
        .map(|rank| {
            let extra = per_rank_extra(rank);
            let extra_refs: Vec<&str> = extra.iter().map(String::as_str).collect();
            spawn_worker(&addrs, rank, &extra_refs)
        })
        .collect();
    children
        .into_iter()
        .enumerate()
        .map(|(rank, c)| reap(c, rank))
        .collect()
}

#[test]
fn four_processes_train_to_identical_parameters() {
    let results = launch(4, |_| vec![]);
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(
            r.exit_code, 0,
            "rank {rank} failed (stderr:\n{})",
            r.stderr
        );
        assert_eq!(r.fields.get("mode").map(String::as_str), Some("sync"));
        assert_eq!(r.fields.get("live").map(String::as_str), Some("4"));
        assert_eq!(r.fields.get("steps").map(String::as_str), Some("3"));
    }
    let crcs: Vec<&String> = results
        .iter()
        .map(|r| r.fields.get("param_crc").expect("param_crc printed"))
        .collect();
    assert!(
        crcs.windows(2).all(|w| w[0] == w[1]),
        "synchronized ranks must agree bit-for-bit: {crcs:?}"
    );
}

#[test]
fn killed_process_degrades_survivors_to_lossy() {
    let world = 3;
    let results = launch(world, |rank| {
        let mut extra = vec!["--op-timeout-ms".into(), "500".into()];
        if rank == 2 {
            extra.extend(["--die-at-step".into(), "1".into()]);
        }
        extra
    });
    assert_eq!(results[2].exit_code, 3, "rank 2 must have died on cue");
    for (rank, r) in results.iter().enumerate().take(2) {
        assert_eq!(
            r.exit_code, 0,
            "survivor {rank} failed (stderr:\n{})",
            r.stderr
        );
        assert_eq!(r.fields.get("mode").map(String::as_str), Some("lossy"));
        assert_eq!(r.fields.get("live").map(String::as_str), Some("2"));
        assert_eq!(r.fields.get("steps").map(String::as_str), Some("3"));
        let evicted: u64 = r.fields["peers_evicted"].parse().unwrap();
        let lossy: u64 = r.fields["lossy_steps"].parse().unwrap();
        assert!(evicted >= 1, "survivor {rank} recorded no eviction");
        assert!(lossy >= 1, "survivor {rank} recorded no lossy step");
    }
    let crcs: Vec<&String> = results
        .iter()
        .take(2)
        .map(|r| r.fields.get("param_crc").expect("param_crc printed"))
        .collect();
    assert_eq!(
        crcs[0], crcs[1],
        "survivors share the healed ring and must agree"
    );
}
