//! Cross-crate integration tests: the Latte stack against the baseline
//! stacks, distributed training against single-worker training, and
//! end-to-end learning.

use latte::baselines::{caffe, spec::LayerSpec};
use latte::core::{compile, OptLevel};
use latte::nn::layers::{convolution, data, fully_connected, max_pool, relu, softmax_loss, ConvSpec};
use latte::nn::models::{lenet, mlp, ModelConfig};
use latte::core::dsl::Net;
use latte::runtime::data::{synthetic_mnist, MemoryDataSource};
use latte::runtime::parallel::{DataParallelConfig, DataParallelTrainer, GradSync};
use latte::runtime::solver::{solve, LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::Executor;

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

/// Latte and the Caffe-style stack compute the same forward values when
/// given identical weights, across their different layouts ((y,x,c) vs
/// (c,y,x)) and execution strategies.
#[test]
fn latte_matches_caffe_stack_with_same_weights() {
    let (h, cin, cout, batch) = (8usize, 2usize, 4usize, 2usize);
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, cin]);
    let conv = convolution(&mut net, "conv1", d, ConvSpec::same(cout, 3), 1);
    let r = relu(&mut net, "relu1", conv);
    max_pool(&mut net, "pool1", r, 2, 2);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let latte_w = compiled
        .param_inits
        .iter()
        .find(|(n, _)| n == "conv1.weights")
        .unwrap()
        .1
        .clone();
    let mut exec = Executor::new(compiled).unwrap();

    let specs = [
        LayerSpec::Conv { out_channels: cout, kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
    ];
    let mut base = caffe::build((cin, h, h), batch, &specs, 99);
    // Inject Latte's weights, translating the patch order:
    // Latte rows are (ky, kx, c); Caffe rows are (c, ky, kx).
    {
        let mut params = base.layer_mut(0).params_mut();
        let w = &mut params[0].0;
        for oc in 0..cout {
            for c in 0..cin {
                for ky in 0..3 {
                    for kx in 0..3 {
                        let latte_idx = oc * 9 * cin + (ky * 3 + kx) * cin + c;
                        w[oc * 9 * cin + c * 9 + ky * 3 + kx] = latte_w[latte_idx];
                    }
                }
            }
        }
        params[1].0.fill(0.0);
    }

    // Same logical input in both layouts.
    let logical = |b: usize, c: usize, y: usize, x: usize| {
        seeded(1, (b * 997 + c * 91 + y * 13 + x) as u32)[0]
    };
    let mut in_yxc = vec![0.0f32; batch * h * h * cin];
    let mut in_cyx = vec![0.0f32; batch * h * h * cin];
    for b in 0..batch {
        for c in 0..cin {
            for y in 0..h {
                for x in 0..h {
                    let v = logical(b, c, y, x);
                    in_yxc[((b * h + y) * h + x) * cin + c] = v;
                    in_cyx[((b * cin + c) * h + y) * h + x] = v;
                }
            }
        }
    }
    exec.set_input("data", &in_yxc).unwrap();
    exec.forward();
    base.set_input(&in_cyx);
    base.forward();

    let latte_out = exec.read_buffer("pool1.value").unwrap();
    let caffe_out = &base.output().data;
    let (oh, ow) = (h / 2, h / 2);
    for b in 0..batch {
        for c in 0..cout {
            for y in 0..oh {
                for x in 0..ow {
                    let l = latte_out[((b * oh + y) * ow + x) * cout + c];
                    let cf = caffe_out[((b * cout + c) * oh + y) * ow + x];
                    assert!((l - cf).abs() < 1e-3, "b{b} c{c} y{y} x{x}: {l} vs {cf}");
                }
            }
        }
    }
}

/// Data-parallel gradient summation over shards equals the gradient a
/// single worker computes — the semantic-preservation property the paper
/// cites for gradient summation ("preserves the semantics of optimization
/// algorithms with an increased batch size").
#[test]
fn distributed_gradients_match_single_worker() {
    let classes = 3;
    let width = 6;
    let worker_batch = 2;
    let workers = 2;
    let build = |batch: usize| {
        let cfg = ModelConfig {
            batch,
            input_size: width,
            channel_div: 1,
            classes,
            with_loss: true,
            seed: 9,
        };
        compile(&mlp(&cfg, &[5]).net, &OptLevel::full()).unwrap()
    };
    // Single worker over the full batch of 4.
    let mut single = Executor::new(build(worker_batch * workers)).unwrap();
    let inputs = seeded(worker_batch * workers * width, 11);
    let labels = [0.0f32, 1.0, 2.0, 1.0];
    single.set_input("data", &inputs).unwrap();
    single.set_input("label", &labels).unwrap();
    single.forward();
    single.backward();
    let g_single = single.read_buffer("ip1.g_weights").unwrap();

    // Two workers over contiguous shards.
    let mut trainer = DataParallelTrainer::new(
        || build(worker_batch),
        DataParallelConfig {
            workers,
            sync: GradSync::Synchronized,
            lr: 0.0, // keep weights identical
            momentum: 0.0,
        },
    )
    .unwrap();
    let shards: Vec<_> = (0..workers)
        .map(|w| {
            vec![
                (
                    "data".to_string(),
                    inputs[w * worker_batch * width..(w + 1) * worker_batch * width].to_vec(),
                ),
                (
                    "label".to_string(),
                    labels[w * worker_batch..(w + 1) * worker_batch].to_vec(),
                ),
            ]
        })
        .collect();
    trainer.step(&shards).unwrap();
    // Each worker's softmax loss divides by its own (smaller) batch, so
    // the summed shard gradients equal `workers` x the full-batch
    // gradient.
    // Re-run a worker pair manually to read the summed gradients:
    let mut w0 = Executor::new(build(worker_batch)).unwrap();
    let mut w1 = Executor::new(build(worker_batch)).unwrap();
    for (w, shard) in [(&mut w0, &shards[0]), (&mut w1, &shards[1])] {
        for (name, vals) in shard {
            w.set_input(name, vals).unwrap();
        }
        w.forward();
        w.backward();
    }
    let g0 = w0.read_buffer("ip1.g_weights").unwrap();
    let g1 = w1.read_buffer("ip1.g_weights").unwrap();
    for ((a, b), s) in g0.iter().zip(&g1).zip(&g_single) {
        let summed = (a + b) / workers as f32;
        assert!(
            (summed - s).abs() < 1e-4 * s.abs().max(1.0),
            "{summed} vs {s}"
        );
    }
}

/// `solve` on LeNet over the synthetic MNIST reaches high train accuracy.
#[test]
fn lenet_learns_synthetic_mnist() {
    let cfg = ModelConfig {
        batch: 8,
        input_size: 28,
        channel_div: 8,
        classes: 10,
        with_loss: true,
        seed: 2,
    };
    let model = lenet(&cfg);
    let compiled = compile(&model.net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    let mut source = MemoryDataSource::try_new("data", "label", synthetic_mnist(160, 4), 8).unwrap();
    let mut sgd = Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.02 },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0,
        max_epoch: 4,
    });
    let report = solve(&mut sgd, &mut exec, &mut source).unwrap();
    assert!(
        report.final_loss < report.initial_loss * 0.3,
        "{report:?}"
    );
}

/// An unrolled LSTM's analytic gradients pass a finite-difference check
/// through time (weight sharing sums gradients across steps).
#[test]
fn lstm_bptt_gradient_check() {
    use latte::nn::rnn::lstm;
    let steps = 3;
    let width = 4;
    let hidden = 3;
    let batch = 2;
    let mut step_net = Net::new(batch);
    let x = step_net.add(latte::core::dsl::Ensemble::data("x", vec![width]));
    lstm(&mut step_net, "lstm", x, hidden, 3);
    let mut net = step_net.unroll(steps);
    let last_h = net.find(&format!("lstm_h@t{}", steps - 1)).unwrap();
    let head = fully_connected(&mut net, "head", last_h, 2, 5);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();

    for t in 0..steps {
        exec.set_input(&format!("x@t{t}"), &seeded(batch * width, t as u32))
            .unwrap();
    }
    exec.set_input("label", &[0.0, 1.0]).unwrap();
    exec.forward();
    exec.backward();

    // The recurrent gate weights accumulate gradient from every step.
    let param = "lstm_ih@t0.weights";
    let grad_buf = "lstm_ih@t0.g_weights";
    let grads = exec.read_buffer(grad_buf).unwrap();
    let values = exec.read_buffer(param).unwrap();
    let idx = values.len() / 2;
    let eps = 1e-2;
    let mut probe = |delta: f32| -> f32 {
        let mut w = values.clone();
        w[idx] += delta;
        exec.write_buffer(param, &w).unwrap();
        exec.forward();
        exec.loss()
    };
    let lp = probe(eps);
    let lm = probe(-eps);
    probe(0.0);
    let numeric = (lp - lm) / (2.0 * eps);
    assert!(
        (numeric - grads[idx]).abs() < 3e-2 * grads[idx].abs().max(0.2),
        "numeric {numeric} vs analytic {}",
        grads[idx]
    );
}

/// Every model in the zoo compiles and runs a finite forward/backward at
/// every optimization level.
#[test]
fn model_zoo_runs_at_all_opt_levels() {
    let cfg = ModelConfig {
        batch: 2,
        input_size: 32,
        channel_div: 16,
        classes: 10,
        with_loss: true,
        seed: 8,
    };
    let vgg = latte::nn::models::vgg_a(&cfg);
    for opt in [
        OptLevel::none(),
        OptLevel::full().with_fusion(false),
        OptLevel::full(),
    ] {
        let compiled = compile(&vgg.net, &opt).unwrap();
        let mut exec = Executor::new(compiled).unwrap();
        exec.set_input("data", &seeded(2 * 32 * 32 * 3, 6)).unwrap();
        exec.set_input("label", &[1.0, 2.0]).unwrap();
        exec.forward();
        let loss = exec.loss();
        assert!(loss.is_finite() && loss > 0.0, "{opt:?}: loss {loss}");
        exec.backward();
        let g = exec.read_buffer("conv1_1.g_weights").unwrap();
        assert!(g.iter().any(|x| *x != 0.0), "{opt:?}: zero gradients");
    }
}

/// Different optimization levels produce bit-compatible losses (within
/// reassociation tolerance) on the same inputs and weights.
#[test]
fn opt_levels_agree_numerically() {
    let cfg = ModelConfig {
        batch: 2,
        input_size: 16,
        channel_div: 8,
        classes: 5,
        with_loss: true,
        seed: 12,
    };
    let build = || lenet(&cfg);
    let input = seeded(2 * 16 * 16, 3);
    let labels = [1.0, 3.0];
    let mut losses = Vec::new();
    for opt in [OptLevel::none(), OptLevel::parallel_only(), OptLevel::full()] {
        let compiled = compile(&build().net, &opt).unwrap();
        let mut exec = Executor::new(compiled).unwrap();
        exec.set_input("data", &input).unwrap();
        exec.set_input("label", &labels).unwrap();
        exec.forward();
        losses.push(exec.loss());
    }
    for w in losses.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-4, "losses diverge: {losses:?}");
    }
}
