//! End-to-end numerical self-healing acceptance tests (tier-1): seeded
//! NaN-batch, corrupted-gradient, and learning-rate-spike injections
//! against a supervised training run with the health guardrails on —
//! and, as negative controls, the same injections with the guardrails
//! off.
//!
//! A note on the negative controls: in this stack a NaN never reaches
//! the *loss scalar*. ReLU computes `max(x, 0)` (which maps NaN to 0)
//! and the loss layer clamps probabilities before the log, so an
//! unguarded NaN injection does not blow the loss up to NaN — it
//! silently bricks the poisoned layer's weights and pins the loss at
//! chance level forever. That silent failure mode is precisely why the
//! buffer sentinels exist: loss-only monitoring provably cannot see it.
//! The controls therefore assert the *poisoned-parameters* signature
//! (NaN weights + chance-level loss) rather than a NaN loss.

use latte::core::{compile, OptLevel};
use latte::ir::BufferKind;
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::data::MemoryDataSource;
use latte::runtime::fault::{Fault, FaultPlan};
use latte::runtime::health::{AnomalyReaction, HealthConfig, SentinelConfig, SentinelMode};
use latte::runtime::metrics::FaultMetrics;
use latte::runtime::solver::{solve, LrPolicy, MomPolicy, Sgd, SolverParams};
use latte::runtime::supervisor::{supervise, SupervisorConfig, SupervisorReport};
use latte::runtime::Executor;

fn build_exec(seed: u64) -> Executor {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 8,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed,
    };
    Executor::new(compile(&mlp(&cfg, &[10]).net, &OptLevel::full()).unwrap()).unwrap()
}

fn training_source() -> MemoryDataSource {
    // 40 items / batch 4 = 10 iterations per epoch.
    let items: Vec<(Vec<f32>, f32)> = (0..40)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..8)
                .map(|j| {
                    let base = if j % 3 == class { 1.0 } else { 0.05 };
                    base + ((i * 8 + j) % 11) as f32 * 0.01
                })
                .collect();
            (x, class as f32)
        })
        .collect();
    MemoryDataSource::try_new("data", "label", items, 4).unwrap()
}

fn training_params() -> SolverParams {
    SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.1 },
        mom_policy: MomPolicy::None,
        regu_coef: 0.0,
        max_epoch: 3,
    }
}

/// The guarded health policy under test. `LATTE_SENTINEL_MODE` (set to
/// `exhaustive` in the nightly CI matrix) overrides the scan mode.
fn health() -> HealthConfig {
    HealthConfig {
        sentinel: SentinelConfig::cheap().env_override(),
        ..HealthConfig::default()
    }
}

fn ckpt(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("latte_e2e_self_healing");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.bin"))
}

fn run_supervised(
    cfg: &SupervisorConfig,
    plan: &mut FaultPlan,
    metrics: &FaultMetrics,
) -> (SupervisorReport, Executor) {
    let mut exec = build_exec(5);
    let mut solver = Sgd::new(training_params());
    let report = supervise(
        &mut solver,
        &mut exec,
        &mut training_source(),
        cfg,
        plan,
        metrics,
    )
    .unwrap();
    (report, exec)
}

fn fault_free_baseline() -> f32 {
    let mut exec = build_exec(5);
    let mut solver = Sgd::new(training_params());
    let report = solve(&mut solver, &mut exec, &mut training_source()).unwrap();
    assert!(
        report.final_loss < report.initial_loss,
        "baseline must learn: {report:?}"
    );
    report.final_loss
}

/// Counts non-finite parameter values after a run — the signature of a
/// network silently bricked by an unguarded NaN.
fn poisoned_params(exec: &Executor) -> usize {
    exec.scan_numerics(SentinelMode::Exhaustive, |k| matches!(k, BufferKind::Param))
        .len()
}

/// A seeded NaN batch at iteration 7: the monitored run trips a
/// sentinel, quarantines the batch, and finishes within tolerance of the
/// fault-free run. The unguarded control bricks its first layer.
#[test]
fn nan_batch_is_quarantined_and_the_run_recovers() {
    let baseline = fault_free_baseline();

    let cfg = SupervisorConfig {
        health: Some(health()),
        ..SupervisorConfig::new(ckpt("nan_guarded"))
    };
    let metrics = FaultMetrics::new();
    let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
    let (report, exec) = run_supervised(&cfg, &mut plan, &metrics);

    assert!(report.final_loss.is_finite());
    assert_eq!(report.quarantined, 1);
    assert_eq!(report.rollbacks, 0, "default policy skips, not rewinds");
    assert_eq!(poisoned_params(&exec), 0, "weights stayed clean");
    // One batch of 30 was skipped; the trajectory stays close to the
    // fault-free one.
    let rel = (report.final_loss - baseline).abs() / baseline.abs();
    assert!(
        rel < 0.25,
        "guarded loss {} vs baseline {baseline} (rel {rel})",
        report.final_loss
    );
    let snap = metrics.snapshot();
    assert_eq!(snap.batches_quarantined, 1);
    assert!(snap.sentinel_trips >= 1, "{snap:?}");
    let _ = std::fs::remove_file(&cfg.checkpoint_path);

    // Negative control: guards off, same injection.
    let unguarded = SupervisorConfig::new(ckpt("nan_unguarded"));
    let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
    let (control, exec) = run_supervised(&unguarded, &mut plan, &FaultMetrics::new());
    assert!(
        poisoned_params(&exec) > 0,
        "unguarded injection must brick the weights"
    );
    assert!(
        control.final_loss > 1.0,
        "unguarded loss pinned at chance (~ln 3), got {}",
        control.final_loss
    );
    let _ = std::fs::remove_file(&unguarded.checkpoint_path);
}

/// The same injection under a rollback policy: the run rewinds to the
/// last good checkpoint, skips the quarantined batch on replay, and
/// still converges.
#[test]
fn nan_batch_rollback_policy_rewinds_and_converges() {
    let baseline = fault_free_baseline();
    let cfg = SupervisorConfig {
        checkpoint_every: 5,
        health: Some(HealthConfig {
            on_bad_batch: AnomalyReaction::rollback_and_quarantine(),
            ..health()
        }),
        ..SupervisorConfig::new(ckpt("nan_rollback"))
    };
    let metrics = FaultMetrics::new();
    let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
    let (report, exec) = run_supervised(&cfg, &mut plan, &metrics);

    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.resumed_from, vec![5]);
    assert_eq!(report.quarantined, 1);
    assert_eq!(poisoned_params(&exec), 0);
    let rel = (report.final_loss - baseline).abs() / baseline.abs();
    assert!(rel < 0.25, "loss {} vs baseline {baseline}", report.final_loss);
    assert_eq!(metrics.snapshot().rollbacks, 1);
    let _ = std::fs::remove_file(&cfg.checkpoint_path);
}

/// A corrupted-gradient glitch at iteration 9: gradient hygiene vetoes
/// the solver step (one update is skipped, nothing else changes), and
/// the run finishes within tolerance of the fault-free run. The
/// unguarded control applies the NaN update and bricks the layer.
#[test]
fn corrupted_gradient_is_vetoed_and_the_run_recovers() {
    let baseline = fault_free_baseline();

    let cfg = SupervisorConfig {
        health: Some(health()),
        ..SupervisorConfig::new(ckpt("grad_guarded"))
    };
    let metrics = FaultMetrics::new();
    let mut plan = FaultPlan::new(vec![Fault::GradCorrupt { iter: 9 }]);
    let (report, exec) = run_supervised(&cfg, &mut plan, &metrics);

    assert!(report.final_loss.is_finite());
    assert_eq!(poisoned_params(&exec), 0, "the NaN update was vetoed");
    assert_eq!(report.quarantined, 0, "the data was never at fault");
    let rel = (report.final_loss - baseline).abs() / baseline.abs();
    assert!(
        rel < 0.25,
        "guarded loss {} vs baseline {baseline} (rel {rel})",
        report.final_loss
    );
    let snap = metrics.snapshot();
    assert_eq!(snap.grad_nonfinite_trips, 1);
    let _ = std::fs::remove_file(&cfg.checkpoint_path);

    // Negative control: the same glitch with guards off.
    let unguarded = SupervisorConfig::new(ckpt("grad_unguarded"));
    let mut plan = FaultPlan::new(vec![Fault::GradCorrupt { iter: 9 }]);
    let (control, exec) = run_supervised(&unguarded, &mut plan, &FaultMetrics::new());
    assert!(
        poisoned_params(&exec) > 0,
        "unguarded NaN gradients must brick the weights"
    );
    assert!(
        control.final_loss > 1.0,
        "unguarded loss pinned at chance, got {}",
        control.final_loss
    );
    let _ = std::fs::remove_file(&unguarded.checkpoint_path);
}

/// A learning-rate spike (×1000) mid-run: the guarded run detects the
/// divergence, cuts the rate, and rolls back until the replay survives;
/// the unguarded control diverges for good.
#[test]
fn lr_spike_is_healed_by_rate_cuts_and_rollbacks() {
    let cfg = SupervisorConfig {
        checkpoint_every: 5,
        health: Some(HealthConfig {
            // The data is innocent: the damage lives in the solver's
            // spiked schedule and the exploded weights, so the cure is
            // cut-rate-and-rewind — never quarantine.
            on_bad_batch: AnomalyReaction::rollback_and_reduce_lr(),
            on_spike: AnomalyReaction::rollback_and_reduce_lr(),
            rollback_budget: 6,
            // The loss layer clamps each item's loss at ~27.6, so a
            // spike can never exceed ~27× a unit baseline: use a
            // tighter threshold and a short warmup so post-rollback
            // divergence is re-detected instead of absorbed.
            spike_threshold: 4.0,
            warmup: 1,
            ..health()
        }),
        ..SupervisorConfig::new(ckpt("lr_guarded"))
    };
    let metrics = FaultMetrics::new();
    let mut plan = FaultPlan::new(vec![Fault::LrSpike { iter: 6, factor: 1000.0 }]);
    let (report, exec) = run_supervised(&cfg, &mut plan, &metrics);

    assert!(
        report.final_loss < 1.0,
        "healed run must actually converge: {report:?}"
    );
    assert!(report.lr_reductions >= 1, "{report:?}");
    assert!(report.rollbacks >= 1, "{report:?}");
    assert_eq!(report.quarantined, 0, "no batch deserved quarantine");
    assert_eq!(poisoned_params(&exec), 0);
    let _ = std::fs::remove_file(&cfg.checkpoint_path);

    // Negative control: the spiked schedule runs unchecked to the end.
    let unguarded = SupervisorConfig::new(ckpt("lr_unguarded"));
    let mut plan = FaultPlan::new(vec![Fault::LrSpike { iter: 6, factor: 1000.0 }]);
    let (control, exec) = run_supervised(&unguarded, &mut plan, &FaultMetrics::new());
    let wrecked = control.final_loss.is_nan()
        || control.final_loss > 1.0
        || poisoned_params(&exec) > 0;
    assert!(
        wrecked,
        "unguarded spike must wreck the run, got final loss {}",
        control.final_loss
    );
    let _ = std::fs::remove_file(&unguarded.checkpoint_path);
}
