//! Golden-IR snapshots: the compiled program text for two small
//! reference nets, at the two extreme optimization levels, checked into
//! `tests/golden/` and diffed on every CI run.
//!
//! A pipeline refactor that accidentally changes *what* the compiler
//! emits — reordered groups, lost annotations, different loop structure —
//! shows up here as a readable text diff even when it computes the same
//! numbers. Regenerate deliberately with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_ir
//! ```

use latte::core::dsl::Net;
use latte::core::{compile, CompiledNet, OptLevel};
use latte::nn::layers::{
    convolution, data, fully_connected, max_pool, relu, softmax_loss, ConvSpec,
};

/// data[6] → fc4 → relu → fc3 → softmax loss, batch 2.
fn mlp_ref() -> Net {
    let mut net = Net::new(2);
    let x = data(&mut net, "data", vec![6]);
    let fc1 = fully_connected(&mut net, "fc1", x, 4, 21);
    let a1 = relu(&mut net, "a1", fc1);
    let head = fully_connected(&mut net, "head", a1, 3, 22);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

/// data[4,4,1] → conv(2 filters, k3) → relu → pool(2,2) → fc3 → softmax
/// loss, batch 2 — exercises staging copies, fusion, and tiling.
fn conv_ref() -> Net {
    let mut net = Net::new(2);
    let x = data(&mut net, "data", vec![4, 4, 1]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(2, 3), 23);
    let act = relu(&mut net, "act", conv);
    let pool = max_pool(&mut net, "pool", act, 2, 2);
    let head = fully_connected(&mut net, "head", pool, 3, 24);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

/// The same textual format `LATTE_DUMP_IR` writes: buffer table, then
/// both phases.
fn render(net: &CompiledNet) -> String {
    let mut s = String::new();
    s.push_str("== buffers ==\n");
    for b in &net.buffers {
        s.push_str(&format!("{b}\n"));
    }
    s.push_str(&net.pretty());
    s
}

fn check(name: &str, net: &Net, opt: &OptLevel) {
    let compiled = compile(net, opt).expect("reference net compiles");
    let actual = render(&compiled);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with UPDATE_GOLDEN=1 cargo test --test golden_ir",
            path.display()
        )
    });
    if expected != actual {
        // Pin the first diverging line so CI logs are readable without
        // downloading artifacts.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
        panic!(
            "golden IR mismatch for `{name}` (first difference at line {line}).\n\
             If the change is intentional, regenerate with:\n\
             UPDATE_GOLDEN=1 cargo test --test golden_ir\n\
             and commit the updated snapshot.\n\
             --- expected: {}\n+++ actual (truncated to 40 lines around the diff) ---\n{}",
            path.display(),
            actual
                .lines()
                .skip(line.saturating_sub(20))
                .take(40)
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

#[test]
fn mlp_none_matches_golden() {
    check("mlp-none", &mlp_ref(), &OptLevel::none());
}

#[test]
fn mlp_full_matches_golden() {
    check("mlp-full", &mlp_ref(), &OptLevel::full());
}

#[test]
fn conv_none_matches_golden() {
    check("conv-none", &conv_ref(), &OptLevel::none());
}

#[test]
fn conv_full_matches_golden() {
    check("conv-full", &conv_ref(), &OptLevel::full());
}
