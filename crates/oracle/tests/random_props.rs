//! Property tests: seeded random networks through the full differential
//! matrix. The per-PR run keeps the case count small; the nightly CI
//! `test-matrix` job raises it via the `PROPTEST_CASES` environment
//! variable (see `.github/workflows/ci.yml`).

use latte_oracle::{diff_against_oracle, random_net, standard_configs, Tolerance};
use proptest::prelude::*;

/// The case count, overridable by CI: `PROPTEST_CASES=64` runs a deeper
/// sweep on the nightly schedule.
fn proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(6)))]

    #[test]
    fn random_nets_match_oracle_under_all_configs(seed in 0u64..1_000_000) {
        let rn = random_net(seed);
        let report = diff_against_oracle(
            &rn.net,
            &rn.inputs,
            &standard_configs(),
            &Tolerance::default(),
        );
        let report = match report {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::Fail(format!("{}: {e}", rn.description))),
        };
        prop_assert!(report.buffers_compared > 0, "{}: vacuous comparison", rn.description);
        prop_assert!(report.is_clean(), "{}\n{report}", rn.description);
    }
}
