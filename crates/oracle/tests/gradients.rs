//! Finite-difference validation of the synthesized backward pass on
//! every parameterized layer family: fully-connected, convolution (in
//! the fused conv+ReLU+pool chain), softmax loss, and the LSTM cell.

mod common;

use latte_oracle::{check_gradients, GradCheckConfig};

use common::{classifier_net, conv_net, fc_net, fusion_chain, lstm_net, TestNet};

fn assert_grads(name: &str, t: &TestNet, cfg: &GradCheckConfig) {
    let report = check_gradients(&t.net, &t.inputs, cfg)
        .unwrap_or_else(|e| panic!("{name}: gradient check failed to run: {e}"));
    assert!(
        !report.buffers_checked.is_empty() && report.elements_checked > 0,
        "{name}: no gradients were checked — the test is vacuous"
    );
    assert!(report.is_clean(), "{name}:\n{report}");
}

#[test]
fn fc_gradients_match_finite_differences() {
    assert_grads("fc", &fc_net(), &GradCheckConfig::default());
}

#[test]
fn fc_input_gradients_match_finite_differences() {
    let cfg = GradCheckConfig { check_inputs: true, ..GradCheckConfig::default() };
    let t = fc_net();
    let report = check_gradients(&t.net, &t.inputs, &cfg).unwrap();
    assert!(report.is_clean(), "fc inputs:\n{report}");
    assert!(
        report.buffers_checked.iter().any(|b| b == "data.grad"),
        "input gradient buffer was not checked: {:?}",
        report.buffers_checked
    );
}

#[test]
fn conv_gradients_match_finite_differences() {
    assert_grads("conv", &conv_net(), &GradCheckConfig::default());
}

#[test]
fn fused_chain_gradients_match_finite_differences() {
    // ReLU kinks and max-pool argmax switches make large steps unsafe:
    // keep h small so no unit crosses its kink during perturbation.
    let cfg = GradCheckConfig { step: 1e-3, ..GradCheckConfig::default() };
    assert_grads("fusion-chain", &fusion_chain(), &cfg);
}

#[test]
fn softmax_classifier_gradients_match_finite_differences() {
    let cfg = GradCheckConfig { step: 1e-3, ..GradCheckConfig::default() };
    assert_grads("classifier", &classifier_net(), &cfg);
}

#[test]
fn lstm_gradients_match_finite_differences() {
    assert_grads("lstm", &lstm_net(2), &GradCheckConfig::default());
}
