//! Differential coverage for the liveness arena (`ExecConfig::arena`).
//!
//! The arena changes *where buffers live*, never *what they hold*: for
//! every harness net and every standard optimization configuration, an
//! arena-on executor must produce bit-identical contents for every
//! buffer it still materializes, and a structured
//! [`RuntimeError::BufferRetired`] — never another buffer's stale bytes —
//! for every buffer it retired.

mod common;

use common::{classifier_net, conv_net, fc_net, fusion_chain, lstm_net, TestNet};
use latte_core::{compile, OptLevel};
use latte_oracle::standard_configs;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor, RuntimeError};

fn executor(t: &TestNet, opt: &OptLevel, arena: bool) -> Executor {
    let compiled = compile(&t.net, opt).expect("compile");
    let mut exec = Executor::with_registry(
        compiled,
        &KernelRegistry::with_builtins(),
        ExecConfig { threads: 1, arena, gemm_blocking: None },
    )
    .expect("lower");
    for (ensemble, data) in &t.inputs {
        exec.set_input(ensemble, data).expect("input");
    }
    exec
}

/// Runs one training step arena-off and arena-on and compares every
/// buffer bit-for-bit. Returns how many buffers the arena retired.
fn assert_bit_identical(t: &TestNet, opt: &OptLevel, label: &str) -> usize {
    let mut off = executor(t, opt, false);
    let mut on = executor(t, opt, true);
    off.forward();
    off.backward();
    on.forward();
    on.backward();
    assert_eq!(
        off.loss().to_bits(),
        on.loss().to_bits(),
        "[{label}] loss diverged under the arena"
    );

    let names: Vec<String> = off
        .compiled()
        .buffers
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let mut retired = 0;
    for name in names {
        let reference = off
            .read_buffer(&name)
            .expect("every buffer is readable without the arena");
        match on.read_buffer(&name) {
            Ok(v) => {
                assert_eq!(
                    v.len(),
                    reference.len(),
                    "[{label}] `{name}` length diverged under the arena"
                );
                for (i, (a, b)) in reference.iter().zip(&v).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "[{label}] `{name}`[{i}]: {a} vs {b}"
                    );
                }
            }
            // Retired contents are unavailable *as a structured error*;
            // any other failure (or stale data, caught above) is a bug.
            Err(RuntimeError::BufferRetired { .. }) => retired += 1,
            Err(e) => panic!("[{label}] `{name}`: unexpected error {e}"),
        }
    }
    retired
}

#[test]
fn fc_net_is_bit_identical_across_all_configs() {
    let t = fc_net();
    for (label, opt) in standard_configs() {
        assert_bit_identical(&t, &opt, &format!("fc/{label}"));
    }
}

#[test]
fn conv_net_is_bit_identical_across_all_configs() {
    let t = conv_net();
    for (label, opt) in standard_configs() {
        assert_bit_identical(&t, &opt, &format!("conv/{label}"));
    }
}

#[test]
fn fusion_chain_is_bit_identical_across_all_configs() {
    let t = fusion_chain();
    for (label, opt) in standard_configs() {
        assert_bit_identical(&t, &opt, &format!("fusion/{label}"));
    }
}

#[test]
fn classifier_net_is_bit_identical_across_all_configs() {
    let t = classifier_net();
    for (label, opt) in standard_configs() {
        assert_bit_identical(&t, &opt, &format!("classifier/{label}"));
    }
}

#[test]
fn lstm_net_is_bit_identical_across_all_configs() {
    let t = lstm_net(2);
    for (label, opt) in standard_configs() {
        assert_bit_identical(&t, &opt, &format!("lstm/{label}"));
    }
}

/// The paper's memory argument, measurably: on the conv→ReLU→pool→fc
/// reference net the packed arena allocates strictly fewer floats than
/// one-buffer-per-declaration, and actually retires something (so the
/// bit-identity sweep above exercises the `BufferRetired` path, not just
/// the trivial all-retained layout).
#[test]
fn arena_shrinks_fusion_chain_footprint() {
    let t = fusion_chain();
    let retired = assert_bit_identical(&t, &OptLevel::full(), "fusion/full");
    assert!(retired > 0, "expected the arena to retire some buffer");

    let off = executor(&t, &OptLevel::full(), false);
    let on = executor(&t, &OptLevel::full(), true);
    assert!(
        on.allocated_elements() < off.allocated_elements(),
        "arena footprint {} should beat per-declaration footprint {}",
        on.allocated_elements(),
        off.allocated_elements()
    );
    assert!(on.plan().arena());
    assert!(!off.plan().arena());
}

/// A second training step must behave identically too: slot recycling
/// from step 1 must not leak into step 2 (zero-on-entry resets every
/// occupant).
#[test]
fn second_step_stays_bit_identical() {
    let t = fusion_chain();
    let mut off = executor(&t, &OptLevel::full(), false);
    let mut on = executor(&t, &OptLevel::full(), true);
    for _ in 0..2 {
        off.forward();
        off.backward();
        on.forward();
        on.backward();
    }
    assert_eq!(off.loss().to_bits(), on.loss().to_bits());
    let grads: Vec<String> = off.params().iter().map(|p| p.grad.clone()).collect();
    assert!(!grads.is_empty());
    for p in grads {
        let a = off.read_buffer(&p).expect("param grad");
        let b = on.read_buffer(&p).expect("param grads are retained");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "`{p}` diverged on step 2");
        }
    }
}
