//! Eager-vs-JIT differential: a recorded trace executed eagerly (stepped
//! through the reference interpreter with no optimization) must be
//! **bit-identical** to the same trace JIT-compiled through the
//! `TraceCache` at every `standard_configs()` opt level — on the loss and
//! on every activation buffer that is a primary declaration in both
//! compilations.
//!
//! Bitwise equality holds because the executor's narrow-GEMM fast path
//! accumulates in the same order as the interpreter's naive GEMM for
//! every forward GEMM these nets produce. Gradients are excluded: the
//! backward weight-update GEMMs take the tiled FMA path, which is
//! tolerance-close but not bit-equal (the ordinary differential tests
//! cover them).

mod common;

use std::collections::HashSet;
use std::sync::Arc;

use latte_core::Trace;
use latte_ir::BufferKind;
use latte_oracle::{standard_configs, EagerSession};
use latte_runtime::pool::WorkerPool;
use latte_runtime::{ExecConfig, Executor, TraceCache};

use common::TestNet;

fn feed_eager(eager: &mut EagerSession, inputs: &[(String, Vec<f32>)]) {
    for (name, values) in inputs {
        eager.set_input(name, values).unwrap();
    }
}

fn feed_exec(exec: &mut Executor, inputs: &[(String, Vec<f32>)]) {
    for (name, values) in inputs {
        exec.set_input(name, values).unwrap();
    }
}

/// Activation buffers primary in both compilations: the comparable
/// surface (aliasing differs between opt levels).
fn shared_primaries(eager: &EagerSession, exec: &Executor) -> Vec<String> {
    let subject: HashSet<&str> = exec
        .compiled()
        .buffers
        .iter()
        .filter(|b| b.kind == BufferKind::Value && b.alias_of.is_none())
        .map(|b| b.name.as_str())
        .collect();
    eager
        .interp()
        .compiled()
        .buffers
        .iter()
        .filter(|b| {
            b.kind == BufferKind::Value && b.alias_of.is_none() && subject.contains(b.name.as_str())
        })
        .map(|b| b.name.clone())
        .collect()
}

fn assert_bit_identical(tag: &str, eager: &EagerSession, exec: &Executor) {
    let names = shared_primaries(eager, exec);
    assert!(!names.is_empty(), "[{tag}] no comparable buffers");
    for name in names {
        let a = eager.read_buffer(&name).unwrap();
        let b = exec.read_buffer(&name).unwrap();
        assert_eq!(a.len(), b.len(), "[{tag}] {name} length");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "[{tag}] {name}[{i}]: eager {x} vs jit {y}"
            );
        }
    }
    assert_eq!(
        eager.loss().to_bits(),
        exec.loss().to_bits(),
        "[{tag}] loss: eager {} vs jit {}",
        eager.loss(),
        exec.loss()
    );
}

fn run_differential(label: &str, build: fn() -> TestNet) {
    let TestNet { net, inputs } = build();
    let pool = Arc::new(WorkerPool::new(ExecConfig::default().threads));
    let mut cache = TraceCache::new(32);

    // Eager side: record the trace, step it through the interpreter.
    let trace = Trace::from_net(net);
    let mut eager = EagerSession::new(&trace).unwrap();
    feed_eager(&mut eager, &inputs);
    eager.forward().unwrap();

    for (tag, opt) in standard_configs() {
        let tag = format!("{label}/{tag}");
        // JIT cold path: first sighting compiles through the cache.
        let passes_before = cache.stats().passes_run;
        let program = cache.get(&trace, &opt).unwrap();
        assert!(cache.stats().passes_run > passes_before, "[{tag}] no compile");
        let mut exec = program.instantiate(Arc::clone(&pool)).unwrap();
        feed_exec(&mut exec, &inputs);
        exec.forward();
        assert_bit_identical(&format!("{tag}/cold"), &eager, &exec);

        // JIT warm path: second sighting must compile zero passes and
        // still produce identical bits from a fresh instantiation.
        let passes_cold = cache.stats().passes_run;
        let cached = cache.get(&trace, &opt).unwrap();
        assert_eq!(
            cache.stats().passes_run,
            passes_cold,
            "[{tag}] warm lookup ran compiler passes"
        );
        let mut warm = cached.instantiate(Arc::clone(&pool)).unwrap();
        feed_exec(&mut warm, &inputs);
        warm.forward();
        assert_bit_identical(&format!("{tag}/warm"), &eager, &warm);
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, standard_configs().len());
    assert_eq!(stats.hits, standard_configs().len());
}

#[test]
fn eager_matches_jit_fc() {
    run_differential("fc", common::fc_net);
}

#[test]
fn eager_matches_jit_conv() {
    run_differential("conv", common::conv_net);
}

#[test]
fn eager_matches_jit_fusion() {
    run_differential("fusion", common::fusion_chain);
}

#[test]
fn eager_matches_jit_classifier() {
    run_differential("classifier", common::classifier_net);
}

#[test]
fn eager_matches_jit_lstm() {
    run_differential("lstm", || common::lstm_net(2));
}

/// Stepping the eager session is observable: each step completes one
/// more op-group, and the final step reports completion.
#[test]
fn eager_session_steps_incrementally() {
    let TestNet { net, inputs } = common::fc_net();
    let trace = Trace::from_net(net);
    let mut eager = EagerSession::new(&trace).unwrap();
    feed_eager(&mut eager, &inputs);
    let mut steps = 0;
    while eager.step().unwrap() {
        steps += 1;
    }
    assert!(steps > 2, "expected several op-groups, got {steps}");
    // A finished session reports no more work.
    assert!(!eager.step().unwrap());
    assert!(eager.loss().is_finite());
}
