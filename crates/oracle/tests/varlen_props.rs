//! Property tests for dynamic shapes: a bucketed variable-length batch
//! must be bit-identical (`to_bits()`) to a solo fixed-length unroll for
//! every length 1..=12, and the trace cache's warm path must reproduce
//! its cold path exactly — across the five oracle nets.
//!
//! Correctness of bucketing rests on the mask-select readout: padding a
//! length-`len` sequence to its power-of-two bucket adds only zero-input
//! steps nobody reads, and the one-hot mask reproduces `h_{len-1}` bit
//! for bit (see `latte_nn::varlen`).

mod common;

use std::sync::Arc;

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel, Trace};
use latte_ir::BufferKind;
use latte_nn::layers::{data, fully_connected, softmax_loss};
use latte_nn::rnn::lstm;
use latte_nn::varlen::{bucket_len, last_step_mask, lstm_seq};
use latte_runtime::pool::WorkerPool;
use latte_runtime::{ExecConfig, Executor, TraceCache};
use proptest::prelude::*;

const BATCH: usize = 2;
const WIDTH: usize = 3;
const HIDDEN: usize = 4;
const CLASSES: usize = 3;
const LSTM_SEED: u64 = 19;
const HEAD_SEED: u64 = 20;

fn proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)).wrapping_mul(1)
}

fn uniform(state: &mut u64) -> f32 {
    ((splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn step_inputs(seed: u64, len: usize) -> Vec<Vec<f32>> {
    let mut state = seed;
    (0..len)
        .map(|_| (0..BATCH * WIDTH).map(|_| uniform(&mut state)).collect())
        .collect()
}

fn labels(seed: u64) -> Vec<f32> {
    let mut state = seed ^ 0xdead_beef;
    (0..BATCH)
        .map(|_| (splitmix64(&mut state) as usize % CLASSES) as f32)
        .collect()
}

/// The solo reference: the same LSTM unit unrolled to exactly `len`
/// steps, head on the true last hidden state.
fn solo_net(len: usize) -> Net {
    let mut step_net = Net::new(BATCH);
    let x = data(&mut step_net, "x", vec![WIDTH]);
    lstm(&mut step_net, "lstm", x, HIDDEN, LSTM_SEED);
    let mut net = step_net.unroll(len);
    let last = net.find(&format!("lstm_h@t{}", len - 1)).unwrap();
    let head = fully_connected(&mut net, "head", last, CLASSES, HEAD_SEED);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

/// The bucketed subject: unrolled to `bucket_len(len)` with a mask-select
/// readout, same seeds → same parameters as the solo net.
fn bucketed_net(len: usize) -> (Net, usize) {
    let bucket = bucket_len(len);
    let (mut net, seq) = lstm_seq(BATCH, "lstm", WIDTH, HIDDEN, bucket, LSTM_SEED);
    let head = fully_connected(&mut net, "head", seq.readout, CLASSES, HEAD_SEED);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    (net, bucket)
}

fn feed_solo(exec: &mut Executor, xs: &[Vec<f32>], labels: &[f32]) {
    for (t, x) in xs.iter().enumerate() {
        exec.set_input(&format!("x@t{t}"), x).unwrap();
    }
    exec.set_input("label", labels).unwrap();
}

fn feed_bucketed(exec: &mut Executor, xs: &[Vec<f32>], labels: &[f32], len: usize, bucket: usize) {
    debug_assert_eq!(xs.len(), len);
    let zero = vec![0.0; BATCH * WIDTH];
    for t in 0..bucket {
        // Padded steps past the true length carry exact zeros.
        let x = xs.get(t).unwrap_or(&zero);
        exec.set_input(&format!("x@t{t}"), x).unwrap();
    }
    let mask = last_step_mask(len, bucket);
    let batched: Vec<f32> = (0..BATCH).flat_map(|_| mask.iter().copied()).collect();
    exec.set_input("lstm_last_mask", &batched).unwrap();
    exec.set_input("label", labels).unwrap();
}

fn assert_bits(tag: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "[{tag}] length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "[{tag}] [{i}]: {x} vs {y}");
    }
}

fn param_grads(exec: &mut Executor) -> Vec<(String, Vec<f32>)> {
    let mut out = Vec::new();
    exec.for_each_param_grad_mut(|name, g| out.push((name.to_string(), g.to_vec())));
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(12)))]

    /// Any length 1..=12, any input stream: the bucketed batch equals the
    /// solo fixed unroll bit for bit — loss, readout vs true last hidden
    /// state, and every shared parameter gradient — on both the cold
    /// (compile) and warm (cache-hit) plan paths.
    #[test]
    fn bucketed_varlen_is_bit_identical_to_solo_unroll(
        len in 1usize..13,
        seed in 0u64..1_000_000,
    ) {
        let opt = OptLevel::full();
        let pool = Arc::new(WorkerPool::new(ExecConfig::default().threads));
        let xs = step_inputs(seed, len);
        let y = labels(seed);

        let mut solo = Executor::new(compile(&solo_net(len), &opt).unwrap()).unwrap();
        feed_solo(&mut solo, &xs, &y);
        solo.forward();
        solo.backward();
        let solo_h = solo.read_buffer(&format!("lstm_h@t{}.value", len - 1)).unwrap();
        let solo_grads = param_grads(&mut solo);

        let (net, bucket) = bucketed_net(len);
        let trace = Trace::from_net_bucketed(net, bucket);
        let mut cache = TraceCache::new(8);
        for path in ["cold", "warm"] {
            let passes = cache.stats().passes_run;
            let program = cache.get(&trace, &opt).unwrap();
            if path == "warm" {
                prop_assert_eq!(cache.stats().passes_run, passes, "warm path compiled");
            }
            let mut exec = program.instantiate(Arc::clone(&pool)).unwrap();
            feed_bucketed(&mut exec, &xs, &y, len, bucket);
            exec.forward();
            exec.backward();
            let tag = format!("len={len} bucket={bucket} {path}");
            assert_bits(
                &format!("{tag} readout"),
                &exec.read_buffer("lstm_last.value").unwrap(),
                &solo_h,
            );
            prop_assert_eq!(
                exec.loss().to_bits(),
                solo.loss().to_bits(),
                "[{}] loss {} vs {}", tag, exec.loss(), solo.loss()
            );
            // Shared step-0 parameter gradients accumulate identically:
            // padded steps contribute exact zeros.
            let grads = param_grads(&mut exec);
            prop_assert_eq!(grads.len(), solo_grads.len());
            for ((na, ga), (nb, gb)) in grads.iter().zip(&solo_grads) {
                prop_assert_eq!(na, nb);
                assert_bits(&format!("{tag} grad {na}"), ga, gb);
            }
        }
    }

    /// Across the five oracle nets: a warm cache instantiation is
    /// bit-identical to the cold one on every primary activation buffer
    /// and the loss, with zero compiler passes on the warm path.
    #[test]
    fn cache_paths_agree_on_oracle_nets(which in 0usize..5, scale in 0.25f32..2.0) {
        let common::TestNet { net, inputs } = match which {
            0 => common::fc_net(),
            1 => common::conv_net(),
            2 => common::fusion_chain(),
            3 => common::classifier_net(),
            _ => common::lstm_net(2),
        };
        // Perturb the inputs so every case exercises fresh values (labels
        // stay integral class indices).
        let inputs: Vec<(String, Vec<f32>)> = inputs
            .into_iter()
            .map(|(name, v)| {
                if name == "label" {
                    (name, v)
                } else {
                    (name, v.into_iter().map(|x| x * scale).collect())
                }
            })
            .collect();
        let opt = OptLevel::full();
        let pool = Arc::new(WorkerPool::new(ExecConfig::default().threads));
        let trace = Trace::from_net(net);
        let mut cache = TraceCache::new(8);

        let run = |cache: &mut TraceCache| {
            let program = cache.get(&trace, &opt).unwrap();
            let mut exec = program.instantiate(Arc::clone(&pool)).unwrap();
            for (name, v) in &inputs {
                exec.set_input(name, v).unwrap();
            }
            exec.forward();
            exec.backward();
            exec
        };
        let cold = run(&mut cache);
        let passes = cache.stats().passes_run;
        let warm = run(&mut cache);
        prop_assert_eq!(cache.stats().passes_run, passes, "warm path compiled");
        prop_assert_eq!(cache.stats().hits, 1);

        prop_assert_eq!(cold.loss().to_bits(), warm.loss().to_bits());
        for b in &cold.compiled().buffers {
            if b.kind == BufferKind::Value && b.alias_of.is_none() {
                assert_bits(
                    &format!("net {which} {}", b.name),
                    &cold.read_buffer(&b.name).unwrap(),
                    &warm.read_buffer(&b.name).unwrap(),
                );
            }
        }
    }
}
