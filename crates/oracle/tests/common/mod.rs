//! Shared network builders for the harness integration tests.
//!
//! Each builder returns the network plus the exact `(ensemble, values)`
//! inputs to drive it — deterministic (seeded), so every test failure
//! reproduces byte-for-byte.

use latte_core::dsl::Net;
use latte_nn::layers::{
    convolution, data, fully_connected, max_pool, relu, sigmoid, softmax_loss, tanh, ConvSpec,
};
use latte_nn::rnn::lstm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A test network plus its input feed.
pub struct TestNet {
    pub net: Net,
    pub inputs: Vec<(String, Vec<f32>)>,
}

fn values(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn labels(rng: &mut StdRng, batch: usize, classes: usize) -> Vec<f32> {
    (0..batch).map(|_| rng.gen_range(0..classes) as f32).collect()
}

/// Plain fully-connected MLP: data[5] → fc8+tanh → fc6+sigmoid → fc4 →
/// softmax loss, batch 3.
pub fn fc_net() -> TestNet {
    let mut rng = StdRng::seed_from_u64(101);
    let (batch, input, classes) = (3, 5, 4);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![input]);
    let fc1 = fully_connected(&mut net, "fc1", x, 8, 7);
    let a1 = tanh(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 6, 8);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, classes, 9);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), values(&mut rng, batch * input)),
        ("label".to_string(), labels(&mut rng, batch, classes)),
    ];
    TestNet { net, inputs }
}

/// Single convolution straight into a classifier head, batch 2.
pub fn conv_net() -> TestNet {
    let mut rng = StdRng::seed_from_u64(202);
    let (batch, side, in_c, classes) = (2, 5, 2, 3);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![side, side, in_c]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(3, 3), 11);
    let head = fully_connected(&mut net, "head", conv, classes, 12);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), values(&mut rng, batch * side * side * in_c)),
        ("label".to_string(), labels(&mut rng, batch, classes)),
    ];
    TestNet { net, inputs }
}

/// The fusion chain of the paper's Section 5.3: conv → ReLU → max-pool →
/// fc → softmax loss, batch 2. Under `OptLevel::full()` the conv/ReLU/
/// pool trio fuses and tiles; the oracle runs it unfused.
pub fn fusion_chain() -> TestNet {
    let mut rng = StdRng::seed_from_u64(303);
    let (batch, side, classes) = (2, 6, 3);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![side, side, 1]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(2, 3), 13);
    let act = relu(&mut net, "act", conv);
    let pool = max_pool(&mut net, "pool", act, 2, 2);
    let head = fully_connected(&mut net, "head", pool, classes, 14);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), values(&mut rng, batch * side * side)),
        ("label".to_string(), labels(&mut rng, batch, classes)),
    ];
    TestNet { net, inputs }
}

/// Deeper softmax classifier: data[7] → fc10+relu → fc8+sigmoid → fc5 →
/// softmax loss, batch 4.
pub fn classifier_net() -> TestNet {
    let mut rng = StdRng::seed_from_u64(404);
    let (batch, input, classes) = (4, 7, 5);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![input]);
    let fc1 = fully_connected(&mut net, "fc1", x, 10, 15);
    let a1 = relu(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 8, 16);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, classes, 17);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), values(&mut rng, batch * input)),
        ("label".to_string(), labels(&mut rng, batch, classes)),
    ];
    TestNet { net, inputs }
}

/// An LSTM unrolled over `steps` time steps with a classifier head on the
/// final hidden state, batch 2.
pub fn lstm_net(steps: usize) -> TestNet {
    let mut rng = StdRng::seed_from_u64(505);
    let (batch, width, hidden, classes) = (2, 3, 4, 3);
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![width]);
    lstm(&mut step_net, "lstm", x, hidden, 19);
    let mut net = step_net.unroll(steps);
    let final_h = net
        .find(&format!("lstm_h@t{}", steps - 1))
        .expect("unrolled LSTM output missing");
    let head = fully_connected(&mut net, "head", final_h, classes, 20);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let mut inputs: Vec<(String, Vec<f32>)> = (0..steps)
        .map(|t| (format!("x@t{t}"), values(&mut rng, batch * width)))
        .collect();
    inputs.push(("label".to_string(), labels(&mut rng, batch, classes)));
    TestNet { net, inputs }
}
