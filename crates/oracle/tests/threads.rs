//! Differential coverage for the worker pool (`ExecConfig::threads`).
//!
//! The thread count changes *who computes*, never *what is computed*:
//! parallel kernel groups route items through fixed gradient lanes and
//! `compute_parallel` partitions a fixed macro-tile grid, so for every
//! harness net and every standard optimization configuration an executor
//! run with 2 or 4 worker threads must produce bit-identical buffers to
//! a single-threaded one — across a forward pass and two full training
//! steps with parameter updates in between.

mod common;

use common::{classifier_net, conv_net, fc_net, fusion_chain, lstm_net, TestNet};
use latte_core::{compile, OptLevel};
use latte_oracle::standard_configs;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor};

fn executor(t: &TestNet, opt: &OptLevel, threads: usize) -> Executor {
    let compiled = compile(&t.net, opt).expect("compile");
    let mut exec = Executor::with_registry(
        compiled,
        &KernelRegistry::with_builtins(),
        ExecConfig {
            threads,
            arena: false,
            gemm_blocking: None,
        },
    )
    .expect("lower");
    for (ensemble, data) in &t.inputs {
        exec.set_input(ensemble, data).expect("input");
    }
    exec
}

/// One forward pass plus two SGD training steps — enough to flow any
/// thread-dependent divergence through gradients into parameters and
/// back into activations on the next step.
fn train(exec: &mut Executor) -> Vec<f32> {
    let mut losses = Vec::new();
    exec.forward();
    losses.push(exec.loss());
    for _ in 0..2 {
        exec.backward();
        exec.for_each_param_mut(|value, grad, lr_mult| {
            for (v, g) in value.iter_mut().zip(grad) {
                *v -= 0.01 * lr_mult * g;
            }
        });
        exec.forward();
        losses.push(exec.loss());
    }
    losses
}

fn assert_threads_bit_identical(t: &TestNet, opt: &OptLevel, threads: usize, label: &str) {
    let mut one = executor(t, opt, 1);
    let mut many = executor(t, opt, threads);
    let losses_one = train(&mut one);
    let losses_many = train(&mut many);
    for (step, (a, b)) in losses_one.iter().zip(&losses_many).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "[{label}] loss diverged at step {step} with {threads} threads: {a} vs {b}"
        );
    }

    let names: Vec<String> = one
        .compiled()
        .buffers
        .iter()
        .map(|d| d.name.clone())
        .collect();
    for name in names {
        let reference = one.read_buffer(&name).expect("buffer readable at 1 thread");
        let parallel = many
            .read_buffer(&name)
            .expect("buffer readable at N threads");
        assert_eq!(
            reference.len(),
            parallel.len(),
            "[{label}] `{name}` length diverged with {threads} threads"
        );
        for (i, (a, b)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "[{label}] `{name}`[{i}] with {threads} threads: {a} vs {b}"
            );
        }
    }
}

fn sweep(t: &TestNet, net_label: &str) {
    for (label, opt) in standard_configs() {
        for threads in [2, 4] {
            assert_threads_bit_identical(t, &opt, threads, &format!("{net_label}/{label}"));
        }
    }
}

#[test]
fn fc_net_is_bit_identical_across_thread_counts() {
    sweep(&fc_net(), "fc");
}

#[test]
fn conv_net_is_bit_identical_across_thread_counts() {
    sweep(&conv_net(), "conv");
}

#[test]
fn fusion_chain_is_bit_identical_across_thread_counts() {
    sweep(&fusion_chain(), "fusion");
}

#[test]
fn classifier_net_is_bit_identical_across_thread_counts() {
    sweep(&classifier_net(), "classifier");
}

#[test]
fn lstm_net_is_bit_identical_across_thread_counts() {
    sweep(&lstm_net(2), "lstm");
}
