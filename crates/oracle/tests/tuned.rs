//! Tuned-schedule differential matrix: every sampled point of the
//! autotuner's search space must be **bit-identical** to the default
//! schedule, across all five oracle networks and all nine standard
//! `OptLevel` configurations. Tuning may change speed, never bits — the
//! search space was constructed that way (serial/parallel rides the
//! fixed-lane runtime schedule, tile overrides never reassociate, GEMM
//! blocking pins `kc`), and this matrix holds the compiler to it.

mod common;

use latte_core::{compile, compile_tuned, TunedSchedule};
use latte_ir::BufferKind;
use latte_oracle::standard_configs;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor};

use common::{classifier_net, conv_net, fc_net, fusion_chain, lstm_net, TestNet};

/// Representative points of the tuner's search space: each axis alone at
/// its extremes, plus the fully-combined schedule.
fn sampled_schedules() -> Vec<(&'static str, TunedSchedule)> {
    vec![
        ("all-serial", TunedSchedule::all_serial()),
        ("tile4", TunedSchedule { tile_size: Some(4), ..TunedSchedule::default() }),
        ("tile8", TunedSchedule { tile_size: Some(8), ..TunedSchedule::default() }),
        (
            "blocking-small",
            TunedSchedule {
                gemm_blocking: Some((256, 256, 32)),
                ..TunedSchedule::default()
            },
        ),
        (
            "blocking-wide",
            TunedSchedule {
                gemm_blocking: Some((256, 1024, 128)),
                ..TunedSchedule::default()
            },
        ),
        (
            "combined",
            TunedSchedule {
                tile_size: Some(4),
                gemm_blocking: Some((256, 256, 32)),
                parallel_default: false,
                ..TunedSchedule::default()
            },
        ),
    ]
}

/// Runs one compiled subject to completion and returns every comparable
/// buffer (values, gradients, parameter gradients) by name.
fn run_subject(
    compiled: latte_core::CompiledNet,
    threads: usize,
    gemm_blocking: Option<(usize, usize, usize)>,
    inputs: &[(String, Vec<f32>)],
) -> Vec<(String, Vec<f32>)> {
    let compared: Vec<String> = compiled
        .buffers
        .iter()
        .filter(|d| {
            matches!(d.kind, BufferKind::Value | BufferKind::Grad | BufferKind::ParamGrad)
        })
        .map(|d| d.name.clone())
        .collect();
    let mut exec = Executor::with_registry(
        compiled,
        &KernelRegistry::with_builtins(),
        ExecConfig { threads, arena: false, gemm_blocking },
    )
    .expect("lower subject");
    for (ensemble, data) in inputs {
        exec.set_input(ensemble, data).expect("input");
    }
    exec.forward();
    exec.backward();
    compared
        .into_iter()
        .map(|name| {
            let data = exec.read_buffer(&name).expect("read buffer");
            (name, data)
        })
        .collect()
}

fn assert_tuned_matches_default(name: &str, t: &TestNet) {
    let configs = standard_configs();
    assert_eq!(configs.len(), 9, "the standard matrix must stay complete");
    let schedules = sampled_schedules();
    for (label, opt) in &configs {
        let threads = if opt.parallel { 4 } else { 1 };
        let baseline = run_subject(
            compile(&t.net, opt).expect("default compile"),
            threads,
            None,
            &t.inputs,
        );
        assert!(!baseline.is_empty(), "{name}/{label}: nothing compared");
        for (sched_name, schedule) in &schedules {
            let tuned = run_subject(
                compile_tuned(&t.net, opt, schedule).expect("tuned compile"),
                threads,
                schedule.gemm_blocking,
                &t.inputs,
            );
            assert_eq!(
                baseline.len(),
                tuned.len(),
                "{name}/{label}/{sched_name}: buffer sets diverged"
            );
            for ((bname, base), (tname, tune)) in baseline.iter().zip(&tuned) {
                assert_eq!(bname, tname, "{name}/{label}/{sched_name}: buffer order");
                assert_eq!(base.len(), tune.len(), "{name}/{label}/{sched_name}/{bname}");
                for (i, (x, y)) in base.iter().zip(tune).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{name}/{label}/{sched_name}: {bname}[{i}] {x} vs {y}"
                    );
                }
            }
        }
    }
}

#[test]
fn tuned_fc_is_bit_identical_to_default() {
    assert_tuned_matches_default("fc", &fc_net());
}

#[test]
fn tuned_conv_is_bit_identical_to_default() {
    assert_tuned_matches_default("conv", &conv_net());
}

#[test]
fn tuned_fusion_chain_is_bit_identical_to_default() {
    assert_tuned_matches_default("fusion-chain", &fusion_chain());
}

#[test]
fn tuned_classifier_is_bit_identical_to_default() {
    assert_tuned_matches_default("classifier", &classifier_net());
}

#[test]
fn tuned_lstm_is_bit_identical_to_default() {
    assert_tuned_matches_default("lstm", &lstm_net(2));
}
