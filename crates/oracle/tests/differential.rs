//! The differential matrix: every standard `OptLevel` configuration ×
//! every representative network shape, all against the reference
//! interpreter — plus negative controls proving the harness *catches*
//! a miscompiled program.

mod common;

use latte_core::opt::sabotage;
use latte_core::{compile, OptLevel};
use latte_oracle::{diff_against_oracle, diff_compiled, standard_configs, Tolerance};

use common::{classifier_net, conv_net, fc_net, fusion_chain, lstm_net, TestNet};

fn assert_clean(name: &str, t: &TestNet) {
    let configs = standard_configs();
    assert!(configs.len() >= 6);
    let report = diff_against_oracle(&t.net, &t.inputs, &configs, &Tolerance::default())
        .unwrap_or_else(|e| panic!("{name}: harness failed: {e}"));
    assert!(
        report.buffers_compared > 0,
        "{name}: nothing was compared — the harness is vacuous"
    );
    assert!(report.is_clean(), "{name}:\n{report}");
}

#[test]
fn fc_matches_oracle_under_all_configs() {
    assert_clean("fc", &fc_net());
}

#[test]
fn conv_matches_oracle_under_all_configs() {
    assert_clean("conv", &conv_net());
}

#[test]
fn fusion_chain_matches_oracle_under_all_configs() {
    assert_clean("fusion-chain", &fusion_chain());
}

#[test]
fn classifier_matches_oracle_under_all_configs() {
    assert_clean("classifier", &classifier_net());
}

#[test]
fn lstm_matches_oracle_under_all_configs() {
    assert_clean("lstm", &lstm_net(2));
}

/// A GEMM whose reduction depth was corrupted (simulating a bad
/// pattern-match rewrite) must produce mismatch reports.
#[test]
fn sabotaged_gemm_is_caught() {
    let t = fc_net();
    let mut compiled = compile(&t.net, &OptLevel::full()).unwrap();
    assert!(
        sabotage::shrink_gemm_reduction(&mut compiled.forward),
        "expected a matched GEMM to sabotage"
    );
    let report =
        diff_compiled(&t.net, "sabotaged-gemm", compiled, &t.inputs, &Tolerance::default())
            .unwrap();
    assert!(
        !report.is_clean(),
        "harness failed to catch a corrupted GEMM reduction"
    );
    let m = &report.mismatches[0];
    assert_eq!(m.config, "sabotaged-gemm");
    assert!(!m.buffer.is_empty());
}

/// A tiled loop whose trip count was corrupted (simulating an off-by-one
/// in the tiling pass) must produce mismatch reports.
#[test]
fn sabotaged_tiling_is_caught() {
    let t = fusion_chain();
    let opt = OptLevel::none().with_tiling(true).with_fusion(true);
    let mut compiled = compile(&t.net, &opt).unwrap();
    let mutated = sabotage::shrink_first_tiled_loop(&mut compiled.forward)
        || sabotage::shrink_first_loop(&mut compiled.forward);
    assert!(mutated, "expected a loop to sabotage");
    let report =
        diff_compiled(&t.net, "sabotaged-tiling", compiled, &t.inputs, &Tolerance::default())
            .unwrap();
    assert!(
        !report.is_clean(),
        "harness failed to catch a corrupted loop extent"
    );
}

/// The backward pass is covered too: corrupting only backward groups
/// leaves forward values identical and must still be caught via
/// gradient buffers.
#[test]
fn sabotaged_backward_is_caught() {
    let t = classifier_net();
    let mut compiled = compile(&t.net, &OptLevel::full()).unwrap();
    let mutated = sabotage::shrink_gemm_reduction(&mut compiled.backward)
        || sabotage::shrink_first_loop(&mut compiled.backward);
    assert!(mutated, "expected a backward statement to sabotage");
    let report = diff_compiled(
        &t.net,
        "sabotaged-backward",
        compiled,
        &t.inputs,
        &Tolerance::default(),
    )
    .unwrap();
    assert!(
        !report.is_clean(),
        "harness failed to catch a corrupted backward pass"
    );
    assert!(
        report.mismatches.iter().all(|m| m.buffer != "«loss»"),
        "forward loss should be untouched by a backward-only sabotage"
    );
}
