//! The differential harness: every optimization level against the oracle.
//!
//! [`diff_against_oracle`] compiles one network once at
//! [`OptLevel::none`] and executes it with the reference interpreter
//! ([`crate::Interpreter`]), then compiles the *same* network under each
//! requested [`OptLevel`] configuration, runs it through the real
//! executor, and compares every activation, activation-gradient, and
//! parameter-gradient buffer — plus the scalar loss — element by element
//! within a [`Tolerance`] budget. Divergence produces structured
//! [`Mismatch`] records naming the configuration, buffer, flat index, and
//! both values, so a broken pass is not just *detected* but *located*.
//!
//! [`standard_configs`] is the default matrix: each optimization alone,
//! representative combinations, and the full pipeline. When a new pass is
//! added to the compiler, add a configuration exercising it here (see
//! DESIGN.md, "Adding a pass to the differential matrix").
//!
//! ## What is compared
//!
//! Buffers of kind `Value`, `Grad`, and `ParamGrad` that exist in both
//! compilations *and* whose storage-sharing class (the set of buffer
//! names aliased onto the same storage) is identical in both. The class
//! check is what makes buffer-sharing configurations comparable: when the
//! subject disables sharing (or fuses differently), a shared storage in
//! the oracle holds the *last* writer's values while the subject keeps
//! each value live — a semantic difference in observability, not in
//! computation. Parameter gradients and losses are never shared, so the
//! quantities that actually drive training are always compared.

use std::collections::{BTreeMap, BTreeSet};

use latte_core::dsl::Net;
use latte_core::{compile, CompileError, CompiledNet, OptLevel};
use latte_ir::BufferKind;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor, RuntimeError};

use crate::interp::Interpreter;

/// Element-comparison budget for the harness.
///
/// An element passes when `|a - b| <= abs` **or**
/// `|a - b| <= rel * max(|a|, |b|)`. The defaults absorb the
/// floating-point reassociation introduced by tiling, whole-batch GEMM
/// hoisting, and parallel reduction order, while still catching any
/// semantic change (a dropped term, a shifted index, a wrong extent)
/// by many orders of magnitude.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance against `max(|a|, |b|)`.
    pub rel: f32,
    /// Absolute tolerance for values near zero.
    pub abs: f32,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { rel: 1e-4, abs: 1e-5 }
    }
}

impl Tolerance {
    fn ok(&self, a: f32, b: f32) -> bool {
        if a == b {
            return true;
        }
        if a.is_nan() || b.is_nan() {
            return false;
        }
        let diff = (a - b).abs();
        diff <= self.abs || diff <= self.rel * a.abs().max(b.abs())
    }
}

/// One diverging element: which configuration, where, and both values.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Label of the subject's `OptLevel` configuration.
    pub config: String,
    /// Buffer name (`«loss»` for the scalar loss comparison).
    pub buffer: String,
    /// Flat index into the buffer's full storage.
    pub index: usize,
    /// The reference interpreter's value.
    pub oracle: f32,
    /// The optimized executor's value.
    pub subject: f32,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}[{}]: oracle {} vs subject {} (diff {:e})",
            self.config,
            self.buffer,
            self.index,
            self.oracle,
            self.subject,
            (self.oracle - self.subject).abs()
        )
    }
}

/// Outcome of a differential run across one or more configurations.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Configuration labels that were executed.
    pub configs: Vec<String>,
    /// Total buffers compared across all configurations.
    pub buffers_compared: usize,
    /// Total elements compared across all configurations.
    pub elements_compared: usize,
    /// Buffer names skipped because their storage-sharing class differed
    /// between oracle and subject (deduplicated).
    pub skipped: Vec<String>,
    /// Every diverging element found.
    pub mismatches: Vec<Mismatch>,
}

impl DiffReport {
    /// Whether every compared element was within tolerance.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "differential run over [{}]: {} buffers / {} elements compared, {} mismatches",
            self.configs.join(", "),
            self.buffers_compared,
            self.elements_compared,
            self.mismatches.len()
        )?;
        for m in self.mismatches.iter().take(16) {
            writeln!(f, "  {m}")?;
        }
        if self.mismatches.len() > 16 {
            writeln!(f, "  … and {} more", self.mismatches.len() - 16)?;
        }
        Ok(())
    }
}

/// Harness failure: the network failed to compile or a run failed outright
/// (as opposed to running and producing diverging values).
#[derive(Debug)]
pub enum DiffError {
    /// Compilation of the oracle or a subject configuration failed.
    Compile(CompileError),
    /// Lowering or execution failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Compile(e) => write!(f, "compile error: {e}"),
            DiffError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<CompileError> for DiffError {
    fn from(e: CompileError) -> Self {
        DiffError::Compile(e)
    }
}

impl From<RuntimeError> for DiffError {
    fn from(e: RuntimeError) -> Self {
        DiffError::Runtime(e)
    }
}

/// The default opt-level matrix: each transformation in isolation,
/// meaningful pairings, and the full pipeline.
pub fn standard_configs() -> Vec<(String, OptLevel)> {
    vec![
        ("none".into(), OptLevel::none()),
        ("pattern-match".into(), OptLevel::none().with_pattern_match(true)),
        ("tiling".into(), OptLevel::none().with_tiling(true)),
        (
            "tiling+fusion".into(),
            OptLevel::none().with_tiling(true).with_fusion(true),
        ),
        ("parallel".into(), OptLevel::parallel_only().with_tiling(true)),
        ("vectorize".into(), OptLevel::none().with_vectorize(true)),
        ("full".into(), OptLevel::full()),
        ("full+tile4".into(), OptLevel::full().with_tile_size(4)),
        (
            "full+unshared".into(),
            OptLevel::full().with_shared_buffers(false),
        ),
    ]
}

/// Compiles `net` at [`OptLevel::none`], executes it with the reference
/// interpreter, and differentially tests every `(label, OptLevel)` in
/// `configs` against it.
///
/// `inputs` lists `(data ensemble name, batch-major values)` pairs fed
/// identically to the oracle and every subject before each run.
///
/// # Errors
///
/// Fails when compilation, lowering, or execution errors out; value
/// divergence is *not* an error — it is reported via
/// [`DiffReport::mismatches`].
pub fn diff_against_oracle(
    net: &Net,
    inputs: &[(String, Vec<f32>)],
    configs: &[(String, OptLevel)],
    tol: &Tolerance,
) -> Result<DiffReport, DiffError> {
    let oracle = run_oracle(net, inputs)?;
    let mut report = DiffReport::default();
    let mut skipped = BTreeSet::new();
    for (label, opt) in configs {
        let compiled = compile(net, opt)?;
        let threads = if opt.parallel { 4 } else { 1 };
        compare_subject(&oracle, label, compiled, threads, inputs, tol, &mut report, &mut skipped)?;
    }
    report.skipped = skipped.into_iter().collect();
    Ok(report)
}

/// Differentially tests one *pre-compiled* subject against the oracle for
/// `net`. This is the entry point for harness self-tests that mutate the
/// compiled program (see `latte_core::opt::sabotage`) to prove a broken
/// pass is caught.
///
/// # Errors
///
/// See [`diff_against_oracle`].
pub fn diff_compiled(
    net: &Net,
    label: &str,
    subject: CompiledNet,
    inputs: &[(String, Vec<f32>)],
    tol: &Tolerance,
) -> Result<DiffReport, DiffError> {
    let oracle = run_oracle(net, inputs)?;
    let mut report = DiffReport::default();
    let mut skipped = BTreeSet::new();
    compare_subject(&oracle, label, subject, 1, inputs, tol, &mut report, &mut skipped)?;
    report.skipped = skipped.into_iter().collect();
    Ok(report)
}

/// Compiles and runs the oracle: `OptLevel::none()` through the
/// interpreter, forward then backward.
fn run_oracle(net: &Net, inputs: &[(String, Vec<f32>)]) -> Result<Interpreter, DiffError> {
    let compiled = compile(net, &OptLevel::none())?;
    let mut interp = Interpreter::new(compiled)?;
    for (ensemble, data) in inputs {
        interp.set_input(ensemble, data)?;
    }
    interp.forward()?;
    interp.backward()?;
    Ok(interp)
}

/// Maps every buffer name to its storage-sharing class: the sorted set of
/// names whose declarations resolve to the same storage.
fn alias_classes(net: &CompiledNet) -> BTreeMap<String, Vec<String>> {
    let mut root: BTreeMap<String, String> = BTreeMap::new();
    for decl in &net.buffers {
        let r = match &decl.alias_of {
            None => decl.name.clone(),
            // Declaration order guarantees the target's root is known.
            Some(target) => root.get(target).cloned().unwrap_or_else(|| target.clone()),
        };
        root.insert(decl.name.clone(), r);
    }
    let mut classes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, r) in &root {
        classes.entry(r.clone()).or_default().push(name.clone());
    }
    let mut by_name = BTreeMap::new();
    for members in classes.values() {
        for name in members {
            by_name.insert(name.clone(), members.clone());
        }
    }
    by_name
}

#[allow(clippy::too_many_arguments)]
fn compare_subject(
    oracle: &Interpreter,
    label: &str,
    subject: CompiledNet,
    threads: usize,
    inputs: &[(String, Vec<f32>)],
    tol: &Tolerance,
    report: &mut DiffReport,
    skipped: &mut BTreeSet<String>,
) -> Result<(), DiffError> {
    let subject_classes = alias_classes(&subject);
    let oracle_classes = alias_classes(oracle.compiled());
    let compared: Vec<String> = oracle
        .compiled()
        .buffers
        .iter()
        .filter(|d| {
            matches!(d.kind, BufferKind::Value | BufferKind::Grad | BufferKind::ParamGrad)
        })
        .map(|d| d.name.clone())
        .collect();

    let mut exec = Executor::with_registry(
        subject,
        &KernelRegistry::with_builtins(),
        ExecConfig {
            threads,
            ..ExecConfig::default()
        },
    )?;
    for (ensemble, data) in inputs {
        exec.set_input(ensemble, data)?;
    }
    exec.forward();
    exec.backward();

    report.configs.push(label.to_string());
    for name in compared {
        let (Some(oc), Some(sc)) = (oracle_classes.get(&name), subject_classes.get(&name))
        else {
            skipped.insert(name);
            continue;
        };
        if oc != sc {
            skipped.insert(name);
            continue;
        }
        let a = oracle.read_buffer(&name)?;
        let b = exec.read_buffer(&name)?;
        if a.len() != b.len() {
            report.mismatches.push(Mismatch {
                config: label.to_string(),
                buffer: name.clone(),
                index: usize::MAX,
                oracle: a.len() as f32,
                subject: b.len() as f32,
            });
            continue;
        }
        report.buffers_compared += 1;
        report.elements_compared += a.len();
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            if !tol.ok(x, y) {
                report.mismatches.push(Mismatch {
                    config: label.to_string(),
                    buffer: name.clone(),
                    index: i,
                    oracle: x,
                    subject: y,
                });
            }
        }
    }
    let (lo, ls) = (oracle.loss(), exec.loss());
    report.elements_compared += 1;
    if !tol.ok(lo, ls) {
        report.mismatches.push(Mismatch {
            config: label.to_string(),
            buffer: "«loss»".into(),
            index: 0,
            oracle: lo,
            subject: ls,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_accepts_equal_and_rejects_nan() {
        let tol = Tolerance::default();
        assert!(tol.ok(1.0, 1.0));
        assert!(tol.ok(0.0, 1e-6));
        assert!(!tol.ok(f32::NAN, 1.0));
        assert!(!tol.ok(1.0, 2.0));
    }

    #[test]
    fn standard_matrix_has_at_least_six_configs() {
        let configs = standard_configs();
        assert!(configs.len() >= 6, "matrix shrank to {}", configs.len());
        let labels: BTreeSet<_> = configs.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(labels.len(), configs.len(), "duplicate config labels");
    }
}
