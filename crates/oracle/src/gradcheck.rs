//! Finite-difference gradient checking against the reference interpreter.
//!
//! The differential harness ([`crate::diff`]) proves the optimizing
//! compiler agrees with the unoptimized loop nests — but both could share
//! a bug in the *synthesized backward pass itself*. This module closes
//! that hole with the classic oracle: central finite differences on the
//! forward loss,
//!
//! ```text
//! dL/dw[i] ≈ (L(w[i] + h) − L(w[i] − h)) / 2h
//! ```
//!
//! computed entirely through the interpreter, compared against the
//! analytic gradients the backward pass produces. Both sides measure the
//! derivative of the *mean* batch loss (the loss kernels scale gradients
//! by `1/batch`, matching [`crate::Interpreter::loss`]), so no rescaling
//! is needed.
//!
//! Parameters are always checked; input gradients are checked when
//! [`GradCheckConfig::check_inputs`] is set (the net must then be
//! compiled without `skip_data_grad` — [`check_gradients`] handles this).

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_ir::BufferKind;

use crate::diff::DiffError;
use crate::interp::Interpreter;

/// Configuration for a finite-difference run.
#[derive(Debug, Clone)]
pub struct GradCheckConfig {
    /// Central-difference step `h`.
    pub step: f32,
    /// Relative tolerance against `max(|analytic|, |numeric|)`.
    pub rel_tol: f32,
    /// Absolute tolerance for gradients near zero.
    pub abs_tol: f32,
    /// Cap on elements perturbed per gradient buffer (deterministically
    /// strided across the buffer); `0` checks every element.
    pub max_checks_per_buffer: usize,
    /// Also check input (data) gradients, not just parameters.
    pub check_inputs: bool,
    /// Data ensembles excluded from input checking. Categorical inputs
    /// (integer class labels fed as `f32`) belong here: the loss is a
    /// *discontinuous* function of the class index, so finite
    /// differences are meaningless even though the analytic gradient is
    /// correctly zero.
    pub skip_inputs: Vec<String>,
}

impl Default for GradCheckConfig {
    fn default() -> Self {
        GradCheckConfig {
            // f32 central differences: h ~ cbrt(eps) scaled up for
            // headroom against cancellation in deeper nets.
            step: 1e-2,
            rel_tol: 2e-2,
            abs_tol: 1e-4,
            max_checks_per_buffer: 24,
            check_inputs: false,
            skip_inputs: vec!["label".to_string()],
        }
    }
}

/// One gradient element where analytic and numeric derivatives disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct GradMismatch {
    /// The gradient buffer (e.g. `fc1.g_weights`).
    pub buffer: String,
    /// Flat index into the buffer's full storage.
    pub index: usize,
    /// The backward pass's analytic gradient.
    pub analytic: f32,
    /// The central finite-difference estimate.
    pub numeric: f32,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: analytic {} vs numeric {} (diff {:e})",
            self.buffer,
            self.index,
            self.analytic,
            self.numeric,
            (self.analytic - self.numeric).abs()
        )
    }
}

/// Outcome of a gradient check.
#[derive(Debug, Clone, Default)]
pub struct GradCheckReport {
    /// Gradient buffers that were checked.
    pub buffers_checked: Vec<String>,
    /// Total elements perturbed.
    pub elements_checked: usize,
    /// Every out-of-tolerance element.
    pub mismatches: Vec<GradMismatch>,
}

impl GradCheckReport {
    /// Whether every checked element was within tolerance.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl std::fmt::Display for GradCheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gradient check over {} buffers / {} elements, {} mismatches",
            self.buffers_checked.len(),
            self.elements_checked,
            self.mismatches.len()
        )?;
        for m in self.mismatches.iter().take(16) {
            writeln!(f, "  {m}")?;
        }
        if self.mismatches.len() > 16 {
            writeln!(f, "  … and {} more", self.mismatches.len() - 16)?;
        }
        Ok(())
    }
}

/// Validates the synthesized backward pass of `net` against central
/// finite differences of the forward loss, both executed by the
/// reference interpreter at `OptLevel::none()`.
///
/// `inputs` lists `(data ensemble name, batch-major values)` pairs; the
/// net must end in at least one loss layer or every derivative is zero
/// and the check is vacuous.
///
/// # Errors
///
/// Fails when compilation or interpretation errors out; gradient
/// disagreement is reported via [`GradCheckReport::mismatches`], not as
/// an error.
pub fn check_gradients(
    net: &Net,
    inputs: &[(String, Vec<f32>)],
    cfg: &GradCheckConfig,
) -> Result<GradCheckReport, DiffError> {
    let opt = OptLevel {
        skip_data_grad: !cfg.check_inputs,
        ..OptLevel::none()
    };
    let compiled = compile(net, &opt)?;
    let mut interp = Interpreter::new(compiled)?;
    for (ensemble, data) in inputs {
        interp.set_input(ensemble, data)?;
    }

    // Analytic gradients from one forward + backward pass.
    interp.forward()?;
    interp.backward()?;

    // (grad buffer, perturbed value buffer) pairs to check. Parameters
    // come from the net's bindings; input gradients pair `x.grad` with
    // the value buffer named by the input binding.
    let mut targets: Vec<(String, String)> = interp
        .compiled()
        .params
        .iter()
        .map(|p| (p.grad.clone(), p.value.clone()))
        .collect();
    if cfg.check_inputs {
        let grads: Vec<String> = interp
            .compiled()
            .buffers
            .iter()
            .filter(|d| d.kind == BufferKind::Grad && d.alias_of.is_none())
            .map(|d| d.name.clone())
            .collect();
        for binding in &interp.compiled().inputs {
            if cfg.skip_inputs.iter().any(|s| s == &binding.ensemble) {
                continue;
            }
            let grad = latte_core::names::grad(&binding.ensemble);
            if grads.contains(&grad) {
                targets.push((grad, binding.buffer.clone()));
            }
        }
    }

    let mut report = GradCheckReport::default();
    for (grad_buf, value_buf) in targets {
        let analytic = interp.read_buffer(&grad_buf)?;
        let baseline = interp.read_buffer(&value_buf)?;
        if analytic.len() != baseline.len() {
            // Parameter gradients are unbatched while input values are
            // batched per item; for inputs both are batched. A length
            // mismatch here means the pairing above is wrong — surface
            // it loudly rather than checking garbage.
            return Err(DiffError::Runtime(latte_runtime::RuntimeError::Malformed {
                detail: format!(
                    "gradient buffer `{grad_buf}` ({}) does not match value buffer `{value_buf}` ({})",
                    analytic.len(),
                    baseline.len()
                ),
            }));
        }
        let n = baseline.len();
        let checks = if cfg.max_checks_per_buffer == 0 {
            n
        } else {
            n.min(cfg.max_checks_per_buffer)
        };
        // Deterministic stride covering the whole buffer.
        let stride = n.div_ceil(checks).max(1);
        report.buffers_checked.push(grad_buf.clone());
        for i in (0..n).step_by(stride) {
            let mut plus = baseline.clone();
            plus[i] += cfg.step;
            interp.write_buffer(&value_buf, &plus)?;
            interp.forward()?;
            let l_plus = interp.loss();

            let mut minus = baseline.clone();
            minus[i] -= cfg.step;
            interp.write_buffer(&value_buf, &minus)?;
            interp.forward()?;
            let l_minus = interp.loss();

            interp.write_buffer(&value_buf, &baseline)?;
            let numeric = (l_plus - l_minus) / (2.0 * cfg.step);
            let a = analytic[i];
            report.elements_checked += 1;
            let diff = (a - numeric).abs();
            if diff > cfg.abs_tol && diff > cfg.rel_tol * a.abs().max(numeric.abs()) {
                report.mismatches.push(GradMismatch {
                    buffer: grad_buf.clone(),
                    index: i,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    // Leave the interpreter consistent with the unperturbed state.
    interp.forward()?;
    Ok(report)
}
