//! The tree-walking IR reference interpreter: the semantic oracle.
//!
//! [`Interpreter`] executes a [`CompiledNet`]'s synthesized loop nests
//! ([`latte_ir::Stmt`]) *directly*, with none of the runtime's lowering:
//! no static index compilation, no hoisted whole-batch GEMMs, no
//! element-wise fast paths, no copy programs, no threading. Every loop is
//! walked with an explicit variable environment, every affine index is
//! evaluated per element, and every buffer access is bounds-checked. The
//! result is slow and obviously correct — the reference the differential
//! harness ([`crate::diff`]) compares every optimized configuration
//! against.
//!
//! Semantics mirrored from the executor (`latte-runtime`):
//!
//! * buffers allocate per the compiler's plan: aliases share storage,
//!   batched kinds get `batch * per_item` contiguous floats, item-major;
//! * groups run in order; per-item statements run for each batch item;
//!   whole-batch extern kernels run once over full storages;
//! * `backward` first zeroes activation gradients (`Grad`,
//!   `InputGradStage`) and parameter gradients (`ParamGrad`);
//! * matched GEMMs execute through [`latte_tensor::gemm::gemm_naive`],
//!   the textbook triple loop (`C += op(A) · op(B)`);
//! * copy nests gather with zero padding and scatter-accumulate skipping
//!   out-of-bounds source indices, exactly as documented on
//!   [`latte_ir::CopyStmt`];
//! * the mean loss is the sum over loss storages divided by
//!   `n_loss_buffers * batch`.
//!
//! Extern kernels are dispatched through the same
//! [`latte_runtime::registry::KernelRegistry`] the executor uses (the
//! kernels themselves are scalar reference code, not compiler output, so
//! sharing them does not weaken the oracle). Buffers are copied in and
//! out of each invocation, keeping the interpreter free of aliasing
//! `unsafe`.

use std::collections::HashMap;

use latte_core::{CompiledNet, Group};
use latte_ir::{BufRef, BufferKind, CopyStmt, Expr, ExternOp, GatherStmt, GemmStmt, Stmt};
use latte_runtime::registry::{ExternInvocation, KernelRegistry};
use latte_runtime::RuntimeError;
use latte_tensor::gemm::{gemm_naive, Transpose};

/// Placement of one named buffer in the interpreter's storage.
#[derive(Debug, Clone)]
struct Slot {
    storage: usize,
    per_item: usize,
    batched: bool,
    strides: Vec<usize>,
    rank: usize,
}

/// The reference interpreter: a compiled network executed by walking its
/// statement trees.
pub struct Interpreter {
    net: CompiledNet,
    forward: Vec<Group>,
    backward: Vec<Group>,
    registry: KernelRegistry,
    slots: HashMap<String, Slot>,
    /// Primary declaration kind per storage, for phase zeroing.
    storage_kinds: Vec<BufferKind>,
    storages: Vec<Vec<f32>>,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("batch", &self.net.batch)
            .field("forward_groups", &self.forward.len())
            .field("backward_groups", &self.backward.len())
            .finish_non_exhaustive()
    }
}

impl Interpreter {
    /// Builds an interpreter over a compiled network with the built-in
    /// kernel registry.
    ///
    /// # Errors
    ///
    /// Fails on bad alias targets or parameter-initialization mismatches.
    pub fn new(net: CompiledNet) -> Result<Self, RuntimeError> {
        Self::with_registry(net, &KernelRegistry::with_builtins())
    }

    /// Builds an interpreter dispatching externs through `registry`.
    ///
    /// # Errors
    ///
    /// See [`Interpreter::new`].
    pub fn with_registry(
        mut net: CompiledNet,
        registry: &KernelRegistry,
    ) -> Result<Self, RuntimeError> {
        let batch = net.batch;
        let mut slots: HashMap<String, Slot> = HashMap::new();
        let mut storages: Vec<Vec<f32>> = Vec::new();
        let mut storage_kinds: Vec<BufferKind> = Vec::new();
        for decl in &net.buffers {
            let per_item = decl.shape.len();
            let batched = decl.kind.is_batched();
            let storage = match &decl.alias_of {
                None => {
                    let len = if batched { per_item * batch } else { per_item };
                    storages.push(vec![0.0; len]);
                    storage_kinds.push(decl.kind);
                    storages.len() - 1
                }
                Some(target) => {
                    let t = slots.get(target).ok_or_else(|| RuntimeError::BadAlias {
                        name: decl.name.clone(),
                        target: target.clone(),
                    })?;
                    if t.per_item != per_item || t.batched != batched {
                        return Err(RuntimeError::BadAlias {
                            name: decl.name.clone(),
                            target: target.clone(),
                        });
                    }
                    t.storage
                }
            };
            slots.insert(
                decl.name.clone(),
                Slot {
                    storage,
                    per_item,
                    batched,
                    strides: decl.shape.strides().to_vec(),
                    rank: decl.shape.rank(),
                },
            );
        }
        let forward = std::mem::take(&mut net.forward);
        let backward = std::mem::take(&mut net.backward);
        let mut interp = Interpreter {
            net,
            forward,
            backward,
            registry: registry.clone(),
            slots,
            storage_kinds,
            storages,
        };
        interp.reset_params()?;
        Ok(interp)
    }

    /// Re-initializes every parameter buffer from its declared initial
    /// values.
    ///
    /// # Errors
    ///
    /// Propagates buffer-lookup failures.
    pub fn reset_params(&mut self) -> Result<(), RuntimeError> {
        let inits = std::mem::take(&mut self.net.param_inits);
        for (name, init) in &inits {
            self.write_buffer(name, init)?;
        }
        self.net.param_inits = inits;
        Ok(())
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.net.batch
    }

    /// The compiled network (with `forward`/`backward` moved out).
    pub fn compiled(&self) -> &CompiledNet {
        &self.net
    }

    /// Writes a data ensemble's batch: `data` holds `batch * per_item`
    /// values, item-major.
    ///
    /// # Errors
    ///
    /// Fails for unknown ensembles or wrong lengths.
    pub fn set_input(&mut self, ensemble: &str, data: &[f32]) -> Result<(), RuntimeError> {
        let buffer = self
            .net
            .inputs
            .iter()
            .find(|i| i.ensemble == ensemble)
            .map(|i| i.buffer.clone())
            .ok_or_else(|| RuntimeError::UnknownBuffer {
                name: format!("{ensemble} (data ensemble)"),
            })?;
        self.write_buffer(&buffer, data)
    }

    /// Reads a buffer's full storage.
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers.
    pub fn read_buffer(&self, name: &str) -> Result<Vec<f32>, RuntimeError> {
        let slot = self.slot(name)?;
        Ok(self.storages[slot.storage].clone())
    }

    /// Overwrites a buffer's full storage.
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers or wrong lengths.
    pub fn write_buffer(&mut self, name: &str, data: &[f32]) -> Result<(), RuntimeError> {
        let storage = self.slot(name)?.storage;
        let s = &mut self.storages[storage];
        if s.len() != data.len() {
            return Err(RuntimeError::InputShape {
                buffer: name.to_string(),
                detail: format!("expected {} elements, got {}", s.len(), data.len()),
            });
        }
        s.copy_from_slice(data);
        Ok(())
    }

    /// Number of forward groups (one per synthesized ensemble-phase).
    pub fn forward_groups(&self) -> usize {
        self.forward.len()
    }

    /// Runs a single forward group by index — the stepping primitive of
    /// eager trace execution (each group is one recorded op's compute).
    ///
    /// # Errors
    ///
    /// See [`Interpreter::forward`]; also fails when `index` is out of
    /// range.
    pub fn run_forward_group(&mut self, index: usize) -> Result<(), RuntimeError> {
        if index >= self.forward.len() {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "forward group {index} out of range ({} groups)",
                    self.forward.len()
                ),
            });
        }
        let groups = std::mem::take(&mut self.forward);
        let result = self.run_groups(std::slice::from_ref(&groups[index]));
        self.forward = groups;
        result
    }

    /// Runs forward propagation for the current batch.
    ///
    /// # Errors
    ///
    /// Fails on malformed statements (bad ranks, out-of-bounds indices,
    /// unknown buffers or kernels) and propagated kernel errors.
    pub fn forward(&mut self) -> Result<(), RuntimeError> {
        let groups = std::mem::take(&mut self.forward);
        let result = self.run_groups(&groups);
        self.forward = groups;
        result
    }

    /// Runs backward propagation (zeroing activation and parameter
    /// gradients first).
    ///
    /// # Errors
    ///
    /// See [`Interpreter::forward`].
    pub fn backward(&mut self) -> Result<(), RuntimeError> {
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if matches!(kind, BufferKind::Grad | BufferKind::InputGradStage) {
                self.storages[i].fill(0.0);
            }
        }
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if matches!(kind, BufferKind::ParamGrad) {
                self.storages[i].fill(0.0);
            }
        }
        let groups = std::mem::take(&mut self.backward);
        let result = self.run_groups(&groups);
        self.backward = groups;
        result
    }

    /// The mean loss across batch items and loss ensembles after a
    /// forward pass.
    pub fn loss(&self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for name in &self.net.losses {
            if let Ok(values) = self.read_buffer(name) {
                total += values.iter().sum::<f32>();
                count += self.net.batch;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }

    fn slot(&self, name: &str) -> Result<&Slot, RuntimeError> {
        self.slots.get(name).ok_or_else(|| RuntimeError::UnknownBuffer {
            name: name.to_string(),
        })
    }

    fn run_groups(&mut self, groups: &[Group]) -> Result<(), RuntimeError> {
        for g in groups {
            self.run_group(g)?;
        }
        Ok(())
    }

    fn run_group(&mut self, g: &Group) -> Result<(), RuntimeError> {
        let batch = self.net.batch;
        for stmt in &g.stmts {
            let whole_batch = match stmt {
                Stmt::Extern(e) => self.registry.get(&e.op)?.1,
                _ => false,
            };
            if whole_batch {
                if let Stmt::Extern(e) = stmt {
                    self.run_extern(e, None)?;
                }
            } else {
                let mut env = HashMap::new();
                for item in 0..batch {
                    self.exec_stmt(stmt, &mut env, item)?;
                }
            }
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut HashMap<String, i64>,
        item: usize,
    ) -> Result<(), RuntimeError> {
        match stmt {
            Stmt::For(l) => {
                let shadowed = env.get(&l.var).copied();
                for v in 0..l.extent {
                    env.insert(l.var.clone(), v as i64);
                    for s in &l.body {
                        self.exec_stmt(s, env, item)?;
                    }
                }
                match shadowed {
                    Some(old) => env.insert(l.var.clone(), old),
                    None => env.remove(&l.var),
                };
                Ok(())
            }
            Stmt::Assign(a) => {
                let value = self.eval_expr(&a.value, env, item)?;
                let (storage, at) = self.resolve(&a.dest, env, item)?;
                let dest = &mut self.storages[storage][at];
                *dest = a.op.apply(*dest, value);
                Ok(())
            }
            Stmt::Gemm(g) => self.exec_gemm(g, env, item),
            Stmt::Copy(c) => self.exec_copy(c, env, item),
            Stmt::Gather(g) => self.exec_gather(g, item),
            Stmt::Extern(e) => self.run_extern(e, Some(item)),
            Stmt::Barrier => Ok(()),
        }
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        env: &HashMap<String, i64>,
        item: usize,
    ) -> Result<f32, RuntimeError> {
        Ok(match expr {
            Expr::Const(c) => *c,
            Expr::Load(r) => {
                let (storage, at) = self.resolve(r, env, item)?;
                self.storages[storage][at]
            }
            Expr::Unary(op, x) => op.apply(self.eval_expr(x, env, item)?),
            Expr::Binary(op, a, b) => op.apply(
                self.eval_expr(a, env, item)?,
                self.eval_expr(b, env, item)?,
            ),
        })
    }

    /// Flattens a buffer reference to `(storage index, element index)`,
    /// applying row-major strides and the item base for batched buffers.
    fn resolve(
        &self,
        r: &BufRef,
        env: &HashMap<String, i64>,
        item: usize,
    ) -> Result<(usize, usize), RuntimeError> {
        let slot = self.slot(&r.buffer)?;
        if r.indices.len() != slot.rank {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "reference to `{}` has {} indices but buffer has rank {}",
                    r.buffer,
                    r.indices.len(),
                    slot.rank
                ),
            });
        }
        let mut flat = 0i64;
        for (idx, &stride) in r.indices.iter().zip(&slot.strides) {
            flat += idx.eval(env) * stride as i64;
        }
        self.flat_to_at(&r.buffer, slot, flat, item)
    }

    fn flat_to_at(
        &self,
        name: &str,
        slot: &Slot,
        flat: i64,
        item: usize,
    ) -> Result<(usize, usize), RuntimeError> {
        if flat < 0 || flat as usize >= slot.per_item {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "index {flat} into `{name}` outside its {} per-item elements",
                    slot.per_item
                ),
            });
        }
        let base = if slot.batched { item * slot.per_item } else { 0 };
        Ok((slot.storage, base + flat as usize))
    }

    fn exec_gemm(
        &mut self,
        g: &GemmStmt,
        env: &HashMap<String, i64>,
        item: usize,
    ) -> Result<(), RuntimeError> {
        let (a_need, b_need, c_need) = (g.m * g.k, g.k * g.n, g.m * g.n);
        let a = self.read_range(&g.a, g.a_off.eval(env), a_need, item)?;
        let b = self.read_range(&g.b, g.b_off.eval(env), b_need, item)?;
        let c_slot = self.slot(&g.c)?.clone();
        let (c_storage, c_at) = self.flat_to_at(&g.c, &c_slot, g.c_off.eval(env), item)?;
        let c_end = c_at + c_need;
        let storage = &mut self.storages[c_storage];
        if c_end > storage.len() {
            return Err(RuntimeError::Malformed {
                detail: format!("gemm writes past the end of `{}`", g.c),
            });
        }
        let ta = if g.ta { Transpose::Yes } else { Transpose::No };
        let tb = if g.tb { Transpose::Yes } else { Transpose::No };
        gemm_naive(ta, tb, g.m, g.n, g.k, &a, &b, &mut storage[c_at..c_end]);
        Ok(())
    }

    /// Copies `len` elements of `name` starting at per-item offset
    /// `start` (operand fetch for GEMM).
    fn read_range(
        &self,
        name: &str,
        start: i64,
        len: usize,
        item: usize,
    ) -> Result<Vec<f32>, RuntimeError> {
        let slot = self.slot(name)?;
        let (storage, at) = self.flat_to_at(name, slot, start, item)?;
        let end = at + len;
        let s = &self.storages[storage];
        if end > s.len() {
            return Err(RuntimeError::Malformed {
                detail: format!("read of `{name}` at {start}+{len} past the end"),
            });
        }
        Ok(s[at..end].to_vec())
    }

    fn exec_copy(
        &mut self,
        c: &CopyStmt,
        env: &HashMap<String, i64>,
        item: usize,
    ) -> Result<(), RuntimeError> {
        let dest = self.slot(&c.dest)?.clone();
        let src = self.slot(&c.src)?.clone();
        let dest_strides = row_major_strides(&c.dest_shape);
        let src_strides = row_major_strides(&c.src_shape);
        let offsets: Vec<i64> = c.offsets.iter().map(|o| o.eval(env)).collect();
        let dest_base = if dest.batched { item * dest.per_item } else { 0 };
        let src_base = if src.batched { item * src.per_item } else { 0 };

        let mut ctr = vec![0usize; c.extents.len()];
        let total: usize = c.extents.iter().product();
        let mut dim_env: HashMap<String, i64> = HashMap::new();
        for step in 0..total {
            if step > 0 {
                // Advance the mixed-radix counter over the extents.
                let mut d = c.extents.len();
                loop {
                    d -= 1;
                    ctr[d] += 1;
                    if ctr[d] < c.extents[d] {
                        break;
                    }
                    ctr[d] = 0;
                }
            }
            // Global destination index and its flat position.
            let mut d_flat = 0i64;
            for (d, &cv) in ctr.iter().enumerate() {
                let g = offsets[d] + cv as i64;
                dim_env.insert(CopyStmt::dim_var(d), g);
                d_flat += g * dest_strides[d] as i64;
            }
            if d_flat < 0 || d_flat as usize >= dest.per_item {
                return Err(RuntimeError::Malformed {
                    detail: format!(
                        "copy destination index {d_flat} outside `{}`",
                        c.dest
                    ),
                });
            }
            let d_at = dest_base + d_flat as usize;
            // Affine source index, with per-dimension padding bounds.
            let mut in_bounds = true;
            let mut s_flat = 0i64;
            for (s, m) in c.map.iter().enumerate() {
                let si = m.eval(&dim_env);
                if si < 0 || si >= c.src_shape[s] as i64 {
                    in_bounds = false;
                    break;
                }
                s_flat += si * src_strides[s] as i64;
            }
            if c.scatter {
                if in_bounds {
                    let v = self.storages[dest.storage][d_at];
                    self.storages[src.storage][src_base + s_flat as usize] += v;
                }
            } else {
                let v = if in_bounds {
                    self.storages[src.storage][src_base + s_flat as usize]
                } else {
                    0.0
                };
                self.storages[dest.storage][d_at] = v;
            }
        }
        Ok(())
    }

    fn exec_gather(&mut self, g: &GatherStmt, item: usize) -> Result<(), RuntimeError> {
        let dest = self.slot(&g.dest)?.clone();
        let src = self.slot(&g.src)?.clone();
        let dest_base = if dest.batched { item * dest.per_item } else { 0 };
        let src_base = if src.batched { item * src.per_item } else { 0 };
        for (i, &t) in g.table.iter().enumerate() {
            if g.scatter {
                if t >= 0 {
                    let v = self.storages[dest.storage][dest_base + i];
                    self.storages[src.storage][src_base + t as usize] += v;
                }
            } else {
                let v = if t >= 0 {
                    self.storages[src.storage][src_base + t as usize]
                } else {
                    0.0
                };
                self.storages[dest.storage][dest_base + i] = v;
            }
        }
        Ok(())
    }

    /// Runs an extern kernel for one item (`Some`) or the whole batch
    /// (`None`), with copy-in/copy-out buffer views.
    fn run_extern(&mut self, e: &ExternOp, item: Option<usize>) -> Result<(), RuntimeError> {
        let (f, whole) = {
            let (f, whole) = self.registry.get(&e.op)?;
            (f.clone(), whole)
        };
        if whole != item.is_none() {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "extern `{}` invoked with the wrong batching mode",
                    e.op
                ),
            });
        }
        let mut per_item = Vec::with_capacity(e.buffers.len());
        let mut batched = Vec::with_capacity(e.buffers.len());
        let mut ranges: Vec<(usize, usize, usize)> = Vec::with_capacity(e.buffers.len());
        for name in &e.buffers {
            let slot = self.slot(name)?;
            per_item.push(slot.per_item);
            batched.push(slot.batched);
            let (start, len) = match item {
                Some(i) if slot.batched => (i * slot.per_item, slot.per_item),
                _ => (0, self.storages[slot.storage].len()),
            };
            if ranges.iter().any(|&(st, _, _)| st == slot.storage) {
                return Err(RuntimeError::Malformed {
                    detail: format!(
                        "extern `{}` is passed aliasing buffers (duplicate storage via `{name}`)",
                        e.op
                    ),
                });
            }
            ranges.push((slot.storage, start, len));
        }
        let mut temps: Vec<Vec<f32>> = ranges
            .iter()
            .map(|&(st, start, len)| self.storages[st][start..start + len].to_vec())
            .collect();
        {
            let views: Vec<&mut [f32]> = temps.iter_mut().map(|t| t.as_mut_slice()).collect();
            let mut inv = ExternInvocation::new(
                &e.attrs,
                self.net.batch,
                item,
                per_item,
                batched,
                views,
            );
            f(&mut inv)?;
        }
        for (&(st, start, len), temp) in ranges.iter().zip(&temps) {
            self.storages[st][start..start + len].copy_from_slice(temp);
        }
        Ok(())
    }
}

/// Row-major strides of a shape given as plain dimensions.
fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_strides_match_shape() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert!(row_major_strides(&[]).is_empty());
    }
}
