//! Seeded random-network generation for property testing.
//!
//! [`random_net`] derives a small but structurally varied network — plus
//! matched input data — entirely from one `u64` seed, so a failing case
//! reproduces from its seed alone. Three families are sampled:
//!
//! 1. **vector chains** — FC layers of random widths with random
//!    activations, ending in a softmax or L2 loss;
//! 2. **image chains** — convolution → ReLU → max-pool → FC → softmax
//!    loss over a random `(y, x, c)` input;
//! 3. **branch-and-merge** — two parallel FC branches joined by
//!    element-wise addition, exercising multi-input gradient fan-in.
//!
//! Dropout is deliberately never generated: its mask comes from a shared
//! process-wide counter, so two executors of the same net draw different
//! masks and differential comparison would be meaningless.

use latte_core::dsl::{EnsembleId, Net};
use latte_nn::layers::{
    convolution, data, eltwise_add, fully_connected, l2_loss, max_pool, relu, sigmoid,
    softmax_loss, tanh, ConvSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated network with the inputs to drive it.
pub struct RandomNet {
    /// The network, ready to compile.
    pub net: Net,
    /// `(data ensemble name, batch-major values)` pairs for
    /// `set_input`.
    pub inputs: Vec<(String, Vec<f32>)>,
    /// Human-readable summary for failure messages.
    pub description: String,
}

impl std::fmt::Debug for RandomNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RandomNet({})", self.description)
    }
}

/// Generates a random small network and matching inputs from `seed`.
pub fn random_net(seed: u64) -> RandomNet {
    let mut rng = StdRng::seed_from_u64(seed);
    match rng.gen_range(0u32..3) {
        0 => vector_chain(seed, &mut rng),
        1 => image_chain(seed, &mut rng),
        _ => branch_merge(seed, &mut rng),
    }
}

fn random_activation(rng: &mut StdRng, net: &mut Net, name: &str, x: EnsembleId) -> (EnsembleId, &'static str) {
    match rng.gen_range(0u32..3) {
        0 => (relu(net, name, x), "relu"),
        1 => (sigmoid(net, name, x), "sigmoid"),
        _ => (tanh(net, name, x), "tanh"),
    }
}

fn batch_values(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn labels(rng: &mut StdRng, batch: usize, classes: usize) -> Vec<f32> {
    (0..batch).map(|_| rng.gen_range(0..classes) as f32).collect()
}

fn vector_chain(seed: u64, rng: &mut StdRng) -> RandomNet {
    let batch = rng.gen_range(1usize..4);
    let input_size = rng.gen_range(3usize..8);
    let depth = rng.gen_range(1usize..4);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![input_size]);
    let mut cur = x;
    let mut acts = Vec::new();
    for l in 0..depth {
        let width = rng.gen_range(2usize..6);
        let fc = fully_connected(&mut net, &format!("fc{l}"), cur, width, seed ^ l as u64);
        let (a, kind) = random_activation(rng, &mut net, &format!("act{l}"), fc);
        acts.push(format!("{width}:{kind}"));
        cur = a;
    }
    let mut inputs = vec![("data".to_string(), batch_values(rng, batch * input_size))];
    let loss_kind = if rng.gen_range(0u32..4) == 0 {
        // L2 regression head against a random target of the same width.
        let width = rng.gen_range(2usize..5);
        let head = fully_connected(&mut net, "head", cur, width, seed ^ 0xbeef);
        let target = data(&mut net, "target", vec![width]);
        l2_loss(&mut net, "loss", head, target);
        inputs.push(("target".to_string(), batch_values(rng, batch * width)));
        format!("l2[{width}]")
    } else {
        let classes = rng.gen_range(2usize..5);
        let head = fully_connected(&mut net, "head", cur, classes, seed ^ 0xbeef);
        let label = data(&mut net, "label", vec![1]);
        softmax_loss(&mut net, "loss", head, label);
        inputs.push(("label".to_string(), labels(rng, batch, classes)));
        format!("softmax[{classes}]")
    };
    RandomNet {
        net,
        inputs,
        description: format!(
            "seed {seed}: vector chain batch={batch} in={input_size} layers=[{}] loss={loss_kind}",
            acts.join(",")
        ),
    }
}

fn image_chain(seed: u64, rng: &mut StdRng) -> RandomNet {
    let batch = rng.gen_range(1usize..3);
    let side = rng.gen_range(4usize..7);
    let in_c = rng.gen_range(1usize..3);
    let out_c = rng.gen_range(2usize..4);
    let classes = rng.gen_range(2usize..5);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![side, side, in_c]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(out_c, 3), seed ^ 0xc0);
    let act = relu(&mut net, "act", conv);
    let pool = max_pool(&mut net, "pool", act, 2, 2);
    let head = fully_connected(&mut net, "head", pool, classes, seed ^ 0xfc);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), batch_values(rng, batch * side * side * in_c)),
        ("label".to_string(), labels(rng, batch, classes)),
    ];
    RandomNet {
        net,
        inputs,
        description: format!(
            "seed {seed}: image chain batch={batch} in={side}x{side}x{in_c} conv={out_c}ch pool=2 classes={classes}"
        ),
    }
}

fn branch_merge(seed: u64, rng: &mut StdRng) -> RandomNet {
    let batch = rng.gen_range(1usize..4);
    let input_size = rng.gen_range(3usize..7);
    let width = rng.gen_range(2usize..6);
    let classes = rng.gen_range(2usize..5);
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![input_size]);
    let left = fully_connected(&mut net, "left", x, width, seed ^ 0x11);
    let right = fully_connected(&mut net, "right", x, width, seed ^ 0x22);
    let merged = eltwise_add(&mut net, "merge", &[left, right]);
    let (act, kind) = random_activation(rng, &mut net, "act", merged);
    let head = fully_connected(&mut net, "head", act, classes, seed ^ 0x33);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let inputs = vec![
        ("data".to_string(), batch_values(rng, batch * input_size)),
        ("label".to_string(), labels(rng, batch, classes)),
    ];
    RandomNet {
        net,
        inputs,
        description: format!(
            "seed {seed}: branch-merge batch={batch} in={input_size} width={width} act={kind} classes={classes}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0u64, 1, 17, 9999] {
            let a = random_net(seed);
            let b = random_net(seed);
            assert_eq!(a.description, b.description);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.net.len(), b.net.len());
        }
    }

    #[test]
    fn every_family_is_reachable() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            let d = random_net(seed).description;
            for family in ["vector chain", "image chain", "branch-merge"] {
                if d.contains(family) {
                    seen.insert(family);
                }
            }
        }
        assert_eq!(seen.len(), 3, "only saw {seen:?}");
    }
}
