//! Eager trace execution: step a recorded trace through the reference
//! interpreter, one op-group at a time, with no optimization passes.
//!
//! This is the "define-by-run" counterpart of the JIT path. A
//! [`Trace`](latte_core::Trace) recorded by a
//! [`TraceSession`](latte_core::TraceSession) can either be handed to a
//! [`TraceCache`](latte_runtime::TraceCache) — which compiles it through
//! the full pass pipeline and executes it on the optimized runtime — or
//! to an [`EagerSession`] here, which synthesizes it at
//! [`OptLevel::none`] and *interprets* the groups directly, advancing
//! one group per [`EagerSession::step`] the way an eager framework runs
//! one kernel per op.
//!
//! Because the interpreter's naive GEMM and the executor's narrow-GEMM
//! fast path accumulate in the same order, the two paths agree **bit for
//! bit** on every primary activation buffer and on the loss — the
//! differential the `trace_eager` integration test asserts across all
//! nine [`standard_configs`](crate::standard_configs) opt levels.

use latte_core::{compile, OptLevel, Trace, TraceKey};
use latte_runtime::RuntimeError;

use crate::interp::Interpreter;

/// An eager execution of one recorded trace: the trace's net synthesized
/// without optimization and stepped by the reference interpreter.
#[derive(Debug)]
pub struct EagerSession {
    key: TraceKey,
    interp: Interpreter,
    next_group: usize,
}

impl EagerSession {
    /// Synthesizes the trace's recorded net at [`OptLevel::none`] and
    /// prepares to step it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Compile`] when the recorded net fails synthesis;
    /// interpreter construction errors pass through.
    pub fn new(trace: &Trace) -> Result<Self, RuntimeError> {
        let compiled = compile(trace.net(), &OptLevel::none()).map_err(|e| {
            RuntimeError::Compile {
                detail: e.to_string(),
            }
        })?;
        Ok(EagerSession {
            key: trace.key(),
            interp: Interpreter::new(compiled)?,
            next_group: 0,
        })
    }

    /// The trace key this session executes (the same key the JIT path
    /// caches under).
    pub fn key(&self) -> TraceKey {
        self.key
    }

    /// Feeds a data ensemble for the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates interpreter input errors.
    pub fn set_input(&mut self, ensemble: &str, data: &[f32]) -> Result<(), RuntimeError> {
        self.interp.set_input(ensemble, data)
    }

    /// Advances eager execution by one forward op-group. Returns `false`
    /// when every group has run (the forward pass is complete).
    ///
    /// # Errors
    ///
    /// See [`Interpreter::forward`].
    pub fn step(&mut self) -> Result<bool, RuntimeError> {
        if self.next_group >= self.interp.forward_groups() {
            return Ok(false);
        }
        self.interp.run_forward_group(self.next_group)?;
        self.next_group += 1;
        Ok(self.next_group < self.interp.forward_groups())
    }

    /// Steps the remaining forward groups to completion.
    ///
    /// # Errors
    ///
    /// See [`EagerSession::step`].
    pub fn forward(&mut self) -> Result<(), RuntimeError> {
        while self.step()? {}
        self.next_group = self.interp.forward_groups();
        Ok(())
    }

    /// Runs the backward pass, then rewinds the stepper so another
    /// forward can begin.
    ///
    /// # Errors
    ///
    /// See [`Interpreter::backward`].
    pub fn backward(&mut self) -> Result<(), RuntimeError> {
        self.interp.backward()?;
        self.next_group = 0;
        Ok(())
    }

    /// Reads a named buffer (whole batch for batched buffers).
    ///
    /// # Errors
    ///
    /// Propagates interpreter lookup errors.
    pub fn read_buffer(&self, name: &str) -> Result<Vec<f32>, RuntimeError> {
        self.interp.read_buffer(name)
    }

    /// The mean loss after a completed forward pass.
    pub fn loss(&self) -> f32 {
        self.interp.loss()
    }

    /// The underlying interpreter (for buffer-table introspection in
    /// differential harnesses).
    pub fn interp(&self) -> &Interpreter {
        &self.interp
    }
}
