//! The compiler-correctness harness: every optimization the Latte
//! compiler performs is checked against a slow, obviously-correct oracle.
//!
//! The paper's claim (Truong et al., PLDI 2016, Section 7) is that the
//! aggressive transformations — AoS→SoA rewriting, GEMM pattern-matching,
//! tiling, cross-layer fusion, parallelization — preserve the per-neuron
//! semantics the user wrote. This crate *proves* it for this
//! reproduction, playing the role Caffe/Mocha reference outputs play in
//! the paper's evaluation:
//!
//! * [`interp`] — a tree-walking reference interpreter executing the
//!   synthesized loop nests directly over named buffers, with none of the
//!   executor's lowering, fast paths, hoisting, or threading;
//! * [`diff`] — a differential harness compiling one network under every
//!   meaningful [`latte_core::OptLevel`] combination and comparing every
//!   activation, activation-gradient, and parameter-gradient buffer (plus
//!   the loss) against the interpreter within a tolerance budget,
//!   producing structured [`diff::Mismatch`] reports on divergence;
//! * [`eager`] — eager trace execution: recorded traces stepped
//!   group-by-group through the interpreter with no optimization, the
//!   define-by-run half of the eager-vs-JIT differential;
//! * [`gradcheck`] — a central finite-difference gradient checker
//!   validating the *synthesized backward pass itself* against numeric
//!   derivatives of the forward pass;
//! * [`randnet`] — a seeded random-network generator feeding the
//!   differential harness as property tests.

pub mod diff;
pub mod eager;
pub mod gradcheck;
pub mod interp;
pub mod randnet;

pub use diff::{
    diff_against_oracle, diff_compiled, standard_configs, DiffError, DiffReport, Mismatch,
    Tolerance,
};
pub use eager::EagerSession;
pub use gradcheck::{check_gradients, GradCheckConfig, GradCheckReport, GradMismatch};
pub use interp::Interpreter;
pub use randnet::{random_net, RandomNet};
