//! The Latte standard-library layers.
//!
//! Each constructor mirrors the paper's Section 4: it instantiates an
//! ensemble of neurons with SoA field storage and connects it to its
//! input with a mapping closure. Spatial ensembles use `(y, x, c)`
//! dimension order (row, column, feature) with the feature dimension
//! innermost.

use latte_core::dsl::stdlib::{
    max_neuron, mean_neuron, relu_neuron, sigmoid_neuron, tanh_neuron, weighted_neuron,
};
use latte_core::dsl::{
    Ensemble, EnsembleId, Mapping, Net, NormalizationSpec, SourceRange, SourceRegion,
};
use latte_tensor::{init, Tensor};

/// Parameters of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Number of filters (output channels).
    pub out_channels: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl ConvSpec {
    /// A `kernel x kernel` convolution with stride 1 and "same" padding.
    pub fn same(out_channels: usize, kernel: usize) -> Self {
        ConvSpec {
            out_channels,
            kernel,
            stride: 1,
            pad: kernel / 2,
        }
    }

    fn out_extent(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.kernel) / self.stride + 1
    }
}

/// Adds a data (input) ensemble.
pub fn data(net: &mut Net, name: &str, dims: Vec<usize>) -> EnsembleId {
    net.add(Ensemble::data(name, dims))
}

/// Adds a fully-connected layer of `n_outputs` [`weighted_neuron`]s over
/// the entire input ensemble (the paper's Figure 4).
pub fn fully_connected(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    n_outputs: usize,
    seed: u64,
) -> EnsembleId {
    let src_dims = net.ensemble(input).dims().to_vec();
    let n_inputs: usize = src_dims.iter().product();
    let fc = net.add(
        Ensemble::new(name, vec![n_outputs], weighted_neuron())
            .with_field(
                "weights",
                vec![false],
                init::xavier(vec![n_outputs, n_inputs], n_inputs, seed),
            )
            .with_field("bias", vec![false], Tensor::zeros(vec![n_outputs, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    net.connect(input, fc, Mapping::all_to_all(src_dims));
    fc
}

/// Adds a 2-D convolution layer over a `(y, x, c)` input ensemble.
///
/// Weights are shared across the spatial dimensions and unique per output
/// channel; the connection is the sparse window mapping of the paper's
/// Figure 5.
///
/// # Panics
///
/// Panics when the input is not rank 3 or the window does not fit.
pub fn convolution(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    spec: ConvSpec,
    seed: u64,
) -> EnsembleId {
    let src_dims = net.ensemble(input).dims().to_vec();
    assert_eq!(src_dims.len(), 3, "convolution input must be (y, x, c)");
    let (h, w, in_c) = (src_dims[0], src_dims[1], src_dims[2]);
    let (oh, ow) = (spec.out_extent(h), spec.out_extent(w));
    let patch = spec.kernel * spec.kernel * in_c;
    let conv = net.add(
        Ensemble::new(name, vec![oh, ow, spec.out_channels], weighted_neuron())
            .with_field(
                "weights",
                vec![true, true, false],
                init::xavier(vec![spec.out_channels, patch], patch, seed),
            )
            .with_field(
                "bias",
                vec![true, true, false],
                Tensor::zeros(vec![spec.out_channels, 1]),
            )
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    let (k, s, p, cin) = (
        spec.kernel as isize,
        spec.stride as isize,
        spec.pad as isize,
        in_c as isize,
    );
    net.connect(
        input,
        conv,
        Mapping::new(move |idx| {
            let in_y = idx[0] as isize * s - p;
            let in_x = idx[1] as isize * s - p;
            SourceRegion::new(vec![
                SourceRange::new(in_y, in_y + k),
                SourceRange::new(in_x, in_x + k),
                SourceRange::new(0, cin),
            ])
        }),
    );
    conv
}

/// Adds a *grouped* 2-D convolution (AlexNet's original two-GPU split):
/// output channels are divided into `groups`, each seeing only its slice
/// of the input channels.
///
/// The group-dependent channel window is not affine in the output-channel
/// index, so shared-variable analysis classifies the mapping *irregular*
/// and the compiler stages inputs through an explicit gather table —
/// demonstrating that arbitrary connection structures remain executable
/// (at a memory cost proportional to the adjacency, so prefer
/// [`convolution`] when `groups == 1`).
///
/// # Panics
///
/// Panics unless `groups` divides both the input and output channel
/// counts and the input is rank 3.
pub fn grouped_convolution(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    spec: ConvSpec,
    groups: usize,
    seed: u64,
) -> EnsembleId {
    let src_dims = net.ensemble(input).dims().to_vec();
    assert_eq!(src_dims.len(), 3, "convolution input must be (y, x, c)");
    let (h, w, in_c) = (src_dims[0], src_dims[1], src_dims[2]);
    assert!(
        groups >= 1 && in_c.is_multiple_of(groups) && spec.out_channels.is_multiple_of(groups),
        "groups must divide both channel counts"
    );
    let (oh, ow) = (spec.out_extent(h), spec.out_extent(w));
    let in_pg = in_c / groups;
    let out_pg = spec.out_channels / groups;
    let patch = spec.kernel * spec.kernel * in_pg;
    let conv = net.add(
        Ensemble::new(name, vec![oh, ow, spec.out_channels], weighted_neuron())
            .with_field(
                "weights",
                vec![true, true, false],
                init::xavier(vec![spec.out_channels, patch], patch, seed),
            )
            .with_field(
                "bias",
                vec![true, true, false],
                Tensor::zeros(vec![spec.out_channels, 1]),
            )
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    let (k, s, p) = (
        spec.kernel as isize,
        spec.stride as isize,
        spec.pad as isize,
    );
    net.connect(
        input,
        conv,
        Mapping::new(move |idx| {
            let in_y = idx[0] as isize * s - p;
            let in_x = idx[1] as isize * s - p;
            let g = (idx[2] / out_pg) as isize;
            SourceRegion::new(vec![
                SourceRange::new(in_y, in_y + k),
                SourceRange::new(in_x, in_x + k),
                SourceRange::new(g * in_pg as isize, (g + 1) * in_pg as isize),
            ])
        }),
    );
    conv
}

fn pool_ensemble(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    kernel: usize,
    stride: usize,
    neuron: latte_core::dsl::NeuronType,
) -> EnsembleId {
    let src_dims = net.ensemble(input).dims().to_vec();
    assert_eq!(src_dims.len(), 3, "pooling input must be (y, x, c)");
    let (h, w, c) = (src_dims[0], src_dims[1], src_dims[2]);
    let (oh, ow) = ((h - kernel) / stride + 1, (w - kernel) / stride + 1);
    let pool = net.add(Ensemble::new(name, vec![oh, ow, c], neuron));
    let (k, s) = (kernel as isize, stride as isize);
    net.connect(
        input,
        pool,
        Mapping::new(move |idx| {
            let (y, x, ch) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
            SourceRegion::new(vec![
                SourceRange::new(y * s, y * s + k),
                SourceRange::new(x * s, x * s + k),
                SourceRange::single(ch),
            ])
        }),
    );
    pool
}

/// Adds a max-pooling layer (`kernel x kernel`, given stride).
///
/// # Panics
///
/// Panics when the input is not rank 3 or the window does not fit.
pub fn max_pool(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    kernel: usize,
    stride: usize,
) -> EnsembleId {
    pool_ensemble(net, name, input, kernel, stride, max_neuron())
}

/// Adds a mean-pooling layer.
///
/// # Panics
///
/// Panics when the input is not rank 3 or the window does not fit.
pub fn mean_pool(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    kernel: usize,
    stride: usize,
) -> EnsembleId {
    pool_ensemble(net, name, input, kernel, stride, mean_neuron())
}

fn activation(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    neuron: latte_core::dsl::NeuronType,
) -> EnsembleId {
    let dims = net.ensemble(input).dims().to_vec();
    let act = net.add(Ensemble::activation(name, dims, neuron));
    net.connect(input, act, Mapping::one_to_one());
    act
}

/// Adds a ReLU activation ensemble (in-place eligible).
pub fn relu(net: &mut Net, name: &str, input: EnsembleId) -> EnsembleId {
    activation(net, name, input, relu_neuron())
}

/// Adds a sigmoid activation ensemble.
pub fn sigmoid(net: &mut Net, name: &str, input: EnsembleId) -> EnsembleId {
    activation(net, name, input, sigmoid_neuron())
}

/// Adds a tanh activation ensemble.
pub fn tanh(net: &mut Net, name: &str, input: EnsembleId) -> EnsembleId {
    activation(net, name, input, tanh_neuron())
}

/// Adds a softmax + cross-entropy loss over `pred`, with integer class
/// labels in the single-element `label` data ensemble.
pub fn softmax_loss(net: &mut Net, name: &str, pred: EnsembleId, label: EnsembleId) -> EnsembleId {
    let classes: usize = net.ensemble(pred).dims().iter().product();
    let pred_dims = net.ensemble(pred).dims().to_vec();
    let loss = net.add(Ensemble::normalization(
        name,
        vec![1],
        NormalizationSpec::new("softmax_loss")
            .attr("classes", classes as f64)
            .state("prob", vec![classes])
            .loss(),
    ));
    net.connect(pred, loss, Mapping::all_to_all(pred_dims));
    let label_dims = net.ensemble(label).dims().to_vec();
    net.connect(label, loss, Mapping::all_to_all(label_dims));
    loss
}

/// Adds a plain softmax normalization ensemble.
pub fn softmax(net: &mut Net, name: &str, input: EnsembleId) -> EnsembleId {
    let dims = net.ensemble(input).dims().to_vec();
    let out = net.add(Ensemble::normalization(
        name,
        dims.clone(),
        NormalizationSpec::new("softmax"),
    ));
    net.connect(input, out, Mapping::all_to_all(dims));
    out
}

/// Adds a Euclidean (L2) regression loss `½‖pred - target‖²`.
pub fn l2_loss(net: &mut Net, name: &str, pred: EnsembleId, target: EnsembleId) -> EnsembleId {
    let pred_dims = net.ensemble(pred).dims().to_vec();
    let target_dims = net.ensemble(target).dims().to_vec();
    let loss = net.add(Ensemble::normalization(
        name,
        vec![1],
        NormalizationSpec::new("l2_loss").loss(),
    ));
    net.connect(pred, loss, Mapping::all_to_all(pred_dims));
    net.connect(target, loss, Mapping::all_to_all(target_dims));
    loss
}

/// Adds a local response normalization ensemble (AlexNet §3.3) over a
/// `(y, x, c)` input.
///
/// # Panics
///
/// Panics when the input is not rank 3.
pub fn lrn(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    size: usize,
    alpha: f64,
    beta: f64,
) -> EnsembleId {
    let dims = net.ensemble(input).dims().to_vec();
    assert_eq!(dims.len(), 3, "LRN input must be (y, x, c)");
    let channels = dims[2];
    let out = net.add(Ensemble::normalization(
        name,
        dims.clone(),
        NormalizationSpec::new("lrn")
            .attr("channels", channels as f64)
            .attr("size", size as f64)
            .attr("alpha", alpha)
            .attr("beta", beta)
            .attr("k", 1.0)
            .state("scale", dims.clone()),
    ));
    net.connect(input, out, Mapping::all_to_all(dims));
    out
}

/// Adds a dropout ensemble: inverted dropout with a fresh per-pass
/// Bernoulli mask (recorded in a state buffer and replayed by backward).
pub fn dropout(net: &mut Net, name: &str, input: EnsembleId, ratio: f64, seed: u64) -> EnsembleId {
    let dims = net.ensemble(input).dims().to_vec();
    let out = net.add(Ensemble::normalization(
        name,
        dims.clone(),
        NormalizationSpec::new("dropout")
            .attr("ratio", ratio)
            .attr("seed", seed as f64)
            .state("mask", dims.clone()),
    ));
    net.connect(input, out, Mapping::all_to_all(dims));
    out
}

/// Adds a batch-normalization ensemble (per-channel whole-batch
/// statistics; feature dimension innermost).
pub fn batch_norm(net: &mut Net, name: &str, input: EnsembleId, eps: f64) -> EnsembleId {
    let dims = net.ensemble(input).dims().to_vec();
    let channels = *dims.last().expect("non-empty dims");
    let out = net.add(Ensemble::normalization(
        name,
        dims.clone(),
        NormalizationSpec::new("batch_norm")
            .attr("channels", channels as f64)
            .attr("eps", eps)
            .shared_state("mean", vec![channels])
            .shared_state("var", vec![channels]),
    ));
    net.connect(input, out, Mapping::all_to_all(dims));
    out
}

/// Adds a learnable per-channel affine layer `y = γ·x + β` (the usual
/// companion of [`batch_norm`], which normalizes without affine
/// parameters). Demonstrates learnable fields on a custom neuron type:
/// `γ`/`β` are scalar fields shared across the spatial dimensions.
///
/// # Panics
///
/// Panics when the input is not rank 3.
pub fn scale_shift(net: &mut Net, name: &str, input: EnsembleId, seed: u64) -> EnsembleId {
    use latte_core::dsl::{FieldLen, NeuronType};
    let _ = seed;
    let dims = net.ensemble(input).dims().to_vec();
    assert_eq!(dims.len(), 3, "scale_shift input must be (y, x, c)");
    let c = dims[2];
    let neuron = NeuronType::builder("ScaleShiftNeuron")
        .field_with_grad("gamma", FieldLen::Scalar)
        .field_with_grad("beta", FieldLen::Scalar)
        .forward(|b| {
            let x = b.input(0, 0);
            b.assign(b.value(), x.mul(b.field("gamma", 0)).add(b.field("beta", 0)));
        })
        .backward(|b| {
            b.accumulate(b.grad_input(0, 0), b.grad_expr().mul(b.field("gamma", 0)));
            b.accumulate(b.grad_field("gamma", 0), b.grad_expr().mul(b.input(0, 0)));
            b.accumulate(b.grad_field("beta", 0), b.grad_expr());
        })
        .build();
    let out = net.add(
        Ensemble::new(name, dims, neuron)
            .with_field("gamma", vec![true, true, false], Tensor::full(vec![c, 1], 1.0))
            .with_field("beta", vec![true, true, false], Tensor::zeros(vec![c, 1]))
            .with_param("gamma", 1.0)
            .with_param("beta", 1.0),
    );
    net.connect(input, out, Mapping::one_to_one());
    out
}

/// Concatenates ensembles along the innermost (channel) dimension — the
/// merge step of Inception-style multi-branch blocks.
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes disagree on any dimension but
/// the last.
pub fn concat(net: &mut Net, name: &str, inputs: &[EnsembleId]) -> EnsembleId {
    assert!(!inputs.is_empty(), "concat needs inputs");
    let first = net.ensemble(inputs[0]).dims().to_vec();
    let rank = first.len();
    let mut last = 0;
    for &i in inputs {
        let d = net.ensemble(i).dims();
        assert_eq!(d.len(), rank, "rank mismatch in concat");
        assert_eq!(&d[..rank - 1], &first[..rank - 1], "shape mismatch in concat");
        last += d[rank - 1];
    }
    let mut dims = first;
    dims[rank - 1] = last;
    let out = net.add(Ensemble::concat(name, dims));
    for &i in inputs {
        net.connect(i, out, Mapping::one_to_one());
    }
    out
}

/// Adds an element-wise sum of several same-shaped ensembles.
///
/// # Panics
///
/// Panics when `inputs` is empty or shapes differ.
pub fn eltwise_add(net: &mut Net, name: &str, inputs: &[EnsembleId]) -> EnsembleId {
    assert!(!inputs.is_empty(), "eltwise_add needs inputs");
    let dims = net.ensemble(inputs[0]).dims().to_vec();
    for &i in inputs {
        assert_eq!(net.ensemble(i).dims(), dims.as_slice(), "shape mismatch");
    }
    let out = net.add(Ensemble::new(
        name,
        dims,
        latte_core::dsl::stdlib::add_neuron(inputs.len()),
    ));
    for &i in inputs {
        net.connect(i, out, Mapping::one_to_one());
    }
    out
}

/// Adds an element-wise product of two same-shaped ensembles.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn eltwise_mul(net: &mut Net, name: &str, a: EnsembleId, b: EnsembleId) -> EnsembleId {
    let dims = net.ensemble(a).dims().to_vec();
    assert_eq!(net.ensemble(b).dims(), dims.as_slice(), "shape mismatch");
    let out = net.add(Ensemble::new(
        name,
        dims,
        latte_core::dsl::stdlib::mul_neuron(),
    ));
    net.connect(a, out, Mapping::one_to_one());
    net.connect(b, out, Mapping::one_to_one());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};

    #[test]
    fn conv_output_shape() {
        let mut net = Net::new(1);
        let d = data(&mut net, "data", vec![8, 8, 3]);
        let c = convolution(&mut net, "conv1", d, ConvSpec::same(16, 3), 0);
        assert_eq!(net.ensemble(c).dims(), &[8, 8, 16]);
        let c2 = convolution(
            &mut net,
            "conv2",
            c,
            ConvSpec {
                out_channels: 4,
                kernel: 3,
                stride: 2,
                pad: 0,
            },
            1,
        );
        assert_eq!(net.ensemble(c2).dims(), &[3, 3, 4]);
    }

    #[test]
    fn pool_output_shape() {
        let mut net = Net::new(1);
        let d = data(&mut net, "data", vec![8, 8, 3]);
        let p = max_pool(&mut net, "pool1", d, 2, 2);
        assert_eq!(net.ensemble(p).dims(), &[4, 4, 3]);
        let p2 = mean_pool(&mut net, "pool2", p, 3, 1);
        assert_eq!(net.ensemble(p2).dims(), &[2, 2, 3]);
    }

    #[test]
    fn full_stack_compiles() {
        let mut net = Net::new(2);
        let d = data(&mut net, "data", vec![8, 8, 3]);
        let label = data(&mut net, "label", vec![1]);
        let c = convolution(&mut net, "conv1", d, ConvSpec::same(8, 3), 0);
        let r = relu(&mut net, "relu1", c);
        let n = lrn(&mut net, "lrn1", r, 5, 1e-4, 0.75);
        let p = max_pool(&mut net, "pool1", n, 2, 2);
        let f = fully_connected(&mut net, "fc1", p, 10, 1);
        softmax_loss(&mut net, "loss", f, label);
        let compiled = compile(&net, &OptLevel::full()).unwrap();
        assert!(compiled.stats.gemms_matched > 0);
    }

    #[test]
    fn eltwise_layers_compile() {
        let mut net = Net::new(1);
        let a = data(&mut net, "a", vec![6]);
        let b = data(&mut net, "b", vec![6]);
        let s = eltwise_add(&mut net, "sum", &[a, b]);
        let m = eltwise_mul(&mut net, "prod", s, b);
        assert_eq!(net.ensemble(m).dims(), &[6]);
        compile(&net, &OptLevel::full()).unwrap();
    }

    #[test]
    #[should_panic(expected = "must be (y, x, c)")]
    fn conv_rejects_flat_input() {
        let mut net = Net::new(1);
        let d = data(&mut net, "data", vec![64]);
        convolution(&mut net, "conv1", d, ConvSpec::same(8, 3), 0);
    }
}
