//! Recurrent blocks: LSTM and GRU units built from the same ensembles and
//! connections as everything else (the paper's Figure 6), realized by
//! time-unrolling with [`Net::unroll`].

use latte_core::dsl::{EnsembleId, Mapping, Net};

use crate::layers::{eltwise_add, eltwise_mul, fully_connected, sigmoid, tanh};

/// The ensembles of one LSTM unit.
#[derive(Debug, Clone, Copy)]
pub struct LstmUnit {
    /// The memory-cell state `C`.
    pub cell: EnsembleId,
    /// The unit output `h`.
    pub output: EnsembleId,
}

/// Builds an LSTM unit over `input`, following the paper's Figure 6:
/// the input and the previous output are each split into four gate
/// signals through fully-connected layers; the gates modulate the
/// memory cell via element-wise ensembles; `h` feeds back recurrently.
///
/// The returned network still contains recurrent edges — call
/// [`Net::unroll`] before compiling.
pub fn lstm(
    net: &mut Net,
    name: &str,
    input: EnsembleId,
    n_outputs: usize,
    seed: u64,
) -> LstmUnit {
    let n = |suffix: &str| format!("{name}_{suffix}");
    // Split the input into the four gate signals.
    let ix = fully_connected(net, &n("ix"), input, n_outputs, seed);
    let cx = fully_connected(net, &n("cx"), input, n_outputs, seed + 1);
    let fx = fully_connected(net, &n("fx"), input, n_outputs, seed + 2);
    let ox = fully_connected(net, &n("ox"), input, n_outputs, seed + 3);

    // Gates: i = σ(ix + ih), f = σ(fx + fh), candidate C~ = tanh(cx + ch),
    // o = σ(ox + oh); the *h parts come from the recurrent connections
    // installed below.
    let ih = fully_connected_placeholder(net, &n("ih"), n_outputs, seed + 4);
    let ch = fully_connected_placeholder(net, &n("ch"), n_outputs, seed + 5);
    let fh = fully_connected_placeholder(net, &n("fh"), n_outputs, seed + 6);
    let oh = fully_connected_placeholder(net, &n("oh"), n_outputs, seed + 7);

    let i_sum = eltwise_add(net, &n("i_sum"), &[ix, ih]);
    let i = sigmoid(net, &n("i"), i_sum);
    let f_sum = eltwise_add(net, &n("f_sum"), &[fx, fh]);
    let f = sigmoid(net, &n("f"), f_sum);
    let c_sum = eltwise_add(net, &n("c_sum"), &[cx, ch]);
    let c_cand = tanh(net, &n("c_cand"), c_sum);
    let o_sum = eltwise_add(net, &n("o_sum"), &[ox, oh]);
    let o = sigmoid(net, &n("o"), o_sum);

    // C = i ⊙ C~ + f ⊙ C_prev.
    let ic = eltwise_mul(net, &n("ic"), i, c_cand);
    let fc_prev = recurrent_identity(net, &n("c_prev"), n_outputs);
    let fcp = eltwise_mul(net, &n("fcp"), f, fc_prev);
    let cell = eltwise_add(net, &n("cell"), &[ic, fcp]);
    net.connect_recurrent(cell, fc_prev, Mapping::one_to_one());

    // h = o ⊙ tanh(C). `tanh` here must NOT run in place: `cell` feeds
    // both the recurrence and this tanh, so the compiler will materialize
    // it (two consumers block in-place execution automatically).
    let tc = tanh(net, &n("tanh_c"), cell);
    let output = eltwise_mul(net, &n("h"), o, tc);

    // Feed h back into the four *h gates recurrently.
    for &gate in &[ih, ch, fh, oh] {
        net.connect_recurrent(output, gate, Mapping::all_to_all(vec![n_outputs]));
    }
    LstmUnit { cell, output }
}

/// The ensembles of one GRU unit.
#[derive(Debug, Clone, Copy)]
pub struct GruUnit {
    /// The unit output `h`.
    pub output: EnsembleId,
}

/// Builds a GRU unit: update gate `z = σ(Wz x + Uz h)`, reset gate
/// `r = σ(Wr x + Ur h)`, candidate `h~ = tanh(W x + U (r ⊙ h))`, output
/// `h' = (1-z) ⊙ h + z ⊙ h~`, using recurrent connections for `h`.
pub fn gru(net: &mut Net, name: &str, input: EnsembleId, n_outputs: usize, seed: u64) -> GruUnit {
    let n = |suffix: &str| format!("{name}_{suffix}");
    let zx = fully_connected(net, &n("zx"), input, n_outputs, seed);
    let rx = fully_connected(net, &n("rx"), input, n_outputs, seed + 1);
    let hx = fully_connected(net, &n("hx"), input, n_outputs, seed + 2);

    let zh = fully_connected_placeholder(net, &n("zh"), n_outputs, seed + 3);
    let rh = fully_connected_placeholder(net, &n("rh"), n_outputs, seed + 4);

    let z_sum = eltwise_add(net, &n("z_sum"), &[zx, zh]);
    let z = sigmoid(net, &n("z"), z_sum);
    let r_sum = eltwise_add(net, &n("r_sum"), &[rx, rh]);
    let r = sigmoid(net, &n("r"), r_sum);

    let h_prev = recurrent_identity(net, &n("h_prev"), n_outputs);
    let rh_prod = eltwise_mul(net, &n("rh_prod"), r, h_prev);
    let uh = fully_connected(net, &n("uh"), rh_prod, n_outputs, seed + 5);
    let h_sum = eltwise_add(net, &n("h_sum"), &[hx, uh]);
    let h_cand = tanh(net, &n("h_cand"), h_sum);

    // h' = h + z ⊙ (h~ - h)  ==  (1-z)h + z h~, built from add/mul
    // ensembles: delta = h~ - h via neg... keep it simple with two muls:
    let zh_cand = eltwise_mul(net, &n("zh_cand"), z, h_cand);
    let one_minus_z = one_minus(net, &n("one_minus_z"), z);
    let zh_prev = eltwise_mul(net, &n("zh_prev"), one_minus_z, h_prev);
    let output = eltwise_add(net, &n("h"), &[zh_cand, zh_prev]);

    net.connect_recurrent(output, h_prev, Mapping::one_to_one());
    for &gate in &[zh, rh] {
        net.connect_recurrent(output, gate, Mapping::all_to_all(vec![n_outputs]));
    }
    GruUnit { output }
}

/// A fully-connected ensemble whose input arrives later through a
/// recurrent connection.
fn fully_connected_placeholder(
    net: &mut Net,
    name: &str,
    n_outputs: usize,
    seed: u64,
) -> EnsembleId {
    use latte_core::dsl::stdlib::weighted_neuron;
    use latte_core::dsl::Ensemble;
    use latte_tensor::{init, Tensor};
    // Weight vector sized by connection 0 (the recurrent h input).
    net.add(
        Ensemble::new(name, vec![n_outputs], weighted_neuron())
            .with_field(
                "weights",
                vec![false],
                init::xavier(vec![n_outputs, n_outputs], n_outputs, seed),
            )
            .with_field("bias", vec![false], Tensor::zeros(vec![n_outputs, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    )
}

/// An identity ensemble holding the previous time step's value of its
/// recurrent input.
fn recurrent_identity(net: &mut Net, name: &str, n: usize) -> EnsembleId {
    use latte_core::dsl::stdlib::identity_neuron;
    use latte_core::dsl::Ensemble;
    net.add(Ensemble::new(name, vec![n], identity_neuron()))
}

/// `1 - x` element-wise, built as a custom neuron on the spot — the DSL
/// escape hatch for one-off operations.
fn one_minus(net: &mut Net, name: &str, input: EnsembleId) -> EnsembleId {
    use latte_core::dsl::{Ensemble, NeuronType};
    let dims = net.ensemble(input).dims().to_vec();
    let neuron = NeuronType::builder("OneMinus")
        .forward(|b| {
            let x = b.input(0, 0);
            b.assign(b.value(), b.lit(1.0).sub(x));
        })
        .backward(|b| {
            let g = b.grad_expr();
            b.accumulate(b.grad_input(0, 0), b.lit(0.0).sub(g));
        })
        .build();
    let out = net.add(Ensemble::new(name, dims, neuron));
    net.connect(input, out, Mapping::one_to_one());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::data;
    use latte_core::{compile, OptLevel};

    #[test]
    fn lstm_unrolls_and_compiles() {
        let mut net = Net::new(2);
        let d = data(&mut net, "x", vec![6]);
        let unit = lstm(&mut net, "lstm", d, 4, 0);
        assert_eq!(net.ensemble(unit.output).dims(), &[4]);
        // Recurrent edges prevent direct compilation...
        assert!(compile(&net, &OptLevel::full()).is_err());
        // ...but the unrolled network compiles.
        let unrolled = net.unroll(3);
        let compiled = compile(&unrolled, &OptLevel::full()).unwrap();
        // Time-step clones share parameters with step 0.
        let w1 = compiled.buffer("lstm_ix@t1.weights").unwrap();
        assert_eq!(w1.alias_of.as_deref(), Some("lstm_ix@t0.weights"));
        // Step-0 recurrent inputs read the zero init ensemble.
        assert!(unrolled.find("lstm_h@init").is_some());
    }

    #[test]
    fn gru_unrolls_and_compiles() {
        let mut net = Net::new(1);
        let d = data(&mut net, "x", vec![5]);
        let unit = gru(&mut net, "gru", d, 3, 0);
        assert_eq!(net.ensemble(unit.output).dims(), &[3]);
        let unrolled = net.unroll(2);
        compile(&unrolled, &OptLevel::full()).unwrap();
    }

    #[test]
    fn unrolled_params_counted_once() {
        let mut net = Net::new(1);
        let d = data(&mut net, "x", vec![4]);
        lstm(&mut net, "lstm", d, 4, 0);
        let unrolled = net.unroll(4);
        let compiled = compile(&unrolled, &OptLevel::full()).unwrap();
        // 9 weighted layers (4 ix/cx/fx/ox + 4 ih/ch/fh/oh + ... each with
        // weights+bias): parameter bindings must not scale with steps.
        let single = compile(&net.unroll(1), &OptLevel::full()).unwrap();
        assert_eq!(compiled.params.len(), single.params.len());
    }
}
