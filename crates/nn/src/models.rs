//! The model zoo: the three ImageNet architectures the paper evaluates
//! (AlexNet, VGG, OverFeat), plus an MLP and a small LeNet-style CNN.
//!
//! Every constructor takes a [`ModelConfig`] so benchmarks can run the
//! full published shapes (`input_size` 227/224/231) or scaled-down
//! variants that preserve the layer structure while fitting a CI machine.

use latte_core::dsl::{EnsembleId, Net};

use crate::layers::{
    self, convolution, data, fully_connected, lrn, max_pool, relu, softmax_loss, ConvSpec,
};

/// Configuration shared by the model constructors.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Batch size.
    pub batch: usize,
    /// Square input edge (pixels). Each model documents its published
    /// value and its minimum workable value.
    pub input_size: usize,
    /// Divider applied to channel and fully-connected widths (1 = the
    /// published model).
    pub channel_div: usize,
    /// Number of classes.
    pub classes: usize,
    /// Whether to append the softmax loss (and a label input).
    pub with_loss: bool,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            batch: 8,
            input_size: 32,
            channel_div: 4,
            classes: 10,
            with_loss: true,
            seed: 42,
        }
    }
}

impl ModelConfig {
    fn ch(&self, full: usize) -> usize {
        (full / self.channel_div).max(1)
    }
}

/// A constructed model: the network plus its notable ensembles.
#[derive(Debug)]
pub struct Model {
    /// The network, ready to compile.
    pub net: Net,
    /// The image data ensemble.
    pub data: EnsembleId,
    /// The label ensemble, when a loss was requested.
    pub label: Option<EnsembleId>,
    /// The final prediction ensemble (pre-loss).
    pub output: EnsembleId,
}

fn finish(mut net: Net, data_id: EnsembleId, output: EnsembleId, cfg: &ModelConfig) -> Model {
    let label = if cfg.with_loss {
        let label = data(&mut net, "label", vec![1]);
        softmax_loss(&mut net, "loss", output, label);
        Some(label)
    } else {
        None
    };
    Model {
        net,
        data: data_id,
        label,
        output,
    }
}

/// The paper's Figure-7 multi-layer perceptron: two fully-connected
/// layers with a softmax loss. `input_size` is the flat input width.
pub fn mlp(cfg: &ModelConfig, hidden: &[usize]) -> Model {
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size]);
    let mut prev = d;
    for (i, &h) in hidden.iter().enumerate() {
        let fc = fully_connected(&mut net, &format!("ip{}", i + 1), prev, h, cfg.seed + i as u64);
        prev = relu(&mut net, &format!("relu{}", i + 1), fc);
    }
    let out = fully_connected(
        &mut net,
        "ip_out",
        prev,
        cfg.classes,
        cfg.seed + hidden.len() as u64,
    );
    finish(net, d, out, cfg)
}

/// A small LeNet-style CNN: conv-pool-conv-pool-fc-fc. Works from
/// `input_size >= 12`; the classic is 28 (MNIST).
pub fn lenet(cfg: &ModelConfig) -> Model {
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size, cfg.input_size, 1]);
    let c1 = convolution(
        &mut net,
        "conv1",
        d,
        ConvSpec {
            out_channels: cfg.ch(20),
            kernel: 5,
            stride: 1,
            pad: 2,
        },
        cfg.seed,
    );
    let r1 = relu(&mut net, "relu1", c1);
    let p1 = max_pool(&mut net, "pool1", r1, 2, 2);
    let c2 = convolution(
        &mut net,
        "conv2",
        p1,
        ConvSpec {
            out_channels: cfg.ch(50),
            kernel: 5,
            stride: 1,
            pad: 2,
        },
        cfg.seed + 1,
    );
    let r2 = relu(&mut net, "relu2", c2);
    let p2 = max_pool(&mut net, "pool2", r2, 2, 2);
    let f1 = fully_connected(&mut net, "ip1", p2, cfg.ch(500), cfg.seed + 2);
    let rf = relu(&mut net, "relu3", f1);
    let out = fully_connected(&mut net, "ip2", rf, cfg.classes, cfg.seed + 3);
    finish(net, d, out, cfg)
}

/// AlexNet (Krizhevsky et al. 2012). Published `input_size` 227;
/// smallest clean scaled input 67.
///
/// # Panics
///
/// Panics when `input_size` is too small for the layer stack.
pub fn alexnet(cfg: &ModelConfig) -> Model {
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size, cfg.input_size, 3]);
    let c1 = convolution(
        &mut net,
        "conv1",
        d,
        ConvSpec {
            out_channels: cfg.ch(96),
            kernel: 11,
            stride: 4,
            pad: 0,
        },
        cfg.seed,
    );
    let r1 = relu(&mut net, "relu1", c1);
    let n1 = lrn(&mut net, "norm1", r1, 5, 1e-4, 0.75);
    let p1 = max_pool(&mut net, "pool1", n1, 3, 2);
    let c2 = convolution(
        &mut net,
        "conv2",
        p1,
        ConvSpec {
            out_channels: cfg.ch(256),
            kernel: 5,
            stride: 1,
            pad: 2,
        },
        cfg.seed + 1,
    );
    let r2 = relu(&mut net, "relu2", c2);
    let n2 = lrn(&mut net, "norm2", r2, 5, 1e-4, 0.75);
    let p2 = max_pool(&mut net, "pool2", n2, 3, 2);
    let c3 = convolution(&mut net, "conv3", p2, ConvSpec::same(cfg.ch(384), 3), cfg.seed + 2);
    let r3 = relu(&mut net, "relu3", c3);
    let c4 = convolution(&mut net, "conv4", r3, ConvSpec::same(cfg.ch(384), 3), cfg.seed + 3);
    let r4 = relu(&mut net, "relu4", c4);
    let c5 = convolution(&mut net, "conv5", r4, ConvSpec::same(cfg.ch(256), 3), cfg.seed + 4);
    let r5 = relu(&mut net, "relu5", c5);
    let p5 = max_pool(&mut net, "pool5", r5, 3, 2);
    let f6 = fully_connected(&mut net, "fc6", p5, cfg.ch(4096), cfg.seed + 5);
    let r6 = relu(&mut net, "relu6", f6);
    let f7 = fully_connected(&mut net, "fc7", r6, cfg.ch(4096), cfg.seed + 6);
    let r7 = relu(&mut net, "relu7", f7);
    let out = fully_connected(&mut net, "fc8", r7, cfg.classes, cfg.seed + 7);
    finish(net, d, out, cfg)
}

/// VGG-A / VGG-11 (Simonyan & Zisserman 2014). Published `input_size`
/// 224; any multiple of 32 works.
///
/// # Panics
///
/// Panics when `input_size` is not a multiple of 32.
pub fn vgg_a(cfg: &ModelConfig) -> Model {
    assert!(
        cfg.input_size.is_multiple_of(32),
        "VGG needs input divisible by 32 (five 2x2 pools)"
    );
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size, cfg.input_size, 3]);
    let mut prev = d;
    let mut idx = 0;
    // (group, channels, convs-in-group) for VGG-A.
    for (g, (ch, convs)) in [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)]
        .into_iter()
        .enumerate()
    {
        for ci in 0..convs {
            let c = convolution(
                &mut net,
                &format!("conv{}_{}", g + 1, ci + 1),
                prev,
                ConvSpec::same(cfg.ch(ch), 3),
                cfg.seed + idx,
            );
            idx += 1;
            prev = relu(&mut net, &format!("relu{}_{}", g + 1, ci + 1), c);
        }
        prev = max_pool(&mut net, &format!("pool{}", g + 1), prev, 2, 2);
    }
    let f1 = fully_connected(&mut net, "fc6", prev, cfg.ch(4096), cfg.seed + idx);
    let rf1 = relu(&mut net, "relu6", f1);
    let f2 = fully_connected(&mut net, "fc7", rf1, cfg.ch(4096), cfg.seed + idx + 1);
    let rf2 = relu(&mut net, "relu7", f2);
    let out = fully_connected(&mut net, "fc8", rf2, cfg.classes, cfg.seed + idx + 2);
    finish(net, d, out, cfg)
}

/// The first `groups` convolution groups of VGG-A (conv+ReLU+pool), used
/// by the paper's Figure 13 microbenchmark (`groups = 1`) and Figure 15
/// breakdown (`groups = 1..=4`), without the classifier.
pub fn vgg_prefix(cfg: &ModelConfig, groups: usize) -> Model {
    assert!((1..=5).contains(&groups), "VGG has five groups");
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size, cfg.input_size, 3]);
    let mut prev = d;
    let mut idx = 0;
    for (g, (ch, convs)) in [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)]
        .into_iter()
        .take(groups)
        .enumerate()
    {
        for ci in 0..convs {
            let c = convolution(
                &mut net,
                &format!("conv{}_{}", g + 1, ci + 1),
                prev,
                ConvSpec::same(cfg.ch(ch), 3),
                cfg.seed + idx,
            );
            idx += 1;
            prev = relu(&mut net, &format!("relu{}_{}", g + 1, ci + 1), c);
        }
        prev = max_pool(&mut net, &format!("pool{}", g + 1), prev, 2, 2);
    }
    // No classifier: drive the backward pass from an L2 loss against a
    // zero target so forward+backward timing is well defined.
    let target_dims = net.ensemble(prev).dims().to_vec();
    let target = data(&mut net, "target", target_dims);
    layers::l2_loss(&mut net, "loss", prev, target);
    Model {
        net,
        data: d,
        label: Some(target),
        output: prev,
    }
}

/// OverFeat (fast model, Sermanet et al. 2013). Published `input_size`
/// 231; smallest clean scaled input 71.
///
/// # Panics
///
/// Panics when `input_size` is too small for the layer stack.
pub fn overfeat(cfg: &ModelConfig) -> Model {
    let mut net = Net::new(cfg.batch);
    let d = data(&mut net, "data", vec![cfg.input_size, cfg.input_size, 3]);
    let c1 = convolution(
        &mut net,
        "conv1",
        d,
        ConvSpec {
            out_channels: cfg.ch(96),
            kernel: 11,
            stride: 4,
            pad: 0,
        },
        cfg.seed,
    );
    let r1 = relu(&mut net, "relu1", c1);
    let p1 = max_pool(&mut net, "pool1", r1, 2, 2);
    let c2 = convolution(
        &mut net,
        "conv2",
        p1,
        ConvSpec {
            out_channels: cfg.ch(256),
            kernel: 5,
            stride: 1,
            pad: 0,
        },
        cfg.seed + 1,
    );
    let r2 = relu(&mut net, "relu2", c2);
    let p2 = max_pool(&mut net, "pool2", r2, 2, 2);
    let c3 = convolution(&mut net, "conv3", p2, ConvSpec::same(cfg.ch(512), 3), cfg.seed + 2);
    let r3 = relu(&mut net, "relu3", c3);
    let c4 = convolution(&mut net, "conv4", r3, ConvSpec::same(cfg.ch(1024), 3), cfg.seed + 3);
    let r4 = relu(&mut net, "relu4", c4);
    let c5 = convolution(&mut net, "conv5", r4, ConvSpec::same(cfg.ch(1024), 3), cfg.seed + 4);
    let r5 = relu(&mut net, "relu5", c5);
    let p5 = max_pool(&mut net, "pool5", r5, 2, 2);
    let f6 = fully_connected(&mut net, "fc6", p5, cfg.ch(3072), cfg.seed + 5);
    let r6 = relu(&mut net, "relu6", f6);
    let f7 = fully_connected(&mut net, "fc7", r6, cfg.ch(4096), cfg.seed + 6);
    let r7 = relu(&mut net, "relu7", f7);
    let out = fully_connected(&mut net, "fc8", r7, cfg.classes, cfg.seed + 7);
    finish(net, d, out, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};

    fn small(input: usize) -> ModelConfig {
        ModelConfig {
            batch: 2,
            input_size: input,
            channel_div: 16,
            classes: 10,
            with_loss: true,
            seed: 7,
        }
    }

    #[test]
    fn mlp_compiles_and_names_match_paper_example() {
        let m = mlp(&small(16), &[20, 10]);
        assert!(m.net.find("ip1").is_some());
        assert!(m.net.find("loss").is_some());
        compile(&m.net, &OptLevel::full()).unwrap();
    }

    #[test]
    fn lenet_compiles() {
        let m = lenet(&small(12));
        compile(&m.net, &OptLevel::full()).unwrap();
    }

    #[test]
    fn alexnet_structure_and_compile() {
        let m = alexnet(&small(67));
        // Five convs, three FCs, two LRNs, three pools.
        for e in ["conv5", "fc8", "norm2", "pool5"] {
            assert!(m.net.find(e).is_some(), "missing {e}");
        }
        let compiled = compile(&m.net, &OptLevel::full()).unwrap();
        assert!(compiled.stats.gemms_matched >= 8);
    }

    #[test]
    fn vgg_a_compiles_and_fuses_groups() {
        let m = vgg_a(&small(32));
        let compiled = compile(&m.net, &OptLevel::full()).unwrap();
        // Every single-conv group fuses conv+relu+pool.
        assert!(compiled.stats.fusions >= 4, "{:?}", compiled.stats);
    }

    #[test]
    fn vgg_prefix_matches_group_count() {
        let m = vgg_prefix(&small(32), 1);
        assert!(m.net.find("conv1_1").is_some());
        assert!(m.net.find("conv2_1").is_none());
        compile(&m.net, &OptLevel::full()).unwrap();
    }

    #[test]
    fn overfeat_compiles() {
        let m = overfeat(&small(71));
        compile(&m.net, &OptLevel::full()).unwrap();
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn vgg_rejects_bad_input_size() {
        vgg_a(&small(33));
    }
}
