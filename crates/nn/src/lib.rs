//! # latte-nn
//!
//! The Latte standard library: layer constructors (fully-connected,
//! convolution — dense and grouped —, pooling, activations, LRN,
//! batch-norm, scale/shift, dropout, losses, element-wise blocks, channel
//! concatenation for Inception-style branches), recurrent units (LSTM,
//! GRU), and the model zoo the paper evaluates (AlexNet, VGG-A, OverFeat)
//! plus MLP and LeNet.
//!
//! Everything here is ordinary user code over the `latte-core` DSL — no
//! layer has compiler support; the compiler only sees ensembles,
//! connections, and neuron bodies.
//!
//! # Examples
//!
//! The paper's Figure-7 MLP:
//!
//! ```
//! use latte_nn::models::{mlp, ModelConfig};
//! use latte_core::{compile, OptLevel};
//!
//! let cfg = ModelConfig { batch: 8, input_size: 64, ..ModelConfig::default() };
//! let model = mlp(&cfg, &[20]);
//! let compiled = compile(&model.net, &OptLevel::full())?;
//! assert!(compiled.stats.gemms_matched > 0);
//! # Ok::<(), latte_core::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod layers;
pub mod models;
pub mod rnn;
pub mod varlen;
