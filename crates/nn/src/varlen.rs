//! Variable-length sequence support: power-of-two length bucketing and a
//! masked last-step readout over unrolled recurrent networks.
//!
//! Fixed unrolling compiles one program per exact sequence length — a
//! serving workload with lengths 1..=12 would need twelve programs. With
//! bucketing, lengths round up to the next power of two (1, 2, 4, 8, 16,
//! …), so the whole range shares four programs, and a trace cache keyed
//! by bucket (see [`latte_core::TraceKey::seq_bucket`]) never recompiles
//! for an odd length.
//!
//! Correctness under padding relies on two properties:
//!
//! * padded time steps feed **zero** inputs, so steps `len..bucket` only
//!   compute states nobody reads;
//! * the readout is a *mask-select*: each item's one-hot mask over the
//!   bucket's steps picks the hidden state at its true last step,
//!   `readout[i] = Σ_t mask[t] · h_t[i]`. With a one-hot mask the select
//!   reproduces `h_{len-1}` **bit for bit** — multiplying by the mask's
//!   `1.0` is exact and the zero terms vanish in the sum — which is what
//!   lets the bucketed path be differentially tested with `to_bits()`
//!   against a solo fixed-length unroll.

use latte_core::dsl::{Ensemble, EnsembleId, Mapping, Net, NeuronType};

use crate::layers::data;
use crate::rnn::lstm;

/// The power-of-two bucket a sequence length falls into.
///
/// # Panics
///
/// Panics if `len` is zero (there is no empty sequence).
pub fn bucket_len(len: usize) -> usize {
    assert!(len > 0, "sequence length must be non-zero");
    len.next_power_of_two()
}

/// The canonical bucket ladder covering lengths `1..=max_len`.
pub fn bucket_ladder(max_len: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = 1;
    while b < bucket_len(max_len.max(1)) {
        out.push(b);
        b *= 2;
    }
    out.push(b);
    out
}

/// A one-hot mask over `bucket` steps selecting step `len - 1`, the
/// per-item readout input for a sequence of true length `len`.
///
/// # Panics
///
/// Panics if `len` is zero or exceeds the bucket.
pub fn last_step_mask(len: usize, bucket: usize) -> Vec<f32> {
    assert!(len >= 1 && len <= bucket, "length {len} outside bucket {bucket}");
    let mut m = vec![0.0; bucket];
    m[len - 1] = 1.0;
    m
}

/// The mask-select neuron: `value = Σ_t inputs[t] · mask[t]` over
/// `steps` one-to-one step connections plus one whole-mask connection.
fn mask_select_neuron(steps: usize) -> NeuronType {
    assert!(steps >= 1, "mask select needs at least one step");
    NeuronType::builder("MaskSelect")
        .forward(move |b| {
            b.assign(b.value(), b.input(0, 0).mul(b.input(steps, 0)));
            for t in 1..steps {
                b.accumulate(b.value(), b.input(t, 0).mul(b.input(steps, t)));
            }
        })
        .backward(move |b| {
            // d h_t = mask[t] · d out; the mask itself is data (no grad).
            for t in 0..steps {
                b.accumulate(b.grad_input(t, 0), b.grad_expr().mul(b.input(steps, t)));
            }
        })
        .build()
}

/// Adds a masked last-step readout over an unrolled recurrent net:
/// a `"{name}_mask"` data ensemble of `steps` elements (feed a
/// [`last_step_mask`] per item) and a `"{name}"` ensemble computing
/// `Σ_t mask[t] · step_value_t`, where step `t`'s values come from the
/// ensemble named `"{state}@t{t}"`.
///
/// # Panics
///
/// Panics if any unrolled step ensemble `"{state}@t{t}"` is missing.
pub fn seq_readout(
    net: &mut Net,
    name: &str,
    state: &str,
    steps: usize,
    dims: Vec<usize>,
) -> EnsembleId {
    let step_ids: Vec<EnsembleId> = (0..steps)
        .map(|t| {
            net.find(&format!("{state}@t{t}"))
                .unwrap_or_else(|| panic!("unrolled step ensemble `{state}@t{t}` missing"))
        })
        .collect();
    let mask = net.add(Ensemble::data(format!("{name}_mask"), vec![steps]));
    let out = net.add(Ensemble::new(name, dims, mask_select_neuron(steps)));
    for id in step_ids {
        net.connect(id, out, Mapping::one_to_one());
    }
    net.connect(mask, out, Mapping::all_to_all(vec![steps]));
    out
}

/// A bucketed variable-length LSTM: the step ensembles, the mask, and
/// the readout handle.
#[derive(Debug, Clone, Copy)]
pub struct SeqLstm {
    /// Steps the network is unrolled to (the bucket).
    pub bucket: usize,
    /// The masked readout: each item's hidden state at its true last
    /// step. Attach heads/losses here.
    pub readout: EnsembleId,
}

/// Builds an LSTM over variable-length sequences, unrolled to `bucket`
/// steps with a mask-select readout.
///
/// Per item, feed:
///
/// * `"x@t{t}"` — the step inputs, **zero-padded** for `t >= len`;
/// * `"{name}_last_mask"` — [`last_step_mask`]`(len, bucket)`.
///
/// The returned net still needs a head and a loss on
/// [`SeqLstm::readout`]; with the same `seed`, its parameters are
/// bit-identical to a solo fixed unroll of the same unit.
pub fn lstm_seq(
    batch: usize,
    name: &str,
    width: usize,
    hidden: usize,
    bucket: usize,
    seed: u64,
) -> (Net, SeqLstm) {
    assert!(bucket >= 1 && bucket.is_power_of_two(), "bucket must be a power of two");
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![width]);
    lstm(&mut step_net, name, x, hidden, seed);
    let mut net = step_net.unroll(bucket);
    let readout = seq_readout(
        &mut net,
        &format!("{name}_last"),
        &format!("{name}_h"),
        bucket,
        vec![hidden],
    );
    (net, SeqLstm { bucket, readout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_len(1), 1);
        assert_eq!(bucket_len(2), 2);
        assert_eq!(bucket_len(3), 4);
        assert_eq!(bucket_len(5), 8);
        assert_eq!(bucket_len(8), 8);
        assert_eq!(bucket_len(12), 16);
        assert_eq!(bucket_ladder(12), vec![1, 2, 4, 8, 16]);
        assert_eq!(bucket_ladder(1), vec![1]);
    }

    #[test]
    fn one_hot_masks() {
        assert_eq!(last_step_mask(1, 4), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(last_step_mask(4, 4), vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn seq_lstm_compiles_and_keeps_one_param_set() {
        let (net, s) = lstm_seq(2, "lstm", 3, 4, 4, 7);
        assert_eq!(net.ensemble(s.readout).dims(), &[4]);
        let compiled = compile(&net, &OptLevel::full()).unwrap();
        // Weight sharing across steps: params don't scale with the bucket.
        let (one, _) = lstm_seq(2, "lstm", 3, 4, 1, 7);
        let single = compile(&one, &OptLevel::full()).unwrap();
        assert_eq!(compiled.params.len(), single.params.len());
    }
}
