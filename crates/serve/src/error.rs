//! Structured serving errors.
//!
//! Every failure a client can observe is a variant here — the server
//! never panics outward and never queues without bound; overload and
//! replica death surface as data.

use std::fmt;

/// A serving-layer failure, returned from submission or through a
/// [`Ticket`](crate::Ticket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the number of admitted but
    /// unfinished requests already equals the configured capacity. This
    /// is the slow-client backpressure path — the queue is bounded, so a
    /// client that stops draining responses sees structured rejection
    /// instead of unbounded memory growth.
    Overloaded {
        /// Admitted-but-unfinished requests at rejection time.
        depth: usize,
        /// The configured admission capacity
        /// ([`ServeConfig::queue_cap`](crate::ServeConfig::queue_cap)).
        capacity: usize,
    },
    /// The server has shut down (or its dispatcher is gone).
    Closed,
    /// The request does not match the model's input signature.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// Model compilation or plan lowering failed.
    Compile {
        /// The underlying compiler/runtime diagnostic.
        detail: String,
    },
    /// Batch execution failed at runtime.
    Execution {
        /// The underlying runtime diagnostic.
        detail: String,
    },
    /// The request's micro-batch died with a replica and the retry
    /// budget is exhausted: it was retried `retries` times, each attempt
    /// landing on a replica that crashed mid-batch.
    ReplicaFailed {
        /// The last crash's diagnostic.
        detail: String,
        /// Retry attempts consumed before giving up.
        retries: u32,
    },
    /// A bounded [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// expired before the response arrived.
    WaitTimeout,
    /// The request's client-supplied deadline had already passed — at
    /// admission (the request never occupied a queue slot) or at batch
    /// flush (the request was shed before execution). Either way the
    /// work was never run: a caller that can no longer use the answer
    /// must not cost the server a batch slot.
    DeadlineExceeded {
        /// How far past the deadline the request was when rejected/shed.
        late_by: std::time::Duration,
    },
    /// The server is draining for graceful shutdown: admission is
    /// stopped, but every previously admitted request will still be
    /// answered before the server exits.
    Draining,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: {depth} requests in flight (capacity {capacity})")
            }
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Compile { detail } => write!(f, "model compilation failed: {detail}"),
            ServeError::Execution { detail } => write!(f, "batch execution failed: {detail}"),
            ServeError::ReplicaFailed { detail, retries } => {
                write!(f, "replica failed after {retries} retries: {detail}")
            }
            ServeError::WaitTimeout => write!(f, "timed out waiting for a response"),
            ServeError::DeadlineExceeded { late_by } => {
                write!(f, "request deadline exceeded ({late_by:?} late)")
            }
            ServeError::Draining => write!(f, "server is draining for shutdown"),
        }
    }
}

impl std::error::Error for ServeError {}
