//! The batch engine each replica thread runs, plus the fault hooks that
//! let tests kill a replica mid-batch.
//!
//! A replica owns one [`BatchEngine`]: a persistent [`WorkerPool`] plus
//! one warm [`Executor`] per micro-batch size already seen, all
//! instantiated from plans in the shared [`PlanCache`]. The cache is
//! consulted on *every* batch (so hit counters observe the steady
//! state); warm executors make the steady state allocation-free too.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use latte_runtime::fault::FaultPlan;
use latte_runtime::pool::WorkerPool;
use latte_runtime::Executor;

use crate::cache::PlanCache;
use crate::error::ServeError;
use crate::model::Model;

/// What a [`ReplicaHooks::on_batch`] observer tells the replica to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAction {
    /// Run the batch normally.
    Proceed,
    /// Die mid-batch (the replica thread panics and is restarted by the
    /// dispatcher; the batch is retried on a live replica).
    Crash,
}

/// Test/fault seam invoked by a replica just before it executes a
/// micro-batch.
pub trait ReplicaHooks: Send + Sync {
    /// Called with the replica id, the job's dispatch sequence number,
    /// and the micro-batch size; returning [`BatchAction::Crash`] kills
    /// the replica mid-batch.
    fn on_batch(&self, replica: usize, seq: u64, size: usize) -> BatchAction;
}

/// The default hooks: never crash.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl ReplicaHooks for NoHooks {
    fn on_batch(&self, _replica: usize, _seq: u64, _size: usize) -> BatchAction {
        BatchAction::Proceed
    }
}

/// Hooks that replay a [`FaultPlan`] against the serving layer: each
/// replica's batches count as its "iterations", and
/// [`Fault::NodeCrash`](latte_runtime::fault::Fault::NodeCrash) entries
/// kill that replica at that batch ordinal. Replacement replicas get
/// fresh, never-reused ids, so a crash plan for replica 0 does not
/// re-kill its replacement.
#[derive(Debug)]
pub struct FaultHooks {
    plan: FaultPlan,
    ordinals: Mutex<HashMap<usize, usize>>,
}

impl FaultHooks {
    /// Hooks replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultHooks {
            plan,
            ordinals: Mutex::new(HashMap::new()),
        }
    }
}

impl ReplicaHooks for FaultHooks {
    fn on_batch(&self, replica: usize, _seq: u64, _size: usize) -> BatchAction {
        let ordinal = {
            let mut m = self.ordinals.lock().unwrap();
            let slot = m.entry(replica).or_insert(0);
            let o = *slot;
            *slot += 1;
            o
        };
        if self.plan.crashed_by(replica, ordinal) {
            BatchAction::Crash
        } else {
            BatchAction::Proceed
        }
    }
}

/// One replica's execution state: warm executors per micro-batch size,
/// sharing one worker pool and the server-wide plan cache.
pub struct BatchEngine {
    model: Arc<Model>,
    cache: Arc<PlanCache>,
    pool: Arc<WorkerPool>,
    warm: HashMap<usize, Executor>,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("model", &self.model.name())
            .field("warm_sizes", &{
                let mut s: Vec<usize> = self.warm.keys().copied().collect();
                s.sort_unstable();
                s
            })
            .finish_non_exhaustive()
    }
}

impl BatchEngine {
    /// A fresh engine for `model`, lowering through `cache` and running
    /// on a new `threads`-wide worker pool.
    pub fn new(model: Arc<Model>, cache: Arc<PlanCache>, threads: usize) -> Self {
        BatchEngine {
            model,
            cache,
            pool: Arc::new(WorkerPool::new(threads)),
            warm: HashMap::new(),
        }
    }

    /// Runs one micro-batch: each element of `items` is one request's
    /// `(ensemble, per_item values)` inputs, landing in that batch slot.
    /// Returns each item's `(output buffer, values)` rows plus whether
    /// the batch size's plan was already cached.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] on a first-time lowering failure,
    /// [`ServeError::Execution`] for instantiation or buffer-access
    /// failures.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &mut self,
        items: &[Vec<(String, Vec<f32>)>],
    ) -> Result<(Vec<Vec<(String, Vec<f32>)>>, bool), ServeError> {
        let n = items.len();
        let (program, cache_hit) = self.cache.get(&self.model, n)?;
        let exec = match self.warm.entry(n) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let exec = program
                    .instantiate(Arc::clone(&self.pool))
                    .map_err(|e| ServeError::Execution {
                        detail: format!("instantiate @ batch {n}: {e}"),
                    })?;
                v.insert(exec)
            }
        };
        for (slot, inputs) in items.iter().enumerate() {
            for (ensemble, data) in inputs {
                exec.set_input_item(ensemble, slot, data)
                    .map_err(|e| ServeError::Execution {
                        detail: format!("input `{ensemble}` slot {slot}: {e}"),
                    })?;
            }
        }
        exec.forward();
        let mut out = Vec::with_capacity(n);
        for slot in 0..n {
            let mut rows = Vec::with_capacity(self.model.outputs().len());
            for name in self.model.outputs() {
                let values = exec
                    .read_item(name, slot)
                    .map_err(|e| ServeError::Execution {
                        detail: format!("output `{name}` slot {slot}: {e}"),
                    })?;
                rows.push((name.clone(), values));
            }
            out.push(rows);
        }
        Ok((out, cache_hit))
    }
}
