//! The execution-plan cache, keyed by `(net fingerprint, batch)`.
//!
//! Lowering a net — kernel selection, bounds verification, liveness
//! planning — is the expensive part of bringing up an executor. The
//! cache stores one [`CompiledProgram`] per `(fingerprint, micro-batch
//! size)` pair, so after the first batch of each size the serving path
//! never compiles again: a tail batch of size 3 hits the size-3 entry
//! and only instantiates (fresh buffers + parameter init, no lowering).
//! Hit/miss counters make "zero recompiles after warmup" testable.
//!
//! The cache is **bounded**: it holds at most `capacity` entries and
//! evicts the least-recently-used plan when a miss would exceed the
//! bound, so a server fed adversarial shape diversity (every request a
//! new `(fingerprint, batch)` pair — e.g. many sequence buckets × many
//! tail-batch sizes) degrades to recompilation instead of growing
//! without limit. Evictions are counted; a nonzero
//! [`PlanCache::evictions`] under a steady workload means the capacity
//! is too small for the working set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use latte_runtime::registry::KernelRegistry;
use latte_runtime::{CompiledProgram, ExecConfig};

use crate::error::ServeError;
use crate::model::Model;

/// Default entry bound of [`PlanCache::new`]: generous for one model's
/// micro-batch sizes, and still enough for a bucket ladder of sequence
/// models times their tail batches.
pub const DEFAULT_PLAN_CAPACITY: usize = 64;

/// One cached plan plus the recency tick the LRU policy orders by.
struct Entry {
    program: Arc<CompiledProgram>,
    last_used: u64,
}

/// The mutable half of the cache: entries plus the monotonically
/// increasing recency clock.
struct Inner {
    entries: HashMap<(u64, usize), Entry>,
    tick: u64,
}

/// A shareable, bounded LRU cache of lowered programs, keyed by
/// `(CompiledNet::fingerprint(), batch)`.
pub struct PlanCache {
    registry: KernelRegistry,
    cfg: ExecConfig,
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish_non_exhaustive()
    }
}

impl PlanCache {
    /// An empty cache lowering with the built-in kernel registry, the
    /// given execution configuration, and the default entry bound
    /// ([`DEFAULT_PLAN_CAPACITY`]).
    pub fn new(cfg: ExecConfig) -> Self {
        Self::with_capacity(cfg, DEFAULT_PLAN_CAPACITY)
    }

    /// An empty cache bounded to at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// When `capacity` is zero (a cache that can hold nothing cannot
    /// serve plans).
    pub fn with_capacity(cfg: ExecConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "PlanCache capacity must be nonzero");
        PlanCache {
            registry: KernelRegistry::with_builtins(),
            cfg,
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the lowered program for `(model, batch)` and whether it
    /// was already cached. On a miss this compiles and lowers the
    /// factory's net (evicting the least-recently-used entry if the
    /// cache is full); on a hit it is a map lookup — no compilation.
    ///
    /// The miss path also cross-checks the freshly compiled net's
    /// fingerprint against the model's probed fingerprint, catching
    /// factories that are not batch-invariant (e.g. a seed derived from
    /// the batch size) before they can serve inconsistent results.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] for compile/lowering failures or a
    /// non-batch-invariant factory.
    pub fn get(
        &self,
        model: &Model,
        batch: usize,
    ) -> Result<(Arc<CompiledProgram>, bool), ServeError> {
        let key = (model.fingerprint(), batch);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(hit) = inner.entries.get_mut(&key) {
                hit.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&hit.program), true));
            }
        }
        let compiled = model.compile_batch(batch)?;
        if compiled.fingerprint() != model.fingerprint() {
            return Err(ServeError::Compile {
                detail: format!(
                    "{}: factory is not batch-invariant (fingerprint {:#x} at batch {batch}, \
                     {:#x} at batch 1)",
                    model.name(),
                    compiled.fingerprint(),
                    model.fingerprint()
                ),
            });
        }
        let program = CompiledProgram::lower(compiled, &self.registry, self.cfg)
            .map(Arc::new)
            .map_err(|e| ServeError::Compile {
                detail: format!("{} @ batch {batch}: {e}", model.name()),
            })?;
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // A concurrent miss may have raced us here; keep the first entry
        // so every holder shares one plan.
        if !inner.entries.contains_key(&key) {
            while inner.entries.len() >= self.capacity {
                let victim = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("a full cache has a least-recently-used entry");
                inner.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            inner.entries.insert(
                key,
                Entry {
                    program,
                    last_used: tick,
                },
            );
        }
        let entry = inner.entries.get_mut(&key).expect("just ensured present");
        entry.last_used = tick;
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::clone(&entry.program), false))
    }

    /// Cache hits served so far (lookups that found an entry).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (lookups that compiled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep the cache within its capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The maximum number of entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Distinct `(fingerprint, batch)` entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::dsl::Net;
    use latte_core::OptLevel;
    use latte_nn::layers::{data, fully_connected, softmax_loss};

    fn tiny_model() -> Model {
        Model::new(
            "tiny",
            Box::new(|batch| {
                let mut net = Net::new(batch);
                let x = data(&mut net, "data", vec![3]);
                let head = fully_connected(&mut net, "head", x, 2, 5);
                let label = data(&mut net, "label", vec![1]);
                softmax_loss(&mut net, "loss", head, label);
                net
            }),
            OptLevel::none(),
            vec!["head.value".to_string()],
        )
        .unwrap()
    }

    #[test]
    fn lru_bound_evicts_and_counts() {
        let model = tiny_model();
        let cache = PlanCache::with_capacity(ExecConfig::default(), 2);
        cache.get(&model, 1).unwrap(); // miss
        cache.get(&model, 2).unwrap(); // miss
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);

        cache.get(&model, 3).unwrap(); // miss, evicts batch-1 (LRU)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);

        // Batch 1 was evicted: fetching it again is a miss and evicts
        // batch 2, the now-least-recently-used survivor.
        let (_, hit) = cache.get(&model, 1).unwrap();
        assert!(!hit);
        assert_eq!(cache.evictions(), 2);

        // A hit refreshes recency: batch 3 survives the next eviction.
        let (_, hit) = cache.get(&model, 3).unwrap();
        assert!(hit);
        cache.get(&model, 4).unwrap(); // evicts batch 1, not batch 3
        let (_, hit) = cache.get(&model, 3).unwrap();
        assert!(hit, "recently used entry was evicted");
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn within_capacity_nothing_evicts() {
        let model = tiny_model();
        let cache = PlanCache::new(ExecConfig::default());
        for batch in 1..=4 {
            cache.get(&model, batch).unwrap();
        }
        for batch in 1..=4 {
            let (_, hit) = cache.get(&model, batch).unwrap();
            assert!(hit, "batch {batch} should be cached");
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), DEFAULT_PLAN_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_is_refused() {
        let _ = PlanCache::with_capacity(ExecConfig::default(), 0);
    }
}
