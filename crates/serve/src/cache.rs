//! The execution-plan cache, keyed by `(net fingerprint, batch)`.
//!
//! Lowering a net — kernel selection, bounds verification, liveness
//! planning — is the expensive part of bringing up an executor. The
//! cache stores one [`CompiledProgram`] per `(fingerprint, micro-batch
//! size)` pair, so after the first batch of each size the serving path
//! never compiles again: a tail batch of size 3 hits the size-3 entry
//! and only instantiates (fresh buffers + parameter init, no lowering).
//! Hit/miss counters make "zero recompiles after warmup" testable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use latte_runtime::registry::KernelRegistry;
use latte_runtime::{CompiledProgram, ExecConfig};

use crate::error::ServeError;
use crate::model::Model;

/// A shareable cache of lowered programs, keyed by
/// `(CompiledNet::fingerprint(), batch)`.
pub struct PlanCache {
    registry: KernelRegistry,
    cfg: ExecConfig,
    entries: Mutex<HashMap<(u64, usize), Arc<CompiledProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

impl PlanCache {
    /// An empty cache lowering with the built-in kernel registry and the
    /// given execution configuration.
    pub fn new(cfg: ExecConfig) -> Self {
        PlanCache {
            registry: KernelRegistry::with_builtins(),
            cfg,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the lowered program for `(model, batch)` and whether it
    /// was already cached. On a miss this compiles and lowers the
    /// factory's net; on a hit it is a map lookup — no compilation.
    ///
    /// The miss path also cross-checks the freshly compiled net's
    /// fingerprint against the model's probed fingerprint, catching
    /// factories that are not batch-invariant (e.g. a seed derived from
    /// the batch size) before they can serve inconsistent results.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] for compile/lowering failures or a
    /// non-batch-invariant factory.
    pub fn get(
        &self,
        model: &Model,
        batch: usize,
    ) -> Result<(Arc<CompiledProgram>, bool), ServeError> {
        let key = (model.fingerprint(), batch);
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        let compiled = model.compile_batch(batch)?;
        if compiled.fingerprint() != model.fingerprint() {
            return Err(ServeError::Compile {
                detail: format!(
                    "{}: factory is not batch-invariant (fingerprint {:#x} at batch {batch}, \
                     {:#x} at batch 1)",
                    model.name(),
                    compiled.fingerprint(),
                    model.fingerprint()
                ),
            });
        }
        let program = CompiledProgram::lower(compiled, &self.registry, self.cfg)
            .map(Arc::new)
            .map_err(|e| ServeError::Compile {
                detail: format!("{} @ batch {batch}: {e}", model.name()),
            })?;
        let mut entries = self.entries.lock().unwrap();
        // A concurrent miss may have raced us here; keep the first entry
        // so every holder shares one plan.
        let entry = entries.entry(key).or_insert(program);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::clone(entry), false))
    }

    /// Cache hits served so far (lookups that found an entry).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (lookups that compiled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct `(fingerprint, batch)` entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
