//! Deterministic open-loop load generation.
//!
//! An open-loop generator decides arrival times *before* observing any
//! response — the schedule is a pure function of `(pattern, n, seed)`,
//! so a benchmark run is exactly reproducible. The bench harness walks
//! the schedule with real sleeps; tests can consume it as data.

use std::time::Duration;

use latte_runtime::fault::{FaultPlan, TransferFault};

/// An arrival pattern for the open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals at a steady mean rate (exponential
    /// inter-arrival gaps).
    Steady {
        /// Mean requests per second.
        rps: f64,
    },
    /// Closely spaced bursts separated by idle gaps: each burst packs
    /// `burst` arrivals uniformly into `within`, then the line goes
    /// silent for `gap`.
    Bursty {
        /// Arrivals per burst.
        burst: usize,
        /// Window a burst's arrivals are spread across.
        within: Duration,
        /// Idle time between bursts.
        gap: Duration,
    },
    /// Steady Poisson arrivals, but every `stall_every`-th request is
    /// preceded by an extra `stall` of silence — the client that stops
    /// sending (and draining) for a while, then dumps its backlog.
    SlowClient {
        /// Mean requests per second while active.
        rps: f64,
        /// A stall is inserted before every `stall_every`-th arrival
        /// (clamped to at least 1).
        stall_every: usize,
        /// Length of each stall.
        stall: Duration,
    },
}

/// splitmix64: tiny, seedable, and good enough for arrival jitter.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in the open interval (0, 1).
fn unit(state: &mut u64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    u.max(f64::EPSILON)
}

/// An exponential inter-arrival gap for mean rate `rps` (clamped to a
/// sane minimum rate so a zero/negative rps cannot hang the schedule).
fn exp_gap(state: &mut u64, rps: f64) -> Duration {
    let rate = rps.max(1e-3);
    Duration::from_secs_f64(-unit(state).ln() / rate)
}

/// Builds the arrival schedule: `n` non-decreasing offsets from the
/// start of the run. Fully determined by `(arrival, n, seed)`.
pub fn schedule(arrival: &Arrival, n: usize, seed: u64) -> Vec<Duration> {
    let mut state = seed ^ 0xa076_1d64_78bd_642f;
    let mut out = Vec::with_capacity(n);
    match *arrival {
        Arrival::Steady { rps } => {
            let mut t = Duration::ZERO;
            for _ in 0..n {
                t += exp_gap(&mut state, rps);
                out.push(t);
            }
        }
        Arrival::Bursty { burst, within, gap } => {
            let burst = burst.max(1);
            let mut start = Duration::ZERO;
            while out.len() < n {
                let take = burst.min(n - out.len());
                let mut offsets: Vec<Duration> = (0..take)
                    .map(|_| within.mul_f64(unit(&mut state)))
                    .collect();
                offsets.sort();
                out.extend(offsets.into_iter().map(|o| start + o));
                start += within + gap;
            }
        }
        Arrival::SlowClient {
            rps,
            stall_every,
            stall,
        } => {
            let stall_every = stall_every.max(1);
            let mut t = Duration::ZERO;
            for i in 0..n {
                if i > 0 && i % stall_every == 0 {
                    t += stall;
                }
                t += exp_gap(&mut state, rps);
                out.push(t);
            }
        }
    }
    out
}

/// One misbehaving client for the adversarial load mode: each variant
/// is a protocol-level attack the network front-end must absorb with a
/// structured error or a shed counter — never a hang, panic, or leaked
/// resource. [`crate::net::run_adversary`] drives one of these against
/// a live front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misbehavior {
    /// Connect and never write a byte — the slow-loris client. The
    /// front-end's read timeout must reclaim the connection.
    HoldOpen,
    /// Complete the handshake, write a frame's length prefix and part
    /// of its body, then vanish. The front-end must detect the
    /// truncated stream and clean up.
    MidFrameDisconnect,
    /// Send a well-formed request frame with one payload bit flipped,
    /// so the CRC trailer no longer matches. The front-end must answer
    /// with a structured bad-frame error and close.
    CorruptCrc,
    /// Send a burst of requests whose deadline budget is already as
    /// good as spent. Every one must be rejected at admission or shed
    /// at flush — none may execute.
    PastDeadlineFlood {
        /// Requests in the flood.
        requests: usize,
    },
}

/// A seeded mix of `n` misbehaviors: a pure function of `(n, seed,
/// flood)`, so an adversarial run is exactly reproducible. `flood` is
/// the burst size given to every [`Misbehavior::PastDeadlineFlood`].
pub fn misbehaviors(n: usize, seed: u64, flood: usize) -> Vec<Misbehavior> {
    let mut state = seed ^ 0x5a5a_a5a5_0f0f_f0f0;
    (0..n)
        .map(|_| match splitmix64(&mut state) % 4 {
            0 => Misbehavior::HoldOpen,
            1 => Misbehavior::MidFrameDisconnect,
            2 => Misbehavior::CorruptCrc,
            _ => Misbehavior::PastDeadlineFlood { requests: flood },
        })
        .collect()
}

/// Derives an adversarial client schedule from a training-side
/// [`FaultPlan`], reusing the repo's one seeded fault vocabulary for
/// the serving chaos mode: a dropped transfer becomes a mid-frame
/// disconnect, a corrupted transfer a bad-CRC frame, a straggler phase
/// a hold-open slow-loris, and a node crash a past-deadline flood of
/// `flood` requests (the client that died holding a full send queue).
/// Iterations where the plan schedules nothing contribute nothing.
pub fn misbehaviors_from_plan(
    plan: &FaultPlan,
    node: usize,
    iters: usize,
    flood: usize,
) -> Vec<Misbehavior> {
    let mut out = Vec::new();
    for iter in 0..iters {
        for fault in plan.transfer_faults(node, iter, 0) {
            out.push(match fault {
                TransferFault::Dropped => Misbehavior::MidFrameDisconnect,
                TransferFault::Corrupted => Misbehavior::CorruptCrc,
            });
        }
        if plan.straggle_factor(node, iter) > 1.0 {
            out.push(Misbehavior::HoldOpen);
        }
        if plan.crashed_by(node, iter) {
            out.push(Misbehavior::PastDeadlineFlood { requests: flood });
            break; // a crashed node sends nothing further
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_runtime::fault::FaultRates;

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        for arrival in [
            Arrival::Steady { rps: 500.0 },
            Arrival::Bursty {
                burst: 8,
                within: Duration::from_millis(2),
                gap: Duration::from_millis(20),
            },
            Arrival::SlowClient {
                rps: 500.0,
                stall_every: 10,
                stall: Duration::from_millis(50),
            },
        ] {
            let a = schedule(&arrival, 100, 42);
            let b = schedule(&arrival, 100, 42);
            let c = schedule(&arrival, 100, 43);
            assert_eq!(a, b, "{arrival:?} not reproducible");
            assert_ne!(a, c, "{arrival:?} ignores the seed");
        }
    }

    #[test]
    fn schedules_are_non_decreasing_and_sized() {
        for arrival in [
            Arrival::Steady { rps: 1000.0 },
            Arrival::Bursty {
                burst: 7,
                within: Duration::from_millis(1),
                gap: Duration::from_millis(10),
            },
            Arrival::SlowClient {
                rps: 1000.0,
                stall_every: 5,
                stall: Duration::from_millis(25),
            },
        ] {
            let s = schedule(&arrival, 64, 7);
            assert_eq!(s.len(), 64);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "{arrival:?} goes backwards");
        }
    }

    #[test]
    fn steady_mean_gap_tracks_the_rate() {
        let s = schedule(&Arrival::Steady { rps: 1000.0 }, 4000, 11);
        let mean = s.last().unwrap().as_secs_f64() / s.len() as f64;
        // 1/rps = 1ms; the sample mean of 4000 exponentials is close.
        assert!((0.0008..0.0012).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn slow_client_inserts_stalls() {
        let stall = Duration::from_millis(100);
        let s = schedule(
            &Arrival::SlowClient {
                rps: 10_000.0,
                stall_every: 10,
                stall,
            },
            30,
            3,
        );
        // The gap across each stall boundary dwarfs the in-run gaps.
        assert!(s[10] - s[9] >= stall);
        assert!(s[20] - s[19] >= stall);
        assert!(s[9] - s[8] < stall);
    }

    #[test]
    fn misbehavior_mixes_are_seeded_and_cover_every_variant() {
        let a = misbehaviors(64, 9, 5);
        assert_eq!(a, misbehaviors(64, 9, 5), "not reproducible");
        assert_ne!(a, misbehaviors(64, 10, 5), "seed ignored");
        for want in [
            Misbehavior::HoldOpen,
            Misbehavior::MidFrameDisconnect,
            Misbehavior::CorruptCrc,
            Misbehavior::PastDeadlineFlood { requests: 5 },
        ] {
            assert!(a.contains(&want), "64 draws never produced {want:?}");
        }
    }

    #[test]
    fn plan_derived_misbehaviors_are_deterministic_and_stop_at_the_crash() {
        let rates = FaultRates {
            crash: 0.2,
            straggle: 0.3,
            transfer_drop: 0.3,
            transfer_corrupt: 0.3,
            ..FaultRates::default()
        };
        let plan = FaultPlan::random(11, 2, 40, 1, &rates);
        let a = misbehaviors_from_plan(&plan, 0, 40, 8);
        assert_eq!(a, misbehaviors_from_plan(&plan, 0, 40, 8));
        assert!(!a.is_empty(), "a 40-iteration plan at these rates misbehaves");
        // Nothing follows a flood: the crashed client is gone.
        if let Some(pos) = a
            .iter()
            .position(|m| matches!(m, Misbehavior::PastDeadlineFlood { .. }))
        {
            assert_eq!(pos, a.len() - 1);
        }
    }
}
