//! Deterministic open-loop load generation.
//!
//! An open-loop generator decides arrival times *before* observing any
//! response — the schedule is a pure function of `(pattern, n, seed)`,
//! so a benchmark run is exactly reproducible. The bench harness walks
//! the schedule with real sleeps; tests can consume it as data.

use std::time::Duration;

/// An arrival pattern for the open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals at a steady mean rate (exponential
    /// inter-arrival gaps).
    Steady {
        /// Mean requests per second.
        rps: f64,
    },
    /// Closely spaced bursts separated by idle gaps: each burst packs
    /// `burst` arrivals uniformly into `within`, then the line goes
    /// silent for `gap`.
    Bursty {
        /// Arrivals per burst.
        burst: usize,
        /// Window a burst's arrivals are spread across.
        within: Duration,
        /// Idle time between bursts.
        gap: Duration,
    },
    /// Steady Poisson arrivals, but every `stall_every`-th request is
    /// preceded by an extra `stall` of silence — the client that stops
    /// sending (and draining) for a while, then dumps its backlog.
    SlowClient {
        /// Mean requests per second while active.
        rps: f64,
        /// A stall is inserted before every `stall_every`-th arrival
        /// (clamped to at least 1).
        stall_every: usize,
        /// Length of each stall.
        stall: Duration,
    },
}

/// splitmix64: tiny, seedable, and good enough for arrival jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in the open interval (0, 1).
fn unit(state: &mut u64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    u.max(f64::EPSILON)
}

/// An exponential inter-arrival gap for mean rate `rps` (clamped to a
/// sane minimum rate so a zero/negative rps cannot hang the schedule).
fn exp_gap(state: &mut u64, rps: f64) -> Duration {
    let rate = rps.max(1e-3);
    Duration::from_secs_f64(-unit(state).ln() / rate)
}

/// Builds the arrival schedule: `n` non-decreasing offsets from the
/// start of the run. Fully determined by `(arrival, n, seed)`.
pub fn schedule(arrival: &Arrival, n: usize, seed: u64) -> Vec<Duration> {
    let mut state = seed ^ 0xa076_1d64_78bd_642f;
    let mut out = Vec::with_capacity(n);
    match *arrival {
        Arrival::Steady { rps } => {
            let mut t = Duration::ZERO;
            for _ in 0..n {
                t += exp_gap(&mut state, rps);
                out.push(t);
            }
        }
        Arrival::Bursty { burst, within, gap } => {
            let burst = burst.max(1);
            let mut start = Duration::ZERO;
            while out.len() < n {
                let take = burst.min(n - out.len());
                let mut offsets: Vec<Duration> = (0..take)
                    .map(|_| within.mul_f64(unit(&mut state)))
                    .collect();
                offsets.sort();
                out.extend(offsets.into_iter().map(|o| start + o));
                start += within + gap;
            }
        }
        Arrival::SlowClient {
            rps,
            stall_every,
            stall,
        } => {
            let stall_every = stall_every.max(1);
            let mut t = Duration::ZERO;
            for i in 0..n {
                if i > 0 && i % stall_every == 0 {
                    t += stall;
                }
                t += exp_gap(&mut state, rps);
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        for arrival in [
            Arrival::Steady { rps: 500.0 },
            Arrival::Bursty {
                burst: 8,
                within: Duration::from_millis(2),
                gap: Duration::from_millis(20),
            },
            Arrival::SlowClient {
                rps: 500.0,
                stall_every: 10,
                stall: Duration::from_millis(50),
            },
        ] {
            let a = schedule(&arrival, 100, 42);
            let b = schedule(&arrival, 100, 42);
            let c = schedule(&arrival, 100, 43);
            assert_eq!(a, b, "{arrival:?} not reproducible");
            assert_ne!(a, c, "{arrival:?} ignores the seed");
        }
    }

    #[test]
    fn schedules_are_non_decreasing_and_sized() {
        for arrival in [
            Arrival::Steady { rps: 1000.0 },
            Arrival::Bursty {
                burst: 7,
                within: Duration::from_millis(1),
                gap: Duration::from_millis(10),
            },
            Arrival::SlowClient {
                rps: 1000.0,
                stall_every: 5,
                stall: Duration::from_millis(25),
            },
        ] {
            let s = schedule(&arrival, 64, 7);
            assert_eq!(s.len(), 64);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "{arrival:?} goes backwards");
        }
    }

    #[test]
    fn steady_mean_gap_tracks_the_rate() {
        let s = schedule(&Arrival::Steady { rps: 1000.0 }, 4000, 11);
        let mean = s.last().unwrap().as_secs_f64() / s.len() as f64;
        // 1/rps = 1ms; the sample mean of 4000 exponentials is close.
        assert!((0.0008..0.0012).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn slow_client_inserts_stalls() {
        let stall = Duration::from_millis(100);
        let s = schedule(
            &Arrival::SlowClient {
                rps: 10_000.0,
                stall_every: 10,
                stall,
            },
            30,
            3,
        );
        // The gap across each stall boundary dwarfs the in-run gaps.
        assert!(s[10] - s[9] >= stall);
        assert!(s[20] - s[19] >= stall);
        assert!(s[9] - s[8] < stall);
    }
}
