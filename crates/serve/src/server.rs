//! The inference server: bounded admission, a dispatcher thread running
//! the size-or-deadline [`Batcher`], a shared job queue, and a
//! supervised pool of replica threads executing micro-batches.
//!
//! # Threading model
//!
//! No async runtime: one *dispatcher* thread owns the batcher and the
//! replica supervisor state, `replicas` worker threads each own a
//! [`BatchEngine`] (warm executors + persistent worker pool) and pull
//! jobs from a shared queue. Clients talk to the dispatcher over an
//! mpsc channel and receive responses through per-request [`Ticket`]
//! channels, so a slow client only ever delays itself.
//!
//! # Backpressure
//!
//! Admission is a compare-and-swap against `queue_cap`: the number of
//! admitted-but-unfinished requests is strictly bounded, and the
//! overflowing submit gets [`ServeError::Overloaded`] immediately —
//! the queue never grows without bound and the server never panics at
//! a client.
//!
//! # Fault tolerance
//!
//! A replica that panics mid-batch (injected via [`ReplicaHooks`] or a
//! genuine kernel panic) reports its in-flight job to the dispatcher
//! and dies. The dispatcher spawns a replacement replica under a fresh
//! id (ids are never reused), bumps the restart counter, and requeues
//! the job at the front — up to `retry_limit` retries, after which the
//! job's tickets fail with [`ServeError::ReplicaFailed`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use latte_runtime::ExecConfig;

use crate::batcher::{shed_expired, Batcher, FlushReason};
use crate::cache::PlanCache;
use crate::error::ServeError;
use crate::model::Model;
use crate::replica::{BatchAction, BatchEngine, NoHooks, ReplicaHooks};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batch size cap: a batch flushes the moment it holds this
    /// many requests.
    pub max_batch: usize,
    /// Coalescing deadline: a batch flushes this long after its first
    /// request arrived even if not full.
    pub max_delay: Duration,
    /// Admission cap on admitted-but-unfinished requests; submits beyond
    /// it get [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Replica threads executing micro-batches.
    pub replicas: usize,
    /// Worker-pool width inside each replica (intra-batch parallelism).
    pub threads: usize,
    /// Crash retries per micro-batch before its requests fail with
    /// [`ServeError::ReplicaFailed`].
    pub retry_limit: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_cap: 64,
            replicas: 1,
            threads: 1,
            retry_limit: 1,
        }
    }
}

/// A single-sample inference request: one `(ensemble, per_item values)`
/// entry per input the model declares.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The request's inputs, matched against
    /// [`Model::inputs`](crate::Model::inputs).
    pub inputs: Vec<(String, Vec<f32>)>,
}

/// How a response was produced — the observability half of every reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyMeta {
    /// The request's submission sequence number.
    pub seq: u64,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Why that batch flushed.
    pub flush: FlushReason,
    /// Id of the replica that executed it.
    pub replica: usize,
    /// Times this request was re-run after a replica crash.
    pub retried: u32,
    /// Whether the batch's execution plan came from the cache (`false`
    /// exactly when this batch size was lowered for the first time).
    pub cache_hit: bool,
    /// Submit-to-completion latency.
    pub latency: Duration,
}

/// A completed inference: per-output values plus execution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// One `(buffer, values)` row per output the model declares.
    pub outputs: Vec<(String, Vec<f32>)>,
    /// How the response was produced.
    pub meta: ReplyMeta,
}

/// The client's handle to an in-flight request.
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// The request's submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the response (or failure) arrives.
    ///
    /// # Errors
    ///
    /// The serving-side failure, or [`ServeError::Closed`] when the
    /// server shut down with the request unanswered.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Blocks up to `timeout` for the response.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], plus [`ServeError::WaitTimeout`] when the
    /// deadline expires first.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }
}

/// A monotonic snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests admitted past admission control.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Submits refused with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests failed (execution errors or exhausted crash retries).
    pub failed: u64,
    /// Micro-batches executed to completion.
    pub batches: u64,
    /// Batches flushed for reaching `max_batch`.
    pub flush_size: u64,
    /// Batches flushed by the coalescing deadline.
    pub flush_deadline: u64,
    /// Batches flushed by an explicit drain.
    pub flush_drain: u64,
    /// Micro-batch re-dispatches after replica crashes.
    pub retries: u64,
    /// Replica deaths observed (injected or genuine panics).
    pub crashes: u64,
    /// Replacement replicas spawned by the supervisor.
    pub restarts: u64,
    /// High-water mark of admitted-but-unfinished requests.
    pub max_depth: usize,
    /// Requests refused at admission because their client deadline had
    /// already passed — they never occupied a queue slot.
    pub deadline_rejected: u64,
    /// Admitted requests shed at batch-flush time because their client
    /// deadline passed while they coalesced — counted, answered with
    /// [`ServeError::DeadlineExceeded`], and never executed.
    pub deadline_shed: u64,
    /// Replies that found their receiver gone (an abandoned
    /// [`Ticket`], a disconnected network client) or refusing to drain
    /// (a full per-connection response queue) and were dropped instead
    /// of leaked.
    pub replies_dropped: u64,
    /// Network connections accepted by the front-end.
    pub conn_accepted: u64,
    /// Network connections refused at the max-connection cap or during
    /// handshake (version mismatch, bad first frame).
    pub conn_rejected: u64,
    /// Network connections closed by a read/write timeout — the
    /// slow-loris defense.
    pub conn_timeouts: u64,
    /// Frames that arrived with a bad CRC or an undecodable body.
    pub frames_corrupt: u64,
}

#[derive(Default)]
pub(crate) struct ServeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    flush_size: AtomicU64,
    flush_deadline: AtomicU64,
    flush_drain: AtomicU64,
    retries: AtomicU64,
    crashes: AtomicU64,
    restarts: AtomicU64,
    max_depth: AtomicUsize,
    deadline_rejected: AtomicU64,
    deadline_shed: AtomicU64,
    pub(crate) replies_dropped: AtomicU64,
    pub(crate) conn_accepted: AtomicU64,
    pub(crate) conn_rejected: AtomicU64,
    pub(crate) conn_timeouts: AtomicU64,
    pub(crate) frames_corrupt: AtomicU64,
}

impl ServeStats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flush_size: self.flush_size.load(Ordering::Relaxed),
            flush_deadline: self.flush_deadline.load(Ordering::Relaxed),
            flush_drain: self.flush_drain.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            deadline_rejected: self.deadline_rejected.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
            conn_accepted: self.conn_accepted.load(Ordering::Relaxed),
            conn_rejected: self.conn_rejected.load(Ordering::Relaxed),
            conn_timeouts: self.conn_timeouts.load(Ordering::Relaxed),
            frames_corrupt: self.frames_corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Where an admitted request's reply goes. In-process callers get a
/// dedicated unbounded channel behind a [`Ticket`]; network connections
/// share one *bounded* per-connection channel with replies tagged by
/// the client's request id (the response-backpressure seam).
pub(crate) enum ReplySink {
    /// A [`Ticket`]'s private channel.
    Ticket(Sender<Result<Response, ServeError>>),
    /// A tagged, bounded per-connection reply queue.
    Routed {
        /// The client-chosen request id echoed on the reply frame.
        id: u64,
        /// The connection's bounded reply queue.
        tx: mpsc::SyncSender<(u64, Result<Response, ServeError>)>,
    },
}

impl ReplySink {
    /// Delivers a reply, detecting dead or non-draining receivers: an
    /// abandoned [`Ticket`] (dropped or timed out) and a disconnected
    /// client both surface as a send error, a network client that
    /// stopped draining its bounded reply queue as a full queue. In
    /// every such case the reply is dropped — not leaked into a live
    /// slot — and counted in
    /// [`StatsSnapshot::replies_dropped`].
    fn send(&self, stats: &ServeStats, reply: Result<Response, ServeError>) {
        let delivered = match self {
            ReplySink::Ticket(tx) => tx.send(reply).is_ok(),
            ReplySink::Routed { id, tx } => tx.try_send((*id, reply)).is_ok(),
        };
        if !delivered {
            stats.replies_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One admitted request riding through the batcher and a job.
struct Pending {
    seq: u64,
    inputs: Vec<(String, Vec<f32>)>,
    sink: ReplySink,
    submitted: Instant,
    /// The client-supplied completion deadline, if any: checked at
    /// admission and again at every batch flush.
    deadline: Option<Instant>,
    retried: u32,
}

/// A flushed micro-batch on its way to (or through) a replica.
struct Job {
    seq: u64,
    items: Vec<Pending>,
    flush: FlushReason,
    crashes: u32,
}

enum QueueItem {
    Job(Job),
    Stop,
}

/// The replica-facing job queue: Mutex + Condvar, front-requeue for
/// retries so a crashed batch jumps the line.
struct JobQueue {
    q: Mutex<VecDeque<QueueItem>>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push_back(&self, item: QueueItem) {
        self.q.lock().unwrap().push_back(item);
        self.cv.notify_one();
    }

    fn push_front(&self, item: QueueItem) {
        self.q.lock().unwrap().push_front(item);
        self.cv.notify_one();
    }

    fn pop(&self) -> QueueItem {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(item) = q.pop_front() {
                return item;
            }
            q = self.cv.wait(q).unwrap();
        }
    }
}

enum Msg {
    Submit(Pending),
    Flush,
    Crashed {
        job: Job,
        detail: String,
    },
    Shutdown(Sender<()>),
}

/// State shared by the server handle, the dispatcher, and every replica.
struct Shared {
    model: Arc<Model>,
    cache: Arc<PlanCache>,
    hooks: Arc<dyn ReplicaHooks>,
    stats: Arc<ServeStats>,
    depth: Arc<AtomicUsize>,
    queue: Arc<JobQueue>,
    ctl: Sender<Msg>,
    threads: usize,
}

/// The running server. [`Server::shutdown`] (or dropping it) drains
/// pending work and joins every thread.
pub struct Server {
    model: Arc<Model>,
    cache: Arc<PlanCache>,
    cfg: ServeConfig,
    ctl: Sender<Msg>,
    depth: Arc<AtomicUsize>,
    next_seq: AtomicU64,
    stats: Arc<ServeStats>,
    draining: AtomicBool,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.model.name())
            .field("cfg", &self.cfg)
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts a server for `model` with a private plan cache and no
    /// fault hooks.
    pub fn start(model: Model, cfg: ServeConfig) -> Server {
        let cache = Arc::new(PlanCache::new(ExecConfig {
            threads: cfg.threads,
            arena: false,
            gemm_blocking: None,
        }));
        Self::start_with(Arc::new(model), cfg, cache, Arc::new(NoHooks))
    }

    /// Starts a server with an explicit (possibly shared) plan cache and
    /// replica hooks. Sharing one cache across servers exercises the
    /// hit path end to end: the second server instantiates executors
    /// from already-lowered plans without compiling anything.
    pub fn start_with(
        model: Arc<Model>,
        cfg: ServeConfig,
        cache: Arc<PlanCache>,
        hooks: Arc<dyn ReplicaHooks>,
    ) -> Server {
        let (ctl, ctl_rx) = mpsc::channel();
        let stats = Arc::new(ServeStats::default());
        let depth = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(Shared {
            model: Arc::clone(&model),
            cache: Arc::clone(&cache),
            hooks,
            stats: Arc::clone(&stats),
            depth: Arc::clone(&depth),
            queue: Arc::new(JobQueue::new()),
            ctl: ctl.clone(),
            threads: cfg.threads.max(1),
        });
        let dispatcher = std::thread::Builder::new()
            .name("latte-serve-dispatcher".into())
            .spawn(move || dispatcher_loop(ctl_rx, shared, cfg))
            .expect("spawn dispatcher");
        Server {
            model,
            cache,
            cfg,
            ctl,
            depth,
            next_seq: AtomicU64::new(0),
            stats,
            draining: AtomicBool::new(false),
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Submits one request, returning a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for signature mismatches,
    /// [`ServeError::Overloaded`] when admission control is at capacity,
    /// [`ServeError::Closed`] after shutdown.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(req, None)
    }

    /// Submits one request carrying a client completion deadline. A
    /// deadline already in the past is rejected with
    /// [`ServeError::DeadlineExceeded`] *before* the request can occupy
    /// a queue slot; a deadline that expires while the request
    /// coalesces sheds it at flush time — either way the model never
    /// runs for an answer nobody can use.
    ///
    /// # Errors
    ///
    /// As [`Server::submit`], plus [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        req: Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let (tx, rx) = mpsc::channel();
        let seq = self.submit_sink(req, deadline, ReplySink::Ticket(tx))?;
        Ok(Ticket { seq, rx })
    }

    /// The shared admission path: deadline check, draining check,
    /// bounded-depth CAS, then hand-off to the dispatcher. The network
    /// front-end calls this directly with a [`ReplySink::Routed`] sink.
    pub(crate) fn submit_sink(
        &self,
        req: Request,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<u64, ServeError> {
        if let Some(d) = deadline {
            let now = Instant::now();
            if d <= now {
                self.stats.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded { late_by: now - d });
            }
        }
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        self.model.validate(&req.inputs)?;
        let cap = self.cfg.queue_cap;
        let mut d = self.depth.load(Ordering::Relaxed);
        loop {
            if d >= cap {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth: d,
                    capacity: cap,
                });
            }
            match self
                .depth
                .compare_exchange(d, d + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => d = current,
            }
        }
        self.stats.max_depth.fetch_max(d + 1, Ordering::Relaxed);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let pending = Pending {
            seq,
            inputs: req.inputs,
            sink,
            submitted: Instant::now(),
            deadline,
            retried: 0,
        };
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if self.ctl.send(Msg::Submit(pending)).is_err() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Closed);
        }
        Ok(seq)
    }

    /// Forces the currently coalescing partial batch out immediately
    /// ([`FlushReason::Drain`]). The deterministic lever for tests: no
    /// need to wait for a deadline.
    pub fn flush(&self) {
        let _ = self.ctl.send(Msg::Flush);
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The shared counter cell (the network front-end feeds its
    /// connection counters into the same snapshot).
    pub(crate) fn stats_cell(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Admitted-but-unfinished requests right now (the quantity
    /// admission control bounds by `queue_cap`).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Whether the server is draining for shutdown: admission is
    /// stopped ([`ServeError::Draining`]) but already admitted requests
    /// are still being answered.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Gracefully drains and stops the server, deterministically:
    ///
    /// 1. admission flips to [`ServeError::Draining`] (new submits are
    ///    refused, nothing new enters the queue);
    /// 2. the batcher's partial batch is force-flushed (shedding any
    ///    expired requests);
    /// 3. every in-flight and queued micro-batch runs to completion and
    ///    its replies are delivered;
    /// 4. replica threads and the dispatcher are joined.
    ///
    /// Idempotent: later calls (and the eventual drop) return
    /// immediately. A replica wedged by a blocking test hook is
    /// abandoned after 30 s rather than hanging the caller forever.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::Release);
        let handle = self.dispatcher.lock().unwrap().take();
        let Some(handle) = handle else { return };
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.ctl.send(Msg::Shutdown(ack_tx)).is_ok()
            && ack_rx.recv_timeout(Duration::from_secs(30)).is_err()
        {
            // A wedged replica stalls the drain; detach rather than
            // hang the caller forever.
            return;
        }
        let _ = handle.join();
    }

    /// The plan cache this server lowers through.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The served model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatcher_loop(rx: Receiver<Msg>, shared: Arc<Shared>, cfg: ServeConfig) {
    let mut batcher: Batcher<Pending> = Batcher::new(cfg.max_batch, cfg.max_delay);
    let mut next_job_seq: u64 = 0;
    let mut next_replica_id = cfg.replicas.max(1);
    let mut replicas: Vec<JoinHandle<()>> = (0..cfg.replicas.max(1))
        .map(|id| spawn_replica(id, Arc::clone(&shared)))
        .collect();

    let dispatch = |items: Vec<Pending>, flush: FlushReason, next_job_seq: &mut u64| {
        // Flush-time deadline propagation: requests whose client
        // deadline passed while coalescing are shed here — counted,
        // answered, never executed. An all-expired batch dispatches
        // nothing at all.
        let now = Instant::now();
        let (live, expired) = shed_expired(items, now, |p| p.deadline);
        for p in expired {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            shared.stats.deadline_shed.fetch_add(1, Ordering::Relaxed);
            let late_by = now - p.deadline.expect("shed items carry a deadline");
            p.sink
                .send(&shared.stats, Err(ServeError::DeadlineExceeded { late_by }));
        }
        if live.is_empty() {
            return;
        }
        let job = Job {
            seq: *next_job_seq,
            items: live,
            flush,
            crashes: 0,
        };
        *next_job_seq += 1;
        shared.queue.push_back(QueueItem::Job(job));
    };

    loop {
        // Deadline-aware receive: sleep at most until the pending
        // batch's flush deadline.
        let msg = match batcher.deadline() {
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    if let Some((items, reason)) = batcher.poll(now) {
                        dispatch(items, reason, &mut next_job_seq);
                    }
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            Msg::Submit(p) => {
                if let Some((items, reason)) = batcher.push(p, Instant::now()) {
                    dispatch(items, reason, &mut next_job_seq);
                }
            }
            Msg::Flush => {
                if let Some((items, reason)) = batcher.drain() {
                    dispatch(items, reason, &mut next_job_seq);
                }
            }
            Msg::Crashed { mut job, detail } => {
                job.crashes += 1;
                let id = next_replica_id;
                next_replica_id += 1;
                replicas.push(spawn_replica(id, Arc::clone(&shared)));
                shared.stats.restarts.fetch_add(1, Ordering::Relaxed);
                if job.crashes > cfg.retry_limit {
                    let retries = job.crashes - 1;
                    for p in job.items {
                        shared.depth.fetch_sub(1, Ordering::AcqRel);
                        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                        p.sink.send(
                            &shared.stats,
                            Err(ServeError::ReplicaFailed {
                                detail: detail.clone(),
                                retries,
                            }),
                        );
                    }
                } else {
                    shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                    for p in &mut job.items {
                        p.retried += 1;
                    }
                    // The retried job gets a fresh dispatch seq and the
                    // front of the queue: it has already waited once.
                    job.seq = next_job_seq;
                    next_job_seq += 1;
                    shared.queue.push_front(QueueItem::Job(job));
                }
            }
            Msg::Shutdown(ack) => {
                if let Some((items, reason)) = batcher.drain() {
                    dispatch(items, reason, &mut next_job_seq);
                }
                for _ in 0..replicas.len() {
                    shared.queue.push_back(QueueItem::Stop);
                }
                for h in replicas.drain(..) {
                    let _ = h.join();
                }
                let _ = ack.send(());
                break;
            }
        }
    }
}

fn spawn_replica(id: usize, shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("latte-serve-replica-{id}"))
        .spawn(move || replica_loop(id, shared))
        .expect("spawn replica")
}

fn replica_loop(id: usize, shared: Arc<Shared>) {
    let mut engine = BatchEngine::new(
        Arc::clone(&shared.model),
        Arc::clone(&shared.cache),
        shared.threads,
    );
    loop {
        let job = match shared.queue.pop() {
            QueueItem::Stop => return,
            QueueItem::Job(job) => job,
        };
        if shared.hooks.on_batch(id, job.seq, job.items.len()) == BatchAction::Crash {
            shared.stats.crashes.fetch_add(1, Ordering::Relaxed);
            let _ = shared.ctl.send(Msg::Crashed {
                job,
                detail: format!("replica {id} killed mid-batch (injected)"),
            });
            return;
        }
        let inputs: Vec<Vec<(String, Vec<f32>)>> =
            job.items.iter().map(|p| p.inputs.clone()).collect();
        match catch_unwind(AssertUnwindSafe(|| engine.run(&inputs))) {
            Ok(Ok((outputs, cache_hit))) => {
                let n = job.items.len();
                shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                let flush_stat = match job.flush {
                    FlushReason::Size => &shared.stats.flush_size,
                    FlushReason::Deadline => &shared.stats.flush_deadline,
                    FlushReason::Drain => &shared.stats.flush_drain,
                };
                flush_stat.fetch_add(1, Ordering::Relaxed);
                let done = Instant::now();
                for (p, rows) in job.items.into_iter().zip(outputs) {
                    let meta = ReplyMeta {
                        seq: p.seq,
                        batch_size: n,
                        flush: job.flush,
                        replica: id,
                        retried: p.retried,
                        cache_hit,
                        latency: done.duration_since(p.submitted),
                    };
                    // Counters move before the reply: a client woken by
                    // the send must observe its own completion in stats.
                    shared.depth.fetch_sub(1, Ordering::AcqRel);
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    p.sink.send(
                        &shared.stats,
                        Ok(Response {
                            outputs: rows,
                            meta,
                        }),
                    );
                }
            }
            Ok(Err(e)) => {
                // Deterministic failure (compile/buffer error): retrying
                // on another replica cannot help, fail the tickets.
                for p in job.items {
                    shared.depth.fetch_sub(1, Ordering::AcqRel);
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    p.sink.send(&shared.stats, Err(e.clone()));
                }
            }
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "replica panicked".into());
                shared.stats.crashes.fetch_add(1, Ordering::Relaxed);
                let _ = shared.ctl.send(Msg::Crashed { job, detail });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_reply() -> Result<Response, ServeError> {
        Err(ServeError::WaitTimeout)
    }

    #[test]
    fn an_abandoned_ticket_receiver_counts_a_dropped_reply() {
        let stats = ServeStats::default();
        let (tx, rx) = mpsc::channel();
        let sink = ReplySink::Ticket(tx);
        drop(rx);
        sink.send(&stats, err_reply());
        assert_eq!(stats.snapshot().replies_dropped, 1);
    }

    #[test]
    fn a_full_routed_queue_counts_a_dropped_reply_without_blocking() {
        // The per-connection backpressure seam: a client that stops
        // draining its bounded reply queue loses replies (counted),
        // and the replica thread never blocks on it.
        let stats = ServeStats::default();
        let (tx, _rx) = mpsc::sync_channel(1);
        let sink = ReplySink::Routed { id: 7, tx };
        sink.send(&stats, err_reply()); // fills the queue
        sink.send(&stats, err_reply()); // refused: queue full
        assert_eq!(stats.snapshot().replies_dropped, 1);
    }

    #[test]
    fn a_disconnected_routed_queue_counts_a_dropped_reply() {
        let stats = ServeStats::default();
        let (tx, rx) = mpsc::sync_channel::<(u64, Result<Response, ServeError>)>(4);
        let sink = ReplySink::Routed { id: 3, tx };
        drop(rx);
        sink.send(&stats, err_reply());
        assert_eq!(stats.snapshot().replies_dropped, 1);
    }
}

/// A gate hook for tests: blocks every batch until opened, so a test
/// can hold work in flight and observe backpressure deterministically.
#[derive(Debug, Default)]
pub struct GateHooks {
    state: Mutex<bool>,
    cv: Condvar,
}

impl GateHooks {
    /// A closed gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the gate, releasing every blocked and future batch.
    pub fn open(&self) {
        *self.state.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl ReplicaHooks for GateHooks {
    fn on_batch(&self, _replica: usize, _seq: u64, _size: usize) -> BatchAction {
        let mut open = self.state.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        BatchAction::Proceed
    }
}
