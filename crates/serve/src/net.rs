//! The fault-hardened network front-end: a framed-TCP protocol that
//! exposes [`Server::submit`](crate::Server::submit) to real sockets.
//!
//! # Wire format
//!
//! Every message travels as one frame using the runtime's shared wire
//! conventions ([`latte_runtime::frame`]): a little-endian `u32` length
//! prefix, then the message body sealed with a CRC32 trailer. Bodies
//! begin with a one-byte message kind; integers are little-endian,
//! strings are `u16` length + UTF-8 bytes, tensors are `u32` count +
//! `f32` values. A connection opens with a versioned handshake
//! ([`ClientMsg::Hello`] / [`ServerMsg::HelloOk`]) that also tells the
//! client the served model's input/output signature.
//!
//! # Deadline propagation
//!
//! A request carries its client's remaining latency budget in
//! microseconds (`0` = none). The front-end converts it to an absolute
//! deadline *at receipt* and hands it to admission: a request already
//! past its deadline is refused before it can occupy a queue slot, and
//! one that expires while coalescing is shed at batch flush — counted,
//! answered with a structured error, never executed.
//!
//! # Hardening
//!
//! Misbehaving clients are the expected case, not the exception:
//!
//! * **Slow loris** — per-connection read/write timeouts and a
//!   max-connection cap. A connection that goes quiet with nothing in
//!   flight (including mid-handshake) is closed and counted in
//!   [`StatsSnapshot::conn_timeouts`]; one waiting on in-flight replies
//!   is left alone.
//! * **Corruption** — a frame failing its CRC (or an undecodable body)
//!   draws a structured [`WireError::BadFrame`] reply, a counter bump
//!   ([`StatsSnapshot::frames_corrupt`]), and a close — never a panic.
//! * **Disconnection** — replies to a vanished client are dropped and
//!   counted ([`StatsSnapshot::replies_dropped`]), not leaked; a
//!   mid-frame disconnect is detected as a truncated stream.
//! * **Backpressure** — each connection's replies flow through a
//!   *bounded* queue drained by a dedicated writer thread; a client
//!   that stops reading overflows only its own queue (dropped +
//!   counted), never the server's memory.
//!
//! # Shutdown
//!
//! [`NetFrontend::close`] (after
//! [`Server::shutdown`](crate::Server::shutdown) has drained admitted
//! work) stops the acceptor, shuts every connection's read half so
//! readers wind down, lets writers flush their remaining replies, and
//! joins every thread — no leaked sockets or threads.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, ErrorKind};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use latte_runtime::frame::{read_frame, seal, verify, write_frame};

use crate::batcher::FlushReason;
use crate::error::ServeError;
use crate::server::{ReplySink, Request, Response, ServeStats, Server, StatsSnapshot};

/// Version of the serving wire protocol; the handshake refuses any
/// other.
pub const NET_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's sealed body (4 MiB): a length prefix
/// claiming more is refused before any allocation.
pub const MAX_NET_FRAME: usize = 1 << 22;

/// The request id used on connection-level error frames that answer no
/// particular request (handshake refusals, corrupt frames).
pub const CONN_ERR_ID: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Error model
// ---------------------------------------------------------------------------

/// A serving failure as named on the wire — the stable numeric
/// vocabulary both sides of the protocol agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// [`ServeError::Overloaded`].
    Overloaded,
    /// [`ServeError::Closed`].
    Closed,
    /// [`ServeError::BadRequest`].
    BadRequest,
    /// [`ServeError::Compile`].
    Compile,
    /// [`ServeError::Execution`].
    Execution,
    /// [`ServeError::ReplicaFailed`].
    ReplicaFailed,
    /// [`ServeError::WaitTimeout`].
    WaitTimeout,
    /// [`ServeError::DeadlineExceeded`].
    DeadlineExceeded,
    /// [`ServeError::Draining`].
    Draining,
    /// The frame failed its CRC or would not decode.
    BadFrame,
    /// The handshake offered an unsupported protocol version.
    BadVersion,
    /// The connection was refused at the max-connection cap.
    ConnLimit,
    /// A protocol-state violation (e.g. a second `Hello`).
    Protocol,
    /// A code this build does not know (forward compatibility).
    Unknown,
}

impl WireError {
    fn code(self) -> u16 {
        match self {
            WireError::Overloaded => 1,
            WireError::Closed => 2,
            WireError::BadRequest => 3,
            WireError::Compile => 4,
            WireError::Execution => 5,
            WireError::ReplicaFailed => 6,
            WireError::WaitTimeout => 7,
            WireError::DeadlineExceeded => 8,
            WireError::Draining => 9,
            WireError::BadFrame => 100,
            WireError::BadVersion => 101,
            WireError::ConnLimit => 102,
            WireError::Protocol => 103,
            WireError::Unknown => u16::MAX,
        }
    }

    fn from_code(code: u16) -> WireError {
        match code {
            1 => WireError::Overloaded,
            2 => WireError::Closed,
            3 => WireError::BadRequest,
            4 => WireError::Compile,
            5 => WireError::Execution,
            6 => WireError::ReplicaFailed,
            7 => WireError::WaitTimeout,
            8 => WireError::DeadlineExceeded,
            9 => WireError::Draining,
            100 => WireError::BadFrame,
            101 => WireError::BadVersion,
            102 => WireError::ConnLimit,
            103 => WireError::Protocol,
            _ => WireError::Unknown,
        }
    }
}

impl From<&ServeError> for WireError {
    fn from(e: &ServeError) -> WireError {
        match e {
            ServeError::Overloaded { .. } => WireError::Overloaded,
            ServeError::Closed => WireError::Closed,
            ServeError::BadRequest { .. } => WireError::BadRequest,
            ServeError::Compile { .. } => WireError::Compile,
            ServeError::Execution { .. } => WireError::Execution,
            ServeError::ReplicaFailed { .. } => WireError::ReplicaFailed,
            ServeError::WaitTimeout => WireError::WaitTimeout,
            ServeError::DeadlineExceeded { .. } => WireError::DeadlineExceeded,
            ServeError::Draining => WireError::Draining,
        }
    }
}

/// A client-side failure talking to a front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A socket-level failure.
    Io {
        /// The I/O error's kind.
        kind: ErrorKind,
        /// The I/O error's message.
        detail: String,
    },
    /// A frame arrived but failed its CRC.
    Corrupt,
    /// The peer violated the protocol (unexpected kind, bad field).
    Protocol(String),
    /// The server answered with a structured error frame.
    Remote {
        /// The wire error code.
        code: WireError,
        /// The server's human-readable diagnostic.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            NetError::Corrupt => write!(f, "frame failed its CRC"),
            NetError::Protocol(d) => write!(f, "protocol violation: {d}"),
            NetError::Remote { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

const K_HELLO: u8 = 1;
const K_REQUEST: u8 = 2;
const K_HEALTH: u8 = 3;
const K_BYE: u8 = 4;
const K_HELLO_OK: u8 = 101;
const K_REPLY: u8 = 102;
const K_ERROR: u8 = 103;
const K_HEALTH_REPLY: u8 = 104;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// The handshake opener; must be the connection's first frame.
    Hello {
        /// The client's protocol version
        /// ([`NET_PROTOCOL_VERSION`]).
        version: u16,
    },
    /// One inference request.
    Request {
        /// A client-chosen id echoed on the reply.
        id: u64,
        /// The client's remaining latency budget in microseconds; `0`
        /// means no deadline.
        budget_us: u64,
        /// The request's inputs, matched against the model signature.
        inputs: Vec<(String, Vec<f32>)>,
    },
    /// A health/readiness probe.
    Health,
    /// A polite close.
    Bye,
}

/// The handshake reply: protocol version plus the served model's
/// request signature, so a client needs no out-of-band schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The server's protocol version.
    pub version: u16,
    /// The served model's name.
    pub model: String,
    /// The model's plan-cache fingerprint.
    pub fingerprint: u64,
    /// Per-item `(ensemble, len)` input signature.
    pub inputs: Vec<(String, usize)>,
    /// The buffers read back into every reply.
    pub outputs: Vec<String>,
}

/// A completed inference as decoded from the wire — the network twin of
/// [`Response`](crate::Response).
#[derive(Debug, Clone, PartialEq)]
pub struct NetReply {
    /// The client-chosen request id being answered.
    pub id: u64,
    /// The server-side submission sequence number.
    pub seq: u64,
    /// One `(buffer, values)` row per model output.
    pub outputs: Vec<(String, Vec<f32>)>,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Why that batch flushed.
    pub flush: FlushReason,
    /// Id of the replica that executed it.
    pub replica: usize,
    /// Times the request was re-run after replica crashes.
    pub retried: u32,
    /// Whether the batch's plan came from the cache.
    pub cache_hit: bool,
    /// Server-side submit-to-completion latency.
    pub latency: Duration,
}

/// A health-probe reply: readiness plus the full counter snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Whether the server is draining for shutdown (not ready).
    pub draining: bool,
    /// Admitted-but-unfinished requests right now.
    pub depth: usize,
    /// The admission capacity.
    pub capacity: usize,
    /// The server's counters.
    pub stats: StatsSnapshot,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The handshake reply.
    HelloOk(ServerHello),
    /// A completed inference.
    Reply(NetReply),
    /// A structured failure: for request id `id`, or the whole
    /// connection when `id` is [`CONN_ERR_ID`].
    Error {
        /// The request id being answered ([`CONN_ERR_ID`] for
        /// connection-level errors).
        id: u64,
        /// The stable error code.
        code: WireError,
        /// A human-readable diagnostic.
        detail: String,
    },
    /// A health-probe reply.
    Health(HealthReport),
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    put_u16(buf, bytes.len().min(u16::MAX as usize) as u16);
    buf.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn put_values(buf: &mut Vec<u8>, values: &[f32]) {
    put_u32(buf, values.len() as u32);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// A bounds-checked little-endian reader over a decoded body.
struct Dec<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Dec<'a> {
        Dec { b, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.at + n > self.b.len() {
            return Err(NetError::Protocol(format!(
                "truncated body: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.b.len()
            )));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, NetError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| NetError::Protocol("non-UTF-8 string".into()))
    }

    fn values(&mut self) -> Result<Vec<f32>, NetError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or_else(|| {
            NetError::Protocol("tensor length overflows".into())
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(self) -> Result<(), NetError> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(NetError::Protocol(format!(
                "{} trailing bytes after message",
                self.b.len() - self.at
            )))
        }
    }
}

/// Encodes a client message body (unsealed).
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut b = Vec::new();
    match msg {
        ClientMsg::Hello { version } => {
            b.push(K_HELLO);
            put_u16(&mut b, *version);
        }
        ClientMsg::Request {
            id,
            budget_us,
            inputs,
        } => {
            b.push(K_REQUEST);
            put_u64(&mut b, *id);
            put_u64(&mut b, *budget_us);
            put_u16(&mut b, inputs.len() as u16);
            for (name, values) in inputs {
                put_str(&mut b, name);
                put_values(&mut b, values);
            }
        }
        ClientMsg::Health => b.push(K_HEALTH),
        ClientMsg::Bye => b.push(K_BYE),
    }
    b
}

/// Decodes a client message body (already CRC-verified).
///
/// # Errors
///
/// [`NetError::Protocol`] on an unknown kind or malformed fields.
pub fn decode_client(body: &[u8]) -> Result<ClientMsg, NetError> {
    let mut d = Dec::new(body);
    let msg = match d.u8()? {
        K_HELLO => ClientMsg::Hello { version: d.u16()? },
        K_REQUEST => {
            let id = d.u64()?;
            let budget_us = d.u64()?;
            let n = d.u16()? as usize;
            let mut inputs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str()?;
                let values = d.values()?;
                inputs.push((name, values));
            }
            ClientMsg::Request {
                id,
                budget_us,
                inputs,
            }
        }
        K_HEALTH => ClientMsg::Health,
        K_BYE => ClientMsg::Bye,
        k => return Err(NetError::Protocol(format!("unknown client kind {k}"))),
    };
    d.finish()?;
    Ok(msg)
}

fn flush_to_wire(f: FlushReason) -> u8 {
    match f {
        FlushReason::Size => 0,
        FlushReason::Deadline => 1,
        FlushReason::Drain => 2,
    }
}

fn flush_from_wire(v: u8) -> Result<FlushReason, NetError> {
    match v {
        0 => Ok(FlushReason::Size),
        1 => Ok(FlushReason::Deadline),
        2 => Ok(FlushReason::Drain),
        other => Err(NetError::Protocol(format!("unknown flush reason {other}"))),
    }
}

/// The [`StatsSnapshot`] fields in wire order; both codec directions
/// iterate this one list so they cannot drift apart.
fn stats_fields(s: &StatsSnapshot) -> [u64; 19] {
    [
        s.submitted,
        s.completed,
        s.rejected,
        s.failed,
        s.batches,
        s.flush_size,
        s.flush_deadline,
        s.flush_drain,
        s.retries,
        s.crashes,
        s.restarts,
        s.max_depth as u64,
        s.deadline_rejected,
        s.deadline_shed,
        s.replies_dropped,
        s.conn_accepted,
        s.conn_rejected,
        s.conn_timeouts,
        s.frames_corrupt,
    ]
}

fn stats_from_fields(f: [u64; 19]) -> StatsSnapshot {
    StatsSnapshot {
        submitted: f[0],
        completed: f[1],
        rejected: f[2],
        failed: f[3],
        batches: f[4],
        flush_size: f[5],
        flush_deadline: f[6],
        flush_drain: f[7],
        retries: f[8],
        crashes: f[9],
        restarts: f[10],
        max_depth: f[11] as usize,
        deadline_rejected: f[12],
        deadline_shed: f[13],
        replies_dropped: f[14],
        conn_accepted: f[15],
        conn_rejected: f[16],
        conn_timeouts: f[17],
        frames_corrupt: f[18],
    }
}

/// Encodes a server message body (unsealed).
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    let mut b = Vec::new();
    match msg {
        ServerMsg::HelloOk(h) => {
            b.push(K_HELLO_OK);
            put_u16(&mut b, h.version);
            put_str(&mut b, &h.model);
            put_u64(&mut b, h.fingerprint);
            put_u16(&mut b, h.inputs.len() as u16);
            for (name, len) in &h.inputs {
                put_str(&mut b, name);
                put_u32(&mut b, *len as u32);
            }
            put_u16(&mut b, h.outputs.len() as u16);
            for name in &h.outputs {
                put_str(&mut b, name);
            }
        }
        ServerMsg::Reply(r) => {
            b.push(K_REPLY);
            put_u64(&mut b, r.id);
            put_u64(&mut b, r.seq);
            put_u32(&mut b, r.batch_size as u32);
            b.push(flush_to_wire(r.flush));
            put_u32(&mut b, r.replica as u32);
            put_u32(&mut b, r.retried);
            b.push(r.cache_hit as u8);
            put_u64(&mut b, r.latency.as_micros() as u64);
            put_u16(&mut b, r.outputs.len() as u16);
            for (name, values) in &r.outputs {
                put_str(&mut b, name);
                put_values(&mut b, values);
            }
        }
        ServerMsg::Error { id, code, detail } => {
            b.push(K_ERROR);
            put_u64(&mut b, *id);
            put_u16(&mut b, code.code());
            put_str(&mut b, detail);
        }
        ServerMsg::Health(h) => {
            b.push(K_HEALTH_REPLY);
            b.push(h.draining as u8);
            put_u64(&mut b, h.depth as u64);
            put_u64(&mut b, h.capacity as u64);
            for field in stats_fields(&h.stats) {
                put_u64(&mut b, field);
            }
        }
    }
    b
}

/// Decodes a server message body (already CRC-verified).
///
/// # Errors
///
/// [`NetError::Protocol`] on an unknown kind or malformed fields.
pub fn decode_server(body: &[u8]) -> Result<ServerMsg, NetError> {
    let mut d = Dec::new(body);
    let msg = match d.u8()? {
        K_HELLO_OK => {
            let version = d.u16()?;
            let model = d.str()?;
            let fingerprint = d.u64()?;
            let n_in = d.u16()? as usize;
            let mut inputs = Vec::with_capacity(n_in);
            for _ in 0..n_in {
                let name = d.str()?;
                let len = d.u32()? as usize;
                inputs.push((name, len));
            }
            let n_out = d.u16()? as usize;
            let mut outputs = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                outputs.push(d.str()?);
            }
            ServerMsg::HelloOk(ServerHello {
                version,
                model,
                fingerprint,
                inputs,
                outputs,
            })
        }
        K_REPLY => {
            let id = d.u64()?;
            let seq = d.u64()?;
            let batch_size = d.u32()? as usize;
            let flush = flush_from_wire(d.u8()?)?;
            let replica = d.u32()? as usize;
            let retried = d.u32()?;
            let cache_hit = d.u8()? != 0;
            let latency = Duration::from_micros(d.u64()?);
            let n = d.u16()? as usize;
            let mut outputs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str()?;
                let values = d.values()?;
                outputs.push((name, values));
            }
            ServerMsg::Reply(NetReply {
                id,
                seq,
                outputs,
                batch_size,
                flush,
                replica,
                retried,
                cache_hit,
                latency,
            })
        }
        K_ERROR => ServerMsg::Error {
            id: d.u64()?,
            code: WireError::from_code(d.u16()?),
            detail: d.str()?,
        },
        K_HEALTH_REPLY => {
            let draining = d.u8()? != 0;
            let depth = d.u64()? as usize;
            let capacity = d.u64()? as usize;
            let mut fields = [0u64; 19];
            for f in fields.iter_mut() {
                *f = d.u64()?;
            }
            ServerMsg::Health(HealthReport {
                draining,
                depth,
                capacity,
                stats: stats_from_fields(fields),
            })
        }
        k => return Err(NetError::Protocol(format!("unknown server kind {k}"))),
    };
    d.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------------

fn send_body(stream: &mut TcpStream, body: Vec<u8>) -> io::Result<()> {
    write_frame(stream, &seal(body))
}

enum RecvErr {
    /// The frame failed its CRC, claimed an oversize length, or would
    /// not decode.
    Corrupt,
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn recv_client(stream: &mut TcpStream) -> Result<ClientMsg, RecvErr> {
    let raw = read_frame(stream, MAX_NET_FRAME).map_err(|e| {
        if e.kind() == ErrorKind::InvalidData {
            RecvErr::Corrupt
        } else {
            RecvErr::Io(e)
        }
    })?;
    let body = verify(&raw).map_err(|_| RecvErr::Corrupt)?;
    decode_client(body).map_err(|_| RecvErr::Corrupt)
}

fn recv_server(stream: &mut TcpStream) -> Result<ServerMsg, NetError> {
    let raw = read_frame(stream, MAX_NET_FRAME)?;
    let body = verify(&raw).map_err(|_| NetError::Corrupt)?;
    decode_server(body)
}

fn write_locked(half: &Mutex<TcpStream>, body: Vec<u8>) -> io::Result<()> {
    let mut s = half.lock().unwrap();
    write_frame(&mut *s, &seal(body))
}

fn error_body(id: u64, code: WireError, detail: impl Into<String>) -> Vec<u8> {
    encode_server(&ServerMsg::Error {
        id,
        code,
        detail: detail.into(),
    })
}

// ---------------------------------------------------------------------------
// Front-end
// ---------------------------------------------------------------------------

/// Network front-end tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Concurrent connections accepted; further connects draw a
    /// best-effort [`WireError::ConnLimit`] frame and a close.
    pub max_connections: usize,
    /// Per-connection socket read timeout — the slow-loris bound. A
    /// connection idle past it with nothing in flight is reclaimed.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout; a write stalled past it
    /// (client not reading, kernel buffer full) kills the connection.
    pub write_timeout: Duration,
    /// Bound on each connection's outgoing reply queue; replies beyond
    /// it (client not draining) are dropped and counted.
    pub reply_queue: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            reply_queue: 64,
        }
    }
}

/// A counting latch over every thread the front-end spawns, so
/// [`NetFrontend::close`] can prove none leaked.
#[derive(Default)]
struct WaitGroup {
    n: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    fn add(&self) {
        *self.n.lock().unwrap() += 1;
    }

    fn done(&self) {
        let mut n = self.n.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.n.lock().unwrap();
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.cv.wait_timeout(n, deadline - now).unwrap();
            n = guard;
        }
        true
    }
}

struct FrontShared {
    server: Arc<Server>,
    stats: Arc<ServeStats>,
    cfg: NetConfig,
    closing: AtomicBool,
    /// Read-half clones of every live connection, for force-unblocking
    /// blocked readers at close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    threads: WaitGroup,
}

/// The listening front-end: an acceptor thread plus one reader and one
/// writer thread per connection, feeding
/// [`Server::submit`](crate::Server::submit)'s admission path and
/// sharing the server's counter cell.
pub struct NetFrontend {
    addr: SocketAddr,
    shared: Arc<FrontShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for NetFrontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetFrontend")
            .field("addr", &self.addr)
            .field("cfg", &self.shared.cfg)
            .finish_non_exhaustive()
    }
}

impl NetFrontend {
    /// Binds `addr` (use port 0 for an OS-assigned port, reported by
    /// [`NetFrontend::addr`]) and starts accepting connections for
    /// `server`.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(
        server: Arc<Server>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> io::Result<NetFrontend> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = server.stats_cell();
        let shared = Arc::new(FrontShared {
            server,
            stats,
            cfg,
            closing: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            threads: WaitGroup::default(),
        });
        let sh = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("latte-served-accept".into())
            .spawn(move || accept_loop(listener, sh))?;
        Ok(NetFrontend {
            addr: local,
            shared,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the front-end: no new connections, every live connection's
    /// read half is shut so its reader winds down, writers flush the
    /// replies already queued for them, and every thread is joined.
    ///
    /// Call [`Server::shutdown`](crate::Server::shutdown) *first* so
    /// all admitted requests have resolved into the per-connection
    /// reply queues — then this close delivers them before the sockets
    /// die, which is exactly the graceful-drain order `latte-served`
    /// runs on SIGTERM. Idempotent; a wedged connection is abandoned
    /// after 30 s rather than hanging the caller.
    pub fn close(&self) {
        self.shared.closing.store(true, Ordering::Release);
        // Unblock the acceptor with a wake-up connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        for s in self.shared.conns.lock().unwrap().values() {
            let _ = s.shutdown(Shutdown::Read);
        }
        if let Some(h) = self.accept.lock().unwrap().take() {
            let _ = h.join();
        }
        self.shared.threads.wait_timeout(Duration::from_secs(30));
    }
}

impl Drop for NetFrontend {
    fn drop(&mut self) {
        self.close();
    }
}

fn accept_loop(listener: TcpListener, sh: Arc<FrontShared>) {
    for stream in listener.incoming() {
        if sh.closing.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let open = sh.conns.lock().unwrap().len();
        if open >= sh.cfg.max_connections {
            sh.stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
            reject_conn(stream, &sh.cfg);
            continue;
        }
        sh.stats.conn_accepted.fetch_add(1, Ordering::Relaxed);
        let id = sh.next_conn.fetch_add(1, Ordering::Relaxed);
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        sh.conns.lock().unwrap().insert(id, read_half);
        sh.threads.add();
        let sh2 = Arc::clone(&sh);
        let spawned = std::thread::Builder::new()
            .name(format!("latte-served-conn-{id}"))
            .spawn(move || {
                conn_main(stream, &sh2);
                sh2.conns.lock().unwrap().remove(&id);
                sh2.threads.done();
            });
        if spawned.is_err() {
            sh.conns.lock().unwrap().remove(&id);
            sh.threads.done();
        }
    }
}

/// Best-effort refusal of an over-cap connection: a structured error
/// frame if the socket will take it quickly, then a close.
fn reject_conn(mut stream: TcpStream, cfg: &NetConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = send_body(
        &mut stream,
        error_body(
            CONN_ERR_ID,
            WireError::ConnLimit,
            "connection limit reached",
        ),
    );
    // Half-close, then drain what the client already sent (its Hello).
    // Closing with unread bytes in the receive buffer turns the close
    // into an RST, which can destroy the refusal frame before the
    // client reads it; consuming the bytes lets the refusal ride out on
    // a clean FIN. Bounded by the read timeout, like the write above.
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut sink = [0u8; 256];
    loop {
        match io::Read::read(&mut stream, &mut sink) {
            Ok(0) => break,    // the client saw the refusal and closed
            Ok(_) => continue, // discard a half-sent handshake/request
            Err(_) => break,   // timeout or reset: stop waiting
        }
    }
}

/// One connection's reader: handshake, then a loop decoding frames into
/// admission calls until the client leaves, misbehaves, or the
/// front-end closes.
fn conn_main(mut stream: TcpStream, sh: &Arc<FrontShared>) {
    let cfg = &sh.cfg;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));

    // --- Handshake: the first frame must be a matching Hello. ---
    match recv_client(&mut stream) {
        Ok(ClientMsg::Hello {
            version: NET_PROTOCOL_VERSION,
        }) => {}
        Ok(ClientMsg::Hello { version }) => {
            sh.stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = send_body(
                &mut stream,
                error_body(
                    CONN_ERR_ID,
                    WireError::BadVersion,
                    format!("protocol version {version}, server speaks {NET_PROTOCOL_VERSION}"),
                ),
            );
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Ok(_) => {
            sh.stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = send_body(
                &mut stream,
                error_body(CONN_ERR_ID, WireError::Protocol, "expected Hello first"),
            );
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Err(RecvErr::Corrupt) => {
            sh.stats.frames_corrupt.fetch_add(1, Ordering::Relaxed);
            sh.stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = send_body(
                &mut stream,
                error_body(CONN_ERR_ID, WireError::BadFrame, "corrupt handshake frame"),
            );
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Err(RecvErr::Io(e)) => {
            // The hold-open-and-never-write client stalls right here.
            if is_timeout(&e) {
                sh.stats.conn_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let model = sh.server.model();
    let hello = ServerHello {
        version: NET_PROTOCOL_VERSION,
        model: model.name().to_string(),
        fingerprint: model.fingerprint(),
        inputs: model.inputs().to_vec(),
        outputs: model.outputs().to_vec(),
    };
    if send_body(&mut stream, encode_server(&ServerMsg::HelloOk(hello))).is_err() {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }

    // --- Steady state: reader + dedicated writer over a bounded queue.
    let Ok(write_clone) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let write_half = Arc::new(Mutex::new(write_clone));
    let (tx, rx) = mpsc::sync_channel::<(u64, Result<Response, ServeError>)>(cfg.reply_queue);
    let in_flight = Arc::new(AtomicU64::new(0));
    sh.threads.add();
    let writer = {
        let write_half = Arc::clone(&write_half);
        let in_flight = Arc::clone(&in_flight);
        let sh = Arc::clone(sh);
        std::thread::Builder::new()
            .name("latte-served-writer".into())
            .spawn(move || {
                writer_loop(rx, write_half, in_flight, Arc::clone(&sh.stats));
                sh.threads.done();
            })
    };
    if writer.is_err() {
        sh.threads.done();
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }

    loop {
        match recv_client(&mut stream) {
            Ok(ClientMsg::Request {
                id,
                budget_us,
                inputs,
            }) => {
                let deadline =
                    (budget_us > 0).then(|| Instant::now() + Duration::from_micros(budget_us));
                in_flight.fetch_add(1, Ordering::SeqCst);
                let sink = ReplySink::Routed {
                    id,
                    tx: tx.clone(),
                };
                if let Err(e) = sh.server.submit_sink(Request { inputs }, deadline, sink) {
                    // Admission refusals answer inline: they never
                    // occupied a queue slot, so there is no sink reply
                    // coming.
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    let body = error_body(id, WireError::from(&e), e.to_string());
                    if write_locked(&write_half, body).is_err() {
                        break;
                    }
                }
            }
            Ok(ClientMsg::Health) => {
                let report = HealthReport {
                    draining: sh.server.is_draining(),
                    depth: sh.server.depth(),
                    capacity: sh.server.config().queue_cap,
                    stats: sh.server.stats(),
                };
                if write_locked(&write_half, encode_server(&ServerMsg::Health(report))).is_err() {
                    break;
                }
            }
            Ok(ClientMsg::Bye) => break,
            Ok(ClientMsg::Hello { .. }) => {
                let _ = write_locked(
                    &write_half,
                    error_body(CONN_ERR_ID, WireError::Protocol, "Hello after handshake"),
                );
                break;
            }
            Err(RecvErr::Corrupt) => {
                sh.stats.frames_corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = write_locked(
                    &write_half,
                    error_body(CONN_ERR_ID, WireError::BadFrame, "frame failed its CRC"),
                );
                break;
            }
            Err(RecvErr::Io(e)) if is_timeout(&e) => {
                // Idle while replies are in flight is a patient client;
                // idle with nothing in flight is a slow loris. (A
                // mid-frame stall desyncs the stream and dies on the
                // next decode.)
                if in_flight.load(Ordering::SeqCst) > 0 && !sh.closing.load(Ordering::Acquire) {
                    continue;
                }
                sh.stats.conn_timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
            // EOF, reset, mid-frame disconnect: just wind down.
            Err(RecvErr::Io(_)) => break,
        }
    }
    // Dropping the reader's queue handle lets the writer drain pending
    // replies and exit once the last in-flight sink resolves.
    drop(tx);
    let _ = stream.shutdown(Shutdown::Read);
}

/// One connection's writer: drains the bounded reply queue onto the
/// socket. Exits when every queue handle (the reader's plus one per
/// in-flight request) is gone; a failed write closes the socket and
/// counts every undeliverable reply.
fn writer_loop(
    rx: Receiver<(u64, Result<Response, ServeError>)>,
    write_half: Arc<Mutex<TcpStream>>,
    in_flight: Arc<AtomicU64>,
    stats: Arc<ServeStats>,
) {
    let mut broken = false;
    while let Ok((id, result)) = rx.recv() {
        in_flight.fetch_sub(1, Ordering::SeqCst);
        if broken {
            stats.replies_dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let body = match result {
            Ok(resp) => {
                let meta = resp.meta;
                encode_server(&ServerMsg::Reply(NetReply {
                    id,
                    seq: meta.seq,
                    outputs: resp.outputs,
                    batch_size: meta.batch_size,
                    flush: meta.flush,
                    replica: meta.replica,
                    retried: meta.retried,
                    cache_hit: meta.cache_hit,
                    latency: meta.latency,
                }))
            }
            Err(e) => error_body(id, WireError::from(&e), e.to_string()),
        };
        if let Err(e) = write_locked(&write_half, body) {
            // The reply this client will never see is dropped and
            // counted, and the socket dies so the reader unblocks;
            // later queue entries drain through the `broken` arm.
            if is_timeout(&e) {
                stats.conn_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            stats.replies_dropped.fetch_add(1, Ordering::Relaxed);
            let _ = write_half.lock().unwrap().shutdown(Shutdown::Both);
            broken = true;
        }
    }
    let _ = write_half.lock().unwrap().shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A synchronous client for the serving protocol: blocking calls, one
/// connection, suitable for tests, benches, and command-line tools.
pub struct Client {
    stream: TcpStream,
    hello: ServerHello,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("model", &self.hello.model)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects, completes the versioned handshake, and returns a ready
    /// client. `io_timeout` bounds every subsequent socket read and
    /// write.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect failures, [`NetError::Remote`] when
    /// the server refuses the handshake (version mismatch, connection
    /// cap), [`NetError::Corrupt`]/[`NetError::Protocol`] on a mangled
    /// reply.
    pub fn connect(addr: impl ToSocketAddrs, io_timeout: Duration) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let mut client = Client {
            stream,
            hello: ServerHello {
                version: 0,
                model: String::new(),
                fingerprint: 0,
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        };
        client.send(&ClientMsg::Hello {
            version: NET_PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            ServerMsg::HelloOk(h) => {
                client.hello = h;
                Ok(client)
            }
            ServerMsg::Error { code, detail, .. } => Err(NetError::Remote { code, detail }),
            other => Err(NetError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// The server's handshake reply (model name, signature).
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Sends one client message.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket refuses it.
    pub fn send(&mut self, msg: &ClientMsg) -> Result<(), NetError> {
        send_body(&mut self.stream, encode_client(msg))?;
        Ok(())
    }

    /// Receives one server message.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] (including timeouts), [`NetError::Corrupt`],
    /// [`NetError::Protocol`].
    pub fn recv(&mut self) -> Result<ServerMsg, NetError> {
        recv_server(&mut self.stream)
    }

    /// Sends a request without waiting for its reply (pipelining);
    /// match replies to requests by id with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket refuses it.
    pub fn send_request(
        &mut self,
        id: u64,
        inputs: Vec<(String, Vec<f32>)>,
        budget: Option<Duration>,
    ) -> Result<(), NetError> {
        let budget_us = budget.map_or(0, |b| (b.as_micros() as u64).max(1));
        self.send(&ClientMsg::Request {
            id,
            budget_us,
            inputs,
        })
    }

    /// One blocking round trip: sends request `id` and waits for its
    /// reply or structured failure.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carrying the server's structured error,
    /// plus every [`Client::recv`] failure mode.
    pub fn call(
        &mut self,
        id: u64,
        inputs: Vec<(String, Vec<f32>)>,
        budget: Option<Duration>,
    ) -> Result<NetReply, NetError> {
        self.send_request(id, inputs, budget)?;
        match self.recv()? {
            ServerMsg::Reply(r) if r.id == id => Ok(r),
            ServerMsg::Error {
                id: eid,
                code,
                detail,
            } if eid == id || eid == CONN_ERR_ID => Err(NetError::Remote { code, detail }),
            other => Err(NetError::Protocol(format!(
                "reply for a different request: {other:?}"
            ))),
        }
    }

    /// A health/readiness round trip.
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn health(&mut self) -> Result<HealthReport, NetError> {
        self.send(&ClientMsg::Health)?;
        match self.recv()? {
            ServerMsg::Health(h) => Ok(h),
            other => Err(NetError::Protocol(format!(
                "expected Health reply, got {other:?}"
            ))),
        }
    }

    /// A polite close: sends `Bye` and waits for the server to hang up.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when even the goodbye fails to send.
    pub fn bye(mut self) -> Result<(), NetError> {
        self.send(&ClientMsg::Bye)?;
        let _ = self.stream.shutdown(Shutdown::Write);
        // Drain until EOF so the server's close is observed.
        let mut sink = [0u8; 256];
        loop {
            match io::Read::read(&mut self.stream, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => continue,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Adversaries
// ---------------------------------------------------------------------------

/// What an adversarial client observed before its connection ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryOutcome {
    /// The server closed the connection with no error frame (slow-loris
    /// reclaim) — or the adversary itself hung up first (mid-frame
    /// disconnect).
    Closed,
    /// Structured error frames observed before the close, in order.
    Rejected(Vec<WireError>),
}

/// Plays one [`Misbehavior`](crate::loadgen::Misbehavior) against a
/// live front-end and reports what came back. `patience` bounds every
/// socket wait; pick it comfortably above the server's read timeout so
/// a slow-loris run observes the server's close rather than its own.
///
/// # Errors
///
/// [`NetError`] when the front-end does something the misbehavior
/// contract does not allow (e.g. hangs past `patience`).
pub fn run_adversary(
    addr: SocketAddr,
    misbehavior: &crate::loadgen::Misbehavior,
    patience: Duration,
) -> Result<AdversaryOutcome, NetError> {
    use crate::loadgen::Misbehavior;
    match misbehavior {
        Misbehavior::HoldOpen => {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(patience))?;
            // Never write a byte; the server's read timeout must
            // reclaim us. Seeing EOF here is the proof.
            let mut sink = [0u8; 64];
            loop {
                match io::Read::read(&mut stream, &mut sink) {
                    Ok(0) => return Ok(AdversaryOutcome::Closed),
                    Ok(_) => continue, // an error frame's bytes; keep draining
                    Err(e) if is_timeout(&e) => {
                        return Err(NetError::Protocol(
                            "server never reclaimed a held-open connection".into(),
                        ))
                    }
                    Err(_) => return Ok(AdversaryOutcome::Closed),
                }
            }
        }
        Misbehavior::MidFrameDisconnect => {
            let mut client = Client::connect(addr, patience)?;
            // A length prefix promising 64 bytes, then a third of them,
            // then nothing ever again.
            io::Write::write_all(&mut client.stream, &64u32.to_le_bytes())?;
            io::Write::write_all(&mut client.stream, &[0xAB; 20])?;
            let _ = client.stream.shutdown(Shutdown::Both);
            Ok(AdversaryOutcome::Closed)
        }
        Misbehavior::CorruptCrc => {
            let mut client = Client::connect(addr, patience)?;
            let body = encode_client(&ClientMsg::Request {
                id: 1,
                budget_us: 0,
                inputs: zero_inputs(&client.hello),
            });
            let mut sealed = seal(body);
            let mid = sealed.len() / 2;
            sealed[mid] ^= 0x01;
            write_frame(&mut client.stream, &sealed)?;
            let mut codes = Vec::new();
            loop {
                match client.recv() {
                    Ok(ServerMsg::Error { code, .. }) => codes.push(code),
                    Ok(other) => {
                        return Err(NetError::Protocol(format!(
                            "corrupt frame drew a non-error reply: {other:?}"
                        )))
                    }
                    Err(NetError::Io { .. }) => break,
                    Err(e) => return Err(e),
                }
            }
            Ok(AdversaryOutcome::Rejected(codes))
        }
        Misbehavior::PastDeadlineFlood { requests } => {
            let mut client = Client::connect(addr, patience)?;
            let inputs = zero_inputs(&client.hello);
            for id in 0..*requests as u64 {
                client.send_request(id, inputs.clone(), Some(Duration::from_micros(1)))?;
            }
            let mut codes = Vec::new();
            for _ in 0..*requests {
                match client.recv()? {
                    ServerMsg::Error { code, .. } => codes.push(code),
                    other => {
                        return Err(NetError::Protocol(format!(
                            "an expired request was answered with {other:?}"
                        )))
                    }
                }
            }
            let _ = client.bye();
            Ok(AdversaryOutcome::Rejected(codes))
        }
    }
}

/// All-zero inputs matching a handshake's signature — valid shape,
/// contents irrelevant (adversarial requests are never executed).
fn zero_inputs(hello: &ServerHello) -> Vec<(String, Vec<f32>)> {
    hello
        .inputs
        .iter()
        .map(|(name, len)| (name.clone(), vec![0.0; *len]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMsg) {
        let body = encode_client(&msg);
        assert_eq!(decode_client(&body).unwrap(), msg);
        // Through the full seal/verify path, too.
        let sealed = seal(body);
        assert_eq!(decode_client(verify(&sealed).unwrap()).unwrap(), msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let body = encode_server(&msg);
        assert_eq!(decode_server(&body).unwrap(), msg);
        let sealed = seal(body);
        assert_eq!(decode_server(verify(&sealed).unwrap()).unwrap(), msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Hello {
            version: NET_PROTOCOL_VERSION,
        });
        roundtrip_client(ClientMsg::Request {
            id: 42,
            budget_us: 1_500,
            inputs: vec![
                ("data".into(), vec![1.0, -2.5, 3.25]),
                ("label".into(), vec![0.0]),
            ],
        });
        roundtrip_client(ClientMsg::Health);
        roundtrip_client(ClientMsg::Bye);
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::HelloOk(ServerHello {
            version: 1,
            model: "fc".into(),
            fingerprint: 0xdead_beef,
            inputs: vec![("data".into(), 5), ("label".into(), 1)],
            outputs: vec!["head.value".into()],
        }));
        roundtrip_server(ServerMsg::Reply(NetReply {
            id: 7,
            seq: 99,
            outputs: vec![("head.value".into(), vec![0.1, 0.9])],
            batch_size: 8,
            flush: FlushReason::Deadline,
            replica: 3,
            retried: 1,
            cache_hit: true,
            latency: Duration::from_micros(12_345),
        }));
        roundtrip_server(ServerMsg::Error {
            id: CONN_ERR_ID,
            code: WireError::BadFrame,
            detail: "corrupt".into(),
        });
        let stats = StatsSnapshot {
            submitted: 10,
            completed: 8,
            deadline_shed: 1,
            replies_dropped: 2,
            conn_accepted: 3,
            frames_corrupt: 4,
            max_depth: 6,
            ..StatsSnapshot::default()
        };
        roundtrip_server(ServerMsg::Health(HealthReport {
            draining: true,
            depth: 2,
            capacity: 64,
            stats,
        }));
    }

    #[test]
    fn every_wire_error_code_roundtrips() {
        for e in [
            WireError::Overloaded,
            WireError::Closed,
            WireError::BadRequest,
            WireError::Compile,
            WireError::Execution,
            WireError::ReplicaFailed,
            WireError::WaitTimeout,
            WireError::DeadlineExceeded,
            WireError::Draining,
            WireError::BadFrame,
            WireError::BadVersion,
            WireError::ConnLimit,
            WireError::Protocol,
            WireError::Unknown,
        ] {
            assert_eq!(WireError::from_code(e.code()), e);
        }
    }

    #[test]
    fn decoders_reject_truncation_trailing_bytes_and_unknown_kinds() {
        let body = encode_client(&ClientMsg::Request {
            id: 1,
            budget_us: 0,
            inputs: vec![("data".into(), vec![1.0])],
        });
        // Every proper prefix is a structured decode error, not a panic.
        for cut in 0..body.len() {
            assert!(decode_client(&body[..cut]).is_err(), "prefix {cut} decoded");
        }
        let mut long = body.clone();
        long.push(0);
        assert!(decode_client(&long).is_err(), "trailing byte accepted");
        assert!(decode_client(&[250]).is_err(), "unknown kind accepted");
        assert!(decode_server(&[250]).is_err(), "unknown kind accepted");
    }
}
