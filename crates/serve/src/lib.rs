//! # latte-serve
//!
//! A dynamic-batching inference server over the Latte runtime.
//!
//! Latte's compiler amortizes its work across a whole batch — but an
//! inference service receives *single samples*. This crate bridges the
//! two: requests are coalesced into micro-batches (flushed on size or
//! deadline, whichever comes first), executed on a supervised pool of
//! warm [`Executor`](latte_runtime::Executor) replicas, and every
//! micro-batch size's lowered plan is cached by
//! `(net fingerprint, batch)` so tail batches never recompile.
//!
//! * [`Model`] — a batch-parametric net factory plus the request
//!   signature probed from a batch-1 compile.
//! * [`Batcher`] — the pure, clock-parametric size-or-deadline
//!   coalescer.
//! * [`PlanCache`] — lowered [`CompiledProgram`](latte_runtime::CompiledProgram)s
//!   keyed by `(fingerprint, batch)`, with hit/miss counters.
//! * [`Server`] — bounded admission, dispatcher + replica threads,
//!   crash supervision with bounded retries, per-request [`Ticket`]s.
//! * [`SeqModel`] / [`SeqServer`] — dynamic shapes: variable-length
//!   requests padded into a power-of-two bucket ladder (one server per
//!   bucket over one shared, bounded plan cache), with bucket-spill
//!   accounting — odd lengths and tail batches never recompile after
//!   the ladder is warm.
//! * [`net`] — the fault-hardened framed-TCP front-end: versioned
//!   handshake, CRC-sealed frames, wire deadlines, slow-loris timeouts,
//!   bounded reply backpressure, and graceful drain (the `latte-served`
//!   binary wraps it).
//! * [`loadgen`] — seeded open-loop arrival schedules (steady, bursty,
//!   slow-client) plus the adversarial-client vocabulary
//!   ([`loadgen::Misbehavior`]) for reproducible chaos runs.
//! * [`zoo`] — batch-parametric demo models the binary, bench, and
//!   tests serve out of the box.
//!
//! The serving guarantee the test suite pins down: a sample served in
//! *any* micro-batch is **bit-identical** to the same sample run alone
//! through a plain executor — batching is a scheduling decision, never
//! a numerics decision.

#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod error;
pub mod loadgen;
pub mod model;
pub mod net;
pub mod replica;
pub mod seq;
pub mod server;
pub mod zoo;

pub use batcher::{Batcher, FlushReason};
pub use cache::PlanCache;
pub use error::ServeError;
pub use loadgen::{schedule, Arrival, Misbehavior};
pub use model::{Model, NetFactory};
pub use net::{Client, HealthReport, NetConfig, NetError, NetFrontend, NetReply, WireError};
pub use replica::{BatchAction, BatchEngine, FaultHooks, NoHooks, ReplicaHooks};
pub use seq::{Route, SeqModel, SeqNetFactory, SeqRequest, SeqServer, SeqTicket};
pub use server::{
    GateHooks, ReplyMeta, Request, Response, ServeConfig, Server, StatsSnapshot, Ticket,
};
