//! The micro-batch coalescing state machine.
//!
//! Pure and clock-parametric: every transition takes `now: Instant` from
//! the caller, so tests drive the batcher with a virtual clock and never
//! sleep. The policy is *size-or-deadline*: a batch flushes the moment it
//! reaches `max_batch` items, or when `max_delay` has elapsed since its
//! **first** item arrived — whichever comes first. A lone straggler is
//! therefore never stuck behind an unfilled batch for more than
//! `max_delay`.

use std::time::{Duration, Instant};

/// Why a micro-batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` items.
    Size,
    /// `max_delay` elapsed since the batch's first item arrived.
    Deadline,
    /// An explicit drain (manual [`Server::flush`](crate::Server::flush)
    /// or shutdown) forced out a partial batch.
    Drain,
}

impl FlushReason {
    /// Stable lower-case label (used in bench JSON and logs).
    pub fn label(&self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Deadline => "deadline",
            FlushReason::Drain => "drain",
        }
    }
}

/// The coalescer: accumulates items and decides when a micro-batch is
/// ready.
#[derive(Debug)]
pub struct Batcher<T> {
    max_batch: usize,
    max_delay: Duration,
    items: Vec<T>,
    deadline: Option<Instant>,
}

impl<T> Batcher<T> {
    /// A new coalescer flushing at `max_batch` items or `max_delay` after
    /// the first queued item, whichever comes first. `max_batch` is
    /// clamped to at least 1.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        Batcher {
            max_batch: max_batch.max(1),
            max_delay,
            items: Vec::new(),
            deadline: None,
        }
    }

    /// Queues an item at time `now`. Returns the completed batch when
    /// this item fills it to `max_batch` ([`FlushReason::Size`]).
    pub fn push(&mut self, item: T, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        if self.items.is_empty() {
            self.deadline = Some(now + self.max_delay);
        }
        self.items.push(item);
        if self.items.len() >= self.max_batch {
            Some((self.take(), FlushReason::Size))
        } else {
            None
        }
    }

    /// Checks the deadline at time `now`: returns the pending batch when
    /// its deadline has passed ([`FlushReason::Deadline`]).
    pub fn poll(&mut self, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        match self.deadline {
            Some(d) if d <= now && !self.items.is_empty() => {
                Some((self.take(), FlushReason::Deadline))
            }
            _ => None,
        }
    }

    /// Forces out whatever is pending ([`FlushReason::Drain`]); `None`
    /// when empty.
    pub fn drain(&mut self) -> Option<(Vec<T>, FlushReason)> {
        if self.items.is_empty() {
            None
        } else {
            Some((self.take(), FlushReason::Drain))
        }
    }

    /// The pending batch's flush deadline, if one is accumulating.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn take(&mut self) -> Vec<T> {
        self.deadline = None;
        std::mem::take(&mut self.items)
    }
}

/// Splits a flushed batch into `(live, expired)` by each item's
/// client-supplied deadline at time `now` (items without a deadline are
/// always live). Order within each half is preserved.
///
/// This is the flush-time half of deadline propagation: a request whose
/// deadline passed while it coalesced must be *shed* — counted and
/// answered with a structured error — never executed, so an expired
/// flood cannot occupy replica time. Shedding every item turns the
/// flush into a no-op execution (no batch runs at all). Like the
/// [`Batcher`] itself this is pure and clock-parametric: `now` comes
/// from the caller, so tests drive it with a virtual clock.
pub fn shed_expired<T>(
    items: Vec<T>,
    now: Instant,
    deadline_of: impl Fn(&T) -> Option<Instant>,
) -> (Vec<T>, Vec<T>) {
    let mut live = Vec::with_capacity(items.len());
    let mut expired = Vec::new();
    for item in items {
        match deadline_of(&item) {
            Some(d) if d <= now => expired.push(item),
            _ => live.push(item),
        }
    }
    (live, expired)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> Instant {
        Instant::now()
    }

    #[test]
    fn size_flush_fires_on_the_filling_push() {
        let mut b = Batcher::new(3, Duration::from_secs(60));
        let t0 = clock();
        assert!(b.push(1, t0).is_none());
        assert!(b.push(2, t0).is_none());
        let (batch, reason) = b.push(3, t0).expect("third push fills the batch");
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(reason, FlushReason::Size);
        assert!(b.is_empty());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn deadline_flush_releases_a_straggler() {
        let mut b = Batcher::new(8, Duration::from_millis(10));
        let t0 = clock();
        assert!(b.push(42, t0).is_none());
        // Virtual clock: just before the deadline nothing flushes.
        assert!(b.poll(t0 + Duration::from_millis(9)).is_none());
        let (batch, reason) = b.poll(t0 + Duration::from_millis(10)).expect("deadline hit");
        assert_eq!(batch, vec![42]);
        assert_eq!(reason, FlushReason::Deadline);
    }

    #[test]
    fn deadline_tracks_the_first_item_of_each_batch() {
        let mut b = Batcher::new(8, Duration::from_millis(10));
        let t0 = clock();
        b.push(1, t0);
        // A later item does not extend the deadline.
        b.push(2, t0 + Duration::from_millis(7));
        assert_eq!(b.deadline(), Some(t0 + Duration::from_millis(10)));
        let (batch, _) = b.poll(t0 + Duration::from_millis(10)).unwrap();
        assert_eq!(batch, vec![1, 2]);
        // The next batch gets a fresh deadline from its own first item.
        let t1 = t0 + Duration::from_millis(25);
        b.push(3, t1);
        assert_eq!(b.deadline(), Some(t1 + Duration::from_millis(10)));
    }

    #[test]
    fn size_wins_when_the_batch_fills_before_the_deadline() {
        let mut b = Batcher::new(2, Duration::from_secs(60));
        let t0 = clock();
        b.push(1, t0);
        let (_, reason) = b.push(2, t0 + Duration::from_millis(1)).unwrap();
        assert_eq!(reason, FlushReason::Size);
    }

    #[test]
    fn shed_splits_expired_from_live_at_flush() {
        // Virtual clock: items carry (id, deadline) pairs.
        let t0 = clock();
        let items = vec![
            (1, Some(t0 + Duration::from_millis(5))),
            (2, None),
            (3, Some(t0 + Duration::from_millis(50))),
            (4, Some(t0 + Duration::from_millis(10))),
        ];
        let now = t0 + Duration::from_millis(10);
        let (live, expired) = shed_expired(items, now, |i| i.1);
        // Deadlines at or before `now` are expired; None never expires.
        assert_eq!(live.iter().map(|i| i.0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(expired.iter().map(|i| i.0).collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn shed_of_an_all_expired_batch_leaves_nothing_to_execute() {
        let t0 = clock();
        let items = vec![(1, Some(t0)), (2, Some(t0 + Duration::from_millis(1)))];
        let (live, expired) = shed_expired(items, t0 + Duration::from_millis(2), |i| i.1);
        assert!(live.is_empty(), "an all-expired flush must be a no-op execution");
        assert_eq!(expired.len(), 2);
    }

    #[test]
    fn shed_through_a_drain_flush_preserves_order() {
        // Drain-during-shutdown: the batcher force-flushes, then the
        // shed splits the partial batch — both halves in arrival order.
        let mut b = Batcher::new(8, Duration::from_secs(60));
        let t0 = clock();
        b.push((1, Some(t0 + Duration::from_millis(1))), t0);
        b.push((2, None), t0);
        b.push((3, Some(t0 + Duration::from_millis(90))), t0);
        let (batch, reason) = b.drain().expect("drain flushes the partial batch");
        assert_eq!(reason, FlushReason::Drain);
        let (live, expired) = shed_expired(batch, t0 + Duration::from_millis(10), |i| i.1);
        assert_eq!(live.iter().map(|i| i.0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(expired.iter().map(|i| i.0).collect::<Vec<_>>(), vec![1]);
        assert!(b.drain().is_none(), "drain is still idempotent after a shed");
    }

    #[test]
    fn drain_forces_a_partial_batch_and_is_idempotent() {
        let mut b = Batcher::new(8, Duration::from_secs(60));
        assert!(b.drain().is_none());
        b.push(7, clock());
        let (batch, reason) = b.drain().unwrap();
        assert_eq!(batch, vec![7]);
        assert_eq!(reason, FlushReason::Drain);
        assert!(b.drain().is_none());
    }
}
