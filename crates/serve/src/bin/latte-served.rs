//! `latte-served` — the standalone inference server.
//!
//! Registers one of the demo-zoo models, starts the batching
//! [`Server`], binds the framed-TCP front-end, and serves until
//! SIGTERM/SIGINT. Shutdown is a graceful drain: admission flips to
//! `Draining`, the coalescing batch is flushed, every admitted request
//! is answered, replicas and connection threads are joined, and a final
//! counter summary is printed — then exit 0.
//!
//! ```text
//! latte-served [--model fc|conv|fusion|classifier|lstm] [--addr HOST:PORT]
//!              [--replicas N] [--threads N] [--max-batch N] [--max-delay-ms N]
//!              [--queue-cap N] [--max-conns N] [--read-timeout-ms N]
//!              [--write-timeout-ms N] [--reply-queue N]
//! ```
//!
//! With `--addr 127.0.0.1:0` the OS picks a port; the chosen address is
//! printed as `latte-served listening on ADDR model=NAME` so a
//! supervisor (or test harness) can parse it.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use latte_serve::{zoo, NetConfig, NetFrontend, ServeConfig, Server};

/// Async-signal-safe shutdown latch: the handler only stores a flag,
/// the main loop polls it. Installed via the raw libc `signal` symbol —
/// no crate dependency needed for two signal numbers.
mod sig {
    use super::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

struct Args {
    model: String,
    addr: String,
    serve: ServeConfig,
    net: NetConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "fc".into(),
        addr: "127.0.0.1:7878".into(),
        serve: ServeConfig::default(),
        net: NetConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--addr" => args.addr = value("--addr")?,
            "--replicas" => args.serve.replicas = parse(&value("--replicas")?)?,
            "--threads" => args.serve.threads = parse(&value("--threads")?)?,
            "--max-batch" => args.serve.max_batch = parse(&value("--max-batch")?)?,
            "--max-delay-ms" => {
                args.serve.max_delay = Duration::from_millis(parse(&value("--max-delay-ms")?)?)
            }
            "--queue-cap" => args.serve.queue_cap = parse(&value("--queue-cap")?)?,
            "--max-conns" => args.net.max_connections = parse(&value("--max-conns")?)?,
            "--read-timeout-ms" => {
                args.net.read_timeout = Duration::from_millis(parse(&value("--read-timeout-ms")?)?)
            }
            "--write-timeout-ms" => {
                args.net.write_timeout =
                    Duration::from_millis(parse(&value("--write-timeout-ms")?)?)
            }
            "--reply-queue" => args.net.reply_queue = parse(&value("--reply-queue")?)?,
            "--help" | "-h" => {
                return Err("usage: latte-served [--model NAME] [--addr HOST:PORT] \
                     [--replicas N] [--threads N] [--max-batch N] [--max-delay-ms N] \
                     [--queue-cap N] [--max-conns N] [--read-timeout-ms N] \
                     [--write-timeout-ms N] [--reply-queue N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !zoo::NETS.contains(&args.model.as_str()) {
        return Err(format!(
            "unknown model `{}`; the zoo serves {:?}",
            args.model,
            zoo::NETS
        ));
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value `{s}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("latte-served: {msg}");
            return ExitCode::FAILURE;
        }
    };
    sig::install();

    let model = match zoo::model(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("latte-served: model `{}` failed to register: {e}", args.model);
            return ExitCode::FAILURE;
        }
    };
    let server = Arc::new(Server::start(model, args.serve));
    let frontend = match NetFrontend::bind(Arc::clone(&server), args.addr.as_str(), args.net) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("latte-served: bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The parseable ready line; supervisors read the bound port here.
    println!(
        "latte-served listening on {} model={}",
        frontend.addr(),
        args.model
    );

    while !sig::SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }

    eprintln!("latte-served: draining");
    // Graceful drain, in order: stop admission + answer every admitted
    // request + join replicas, then flush the reply queues onto the
    // sockets and join every connection thread.
    server.shutdown();
    frontend.close();
    let s = server.stats();
    println!(
        "latte-served: drained cleanly submitted={} completed={} failed={} rejected={} \
         deadline_rejected={} deadline_shed={} replies_dropped={} conn_accepted={} \
         conn_rejected={} conn_timeouts={} frames_corrupt={}",
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.deadline_rejected,
        s.deadline_shed,
        s.replies_dropped,
        s.conn_accepted,
        s.conn_rejected,
        s.conn_timeouts,
        s.frames_corrupt
    );
    ExitCode::SUCCESS
}
