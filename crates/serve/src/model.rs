//! A served model: a batch-parametric network factory plus the input /
//! output signature the server validates requests against.
//!
//! Dynamic batching means the batch size is not known until flush time,
//! so a served model is not one `Net` but a *factory* `Fn(batch) -> Net`.
//! The factory must be **batch-invariant**: nets it builds for different
//! batch sizes must differ only in batch (same layers, same seeds, same
//! parameters), so that every micro-batch size computes bit-identical
//! per-sample results and shares one plan-cache fingerprint. The cache
//! ([`crate::PlanCache`]) verifies this at compile time.

use latte_core::dsl::Net;
use latte_core::{compile, CompiledNet, OptLevel};

use crate::error::ServeError;

/// The network factory: builds the model's `Net` for a given batch size.
pub type NetFactory = Box<dyn Fn(usize) -> Net + Send + Sync>;

/// A model registered with the server: name, batch-parametric factory,
/// optimization level, and the request signature probed from a batch-1
/// compile.
pub struct Model {
    name: String,
    factory: NetFactory,
    opt: OptLevel,
    fingerprint: u64,
    inputs: Vec<(String, usize)>,
    outputs: Vec<String>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("name", &self.name)
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish_non_exhaustive()
    }
}

impl Model {
    /// Registers a model. Probes the factory at batch 1 to record the
    /// plan-cache fingerprint and the per-item input signature, and
    /// checks that every requested output names a buffer of the compiled
    /// net.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] when the probe compile fails or an output
    /// buffer does not exist.
    pub fn new(
        name: impl Into<String>,
        factory: NetFactory,
        opt: OptLevel,
        outputs: Vec<String>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let probe = factory(1);
        let compiled = compile(&probe, &opt).map_err(|e| ServeError::Compile {
            detail: format!("{name}: {e}"),
        })?;
        let inputs = compiled
            .inputs
            .iter()
            .map(|i| {
                let per_item = compiled
                    .buffers
                    .iter()
                    .find(|b| b.name == i.buffer)
                    .map(|b| b.shape.len())
                    .unwrap_or(0);
                (i.ensemble.clone(), per_item)
            })
            .collect::<Vec<_>>();
        for out in &outputs {
            if !compiled.buffers.iter().any(|b| &b.name == out) {
                return Err(ServeError::Compile {
                    detail: format!("{name}: output buffer `{out}` does not exist"),
                });
            }
        }
        Ok(Model {
            name,
            factory,
            opt,
            fingerprint: compiled.fingerprint(),
            inputs,
            outputs,
        })
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batch-independent plan-cache fingerprint (probed at batch 1).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The request signature: every `(ensemble, per_item_len)` a request
    /// must supply.
    pub fn inputs(&self) -> &[(String, usize)] {
        &self.inputs
    }

    /// The buffers read back per batch item into each response.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Compiles the model for a concrete micro-batch size.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] when the compiler rejects the factory's
    /// net at this batch size.
    pub fn compile_batch(&self, batch: usize) -> Result<CompiledNet, ServeError> {
        let net = (self.factory)(batch);
        compile(&net, &self.opt).map_err(|e| ServeError::Compile {
            detail: format!("{} @ batch {batch}: {e}", self.name),
        })
    }

    /// Validates a request's inputs against the signature: every declared
    /// ensemble present exactly once with its exact per-item length, and
    /// nothing extra.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] describing the first mismatch.
    pub fn validate(&self, inputs: &[(String, Vec<f32>)]) -> Result<(), ServeError> {
        for (ensemble, len) in &self.inputs {
            let matches: Vec<_> = inputs.iter().filter(|(n, _)| n == ensemble).collect();
            match matches.as_slice() {
                [] => {
                    return Err(ServeError::BadRequest {
                        detail: format!("missing input `{ensemble}`"),
                    })
                }
                [(_, data)] => {
                    if data.len() != *len {
                        return Err(ServeError::BadRequest {
                            detail: format!(
                                "input `{ensemble}` has {} elements, expected {len}",
                                data.len()
                            ),
                        });
                    }
                }
                _ => {
                    return Err(ServeError::BadRequest {
                        detail: format!("input `{ensemble}` supplied more than once"),
                    })
                }
            }
        }
        for (n, _) in inputs {
            if !self.inputs.iter().any(|(ensemble, _)| ensemble == n) {
                return Err(ServeError::BadRequest {
                    detail: format!("unknown input `{n}`"),
                });
            }
        }
        Ok(())
    }
}
