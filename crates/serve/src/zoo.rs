//! A small zoo of batch-parametric demo models.
//!
//! These mirror the oracle harness's five-net suite as *factories* over
//! the batch size (identical layer seeds at every batch, so parameters
//! are batch-invariant and every micro-batch size shares one plan-cache
//! fingerprint). They exist so the network front-end has something real
//! to serve out of the box: the `latte-served` binary, the serving
//! bench, and the integration tests all register models from here, and
//! the in-process test suite compares served samples bit-for-bit
//! against a plain batch-1 executor of the same factory.

use latte_core::dsl::Net;
use latte_core::OptLevel;
use latte_nn::layers::{
    convolution, data, fully_connected, max_pool, relu, sigmoid, softmax_loss, tanh, ConvSpec,
};
use latte_nn::rnn::lstm;
use latte_nn::varlen::lstm_seq;
use std::sync::Arc;

use crate::loadgen::splitmix64;
use crate::model::{Model, NetFactory};
use crate::seq::{SeqModel, SeqRequest};
use crate::server::Request;

/// Time steps the demo LSTM is unrolled for.
pub const LSTM_STEPS: usize = 2;

/// The five demo nets, by name.
pub const NETS: [&str; 5] = ["fc", "conv", "fusion", "classifier", "lstm"];

fn fc_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![5]);
    let fc1 = fully_connected(&mut net, "fc1", x, 8, 7);
    let a1 = tanh(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 6, 8);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, 4, 9);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn conv_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![5, 5, 2]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(3, 3), 11);
    let head = fully_connected(&mut net, "head", conv, 3, 12);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn fusion_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![6, 6, 1]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(2, 3), 13);
    let act = relu(&mut net, "act", conv);
    let pool = max_pool(&mut net, "pool", act, 2, 2);
    let head = fully_connected(&mut net, "head", pool, 3, 14);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn classifier_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![7]);
    let fc1 = fully_connected(&mut net, "fc1", x, 10, 15);
    let a1 = relu(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 8, 16);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, 5, 17);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn lstm_factory(batch: usize) -> Net {
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![3]);
    lstm(&mut step_net, "lstm", x, 4, 19);
    let mut net = step_net.unroll(LSTM_STEPS);
    let final_h = net
        .find(&format!("lstm_h@t{}", LSTM_STEPS - 1))
        .expect("unrolled LSTM output missing");
    let head = fully_connected(&mut net, "head", final_h, 3, 20);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

/// The batch-parametric factory for a named demo net.
///
/// # Panics
///
/// On a name outside [`NETS`].
pub fn factory(name: &str) -> NetFactory {
    match name {
        "fc" => Box::new(fc_factory),
        "conv" => Box::new(conv_factory),
        "fusion" => Box::new(fusion_factory),
        "classifier" => Box::new(classifier_factory),
        "lstm" => Box::new(lstm_factory),
        other => panic!("unknown demo net `{other}`"),
    }
}

/// Per-item `(ensemble, len)` input signature of a named demo net.
///
/// # Panics
///
/// On a name outside [`NETS`].
pub fn input_signature(name: &str) -> Vec<(String, usize)> {
    let mut sig = match name {
        "fc" => vec![("data".to_string(), 5)],
        "conv" => vec![("data".to_string(), 50)],
        "fusion" => vec![("data".to_string(), 36)],
        "classifier" => vec![("data".to_string(), 7)],
        "lstm" => {
            // The unrolled LSTM also exposes its zero-filled initial
            // recurrent states as data ensembles.
            let mut sig: Vec<(String, usize)> =
                (0..LSTM_STEPS).map(|t| (format!("x@t{t}"), 3)).collect();
            sig.push(("lstm_h@init".to_string(), 4));
            sig.push(("lstm_cell@init".to_string(), 4));
            sig
        }
        other => panic!("unknown demo net `{other}`"),
    };
    sig.push(("label".to_string(), 1));
    sig
}

/// Output classes of a named demo net's head.
///
/// # Panics
///
/// On a name outside [`NETS`].
pub fn classes(name: &str) -> usize {
    match name {
        "fc" => 4,
        "conv" | "fusion" | "lstm" => 3,
        "classifier" => 5,
        other => panic!("unknown demo net `{other}`"),
    }
}

/// Registers the named demo net as a served [`Model`] (full
/// optimization, `head.value` output).
///
/// # Errors
///
/// [`crate::ServeError::Compile`] if the probe compile fails — it never
/// does for the nets in [`NETS`].
pub fn model(name: &str) -> Result<Model, crate::ServeError> {
    Model::new(
        name,
        factory(name),
        OptLevel::full(),
        vec!["head.value".to_string()],
    )
}

/// Per-step input width of the demo sequence LSTM.
pub const SEQ_WIDTH: usize = 3;

/// The demo variable-length LSTM as a bucket-ladder [`SeqModel`]
/// covering lengths `1..=max_len`: the same LSTM unit and head seeds as
/// the fixed `"lstm"` demo net, unrolled per bucket with the mask-select
/// readout from `latte_nn::varlen`.
///
/// # Errors
///
/// [`crate::ServeError::Compile`] if any bucket's probe compile fails —
/// it never does for this factory.
pub fn seq_model(max_len: usize) -> Result<SeqModel, crate::ServeError> {
    SeqModel::new(
        "lstm-seq",
        Arc::new(|batch, bucket| {
            let (mut net, seq) = lstm_seq(batch, "lstm", SEQ_WIDTH, 4, bucket, 19);
            let head = fully_connected(&mut net, "head", seq.readout, 3, 20);
            let label = data(&mut net, "label", vec![1]);
            softmax_loss(&mut net, "loss", head, label);
            net
        }),
        OptLevel::full(),
        max_len,
        "x",
        "lstm_last_mask",
        vec!["head.value".to_string()],
    )
}

/// One deterministic variable-length request of `len` true steps for
/// [`seq_model`], fully determined by `(len, seed)`.
///
/// # Panics
///
/// On `len == 0`.
pub fn seq_sample(len: usize, seed: u64) -> SeqRequest {
    assert!(len > 0, "a sequence sample needs at least one step");
    let mut state = seed ^ 0x6c61_7474_655f_7371; // "latte_sq"
    let steps = (0..len)
        .map(|_| {
            (0..SEQ_WIDTH)
                .map(|_| {
                    let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    (2.0 * u - 1.0) as f32
                })
                .collect()
        })
        .collect();
    let label = vec![(splitmix64(&mut state) as usize % 3) as f32];
    SeqRequest {
        steps,
        extra: vec![("label".to_string(), label)],
    }
}

/// One deterministic single-sample request for the named demo net,
/// fully determined by `(name, seed)` — no external RNG, so binaries
/// and benches produce identical request streams run to run.
///
/// # Panics
///
/// On a name outside [`NETS`].
pub fn sample(name: &str, seed: u64) -> Request {
    let mut state = seed ^ 0x6c61_7474_655f_7a6f; // "latte_zo"
    let inputs = input_signature(name)
        .into_iter()
        .map(|(ensemble, len)| {
            let values: Vec<f32> = if ensemble == "label" {
                vec![(splitmix64(&mut state) as usize % classes(name)) as f32]
            } else if ensemble.ends_with("@init") {
                // Zero initial recurrent state, matching the paper's
                // unrolling semantics.
                vec![0.0; len]
            } else {
                (0..len)
                    .map(|_| {
                        // A uniform draw in (-1, 1).
                        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                        (2.0 * u - 1.0) as f32
                    })
                    .collect()
            };
            (ensemble, values)
        })
        .collect();
    Request { inputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_model_registers_and_matches_its_signature() {
        for name in NETS {
            let m = model(name).expect("zoo model registers");
            // Request validation is order-insensitive, so compare the
            // signatures as sets.
            let mut probed = m.inputs().to_vec();
            let mut listed = input_signature(name);
            probed.sort();
            listed.sort();
            assert_eq!(probed, listed, "{name}");
            let req = sample(name, 7);
            m.validate(&req.inputs).expect("zoo sample validates");
        }
    }

    #[test]
    fn samples_are_deterministic_in_the_seed() {
        for name in NETS {
            assert_eq!(sample(name, 3), sample(name, 3), "{name}");
            assert_ne!(
                sample(name, 3),
                sample(name, 4),
                "{name} sample ignores its seed"
            );
        }
    }
}
