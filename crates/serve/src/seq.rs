//! Dynamic-shape serving: route variable-length sequence requests
//! through a power-of-two bucket ladder of compiled models.
//!
//! A fixed-shape [`Model`](crate::Model) compiles one program per
//! micro-batch size. Sequences add a second dynamic axis — the length —
//! and compiling one program per *exact* length would blow the plan
//! cache open (and recompile on every odd length the warmup never saw).
//! A [`SeqModel`] instead instantiates the factory once per bucket of
//! the [`bucket_ladder`], and admission rounds each request's length up
//! to its [`bucket_len`], zero-padding the step inputs and selecting the
//! true last step with a one-hot mask ([`last_step_mask`]). Each bucket
//! is a structurally distinct net with its own fingerprint, so the
//! shared [`PlanCache`] is effectively keyed by `(bucket, batch)`: after
//! warming the ladder, a request of *any* length `1..=max_len` in a tail
//! batch of *any* size never recompiles.
//!
//! Padding is a routing decision, never a numerics decision: the
//! mask-select readout reproduces the unpadded computation bit for bit
//! (see `latte_nn::varlen` and the oracle's `varlen_props` property
//! test), so a length-5 sample served from the 8-bucket equals the same
//! sample run through a dedicated 5-step unroll.
//!
//! A [`SeqServer`] runs one dynamic-batching [`Server`] per bucket — so
//! only same-shaped (same-bucket) requests coalesce into a micro-batch —
//! over one shared plan cache, and counts **bucket spills**: requests
//! whose length was not already a bucket boundary and therefore paid
//! padding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use latte_core::dsl::Net;
use latte_core::OptLevel;
use latte_nn::varlen::{bucket_ladder, bucket_len, last_step_mask};
use latte_runtime::ExecConfig;

use crate::cache::PlanCache;
use crate::error::ServeError;
use crate::model::Model;
use crate::replica::{NoHooks, ReplicaHooks};
use crate::server::{Request, ServeConfig, Server, StatsSnapshot, Ticket};

/// A sequence-model factory: builds the net for a given `(batch,
/// bucket)` pair. Like [`crate::NetFactory`] it must be batch-invariant
/// at every bucket; across buckets the nets differ only in unroll depth
/// (same seeds, shared parameters).
pub type SeqNetFactory = Arc<dyn Fn(usize, usize) -> Net + Send + Sync>;

/// One variable-length inference request: the per-step inputs (the
/// sequence, in order) plus any non-step inputs (labels, extra
/// features) passed through verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqRequest {
    /// The sequence: one `step_width`-element vector per true step.
    pub steps: Vec<Vec<f32>>,
    /// Non-step inputs, matched by ensemble name (e.g. `"label"`).
    pub extra: Vec<(String, Vec<f32>)>,
}

/// Where admission sent a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index into [`SeqModel::buckets`].
    pub bucket_index: usize,
    /// The bucket (unroll depth) the request was padded to.
    pub bucket: usize,
    /// The request's true length.
    pub len: usize,
    /// Whether padding happened (`len` was not itself a bucket
    /// boundary).
    pub spilled: bool,
}

/// A ladder of bucket-specialized models over one sequence factory.
pub struct SeqModel {
    name: String,
    step_ensemble: String,
    step_width: usize,
    mask_ensemble: String,
    buckets: Vec<usize>,
    models: Vec<Arc<Model>>,
}

impl std::fmt::Debug for SeqModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqModel")
            .field("name", &self.name)
            .field("buckets", &self.buckets)
            .field("step_ensemble", &self.step_ensemble)
            .field("step_width", &self.step_width)
            .finish_non_exhaustive()
    }
}

impl SeqModel {
    /// Registers a sequence model over the bucket ladder covering
    /// lengths `1..=max_len`. `step_ensemble` names the recurrent input
    /// the factory's net unrolls (step `t` becomes `"{step}@t{t}"`);
    /// `mask_ensemble` names the readout mask admission fills with a
    /// [`last_step_mask`].
    ///
    /// Each bucket's model is probed like any fixed model; the probe
    /// additionally checks that every bucket yields a *distinct*
    /// fingerprint (buckets must not collide in the shared plan cache)
    /// and that the step/mask ensembles exist with consistent widths.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] when any bucket's probe fails or the
    /// factory's structure does not match the declared ensembles.
    pub fn new(
        name: impl Into<String>,
        factory: SeqNetFactory,
        opt: OptLevel,
        max_len: usize,
        step_ensemble: impl Into<String>,
        mask_ensemble: impl Into<String>,
        outputs: Vec<String>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let step_ensemble = step_ensemble.into();
        let mask_ensemble = mask_ensemble.into();
        if max_len == 0 {
            return Err(ServeError::Compile {
                detail: format!("{name}: max_len must be at least 1"),
            });
        }
        let buckets = bucket_ladder(max_len);
        let mut models = Vec::with_capacity(buckets.len());
        for &bucket in &buckets {
            let f = Arc::clone(&factory);
            let model = Model::new(
                format!("{name}@l{bucket}"),
                Box::new(move |batch| f(batch, bucket)),
                opt,
                outputs.clone(),
            )?;
            for t in 0..bucket {
                let step = format!("{step_ensemble}@t{t}");
                if !model.inputs().iter().any(|(n, _)| *n == step) {
                    return Err(ServeError::Compile {
                        detail: format!(
                            "{}: step input `{step}` missing from the bucket-{bucket} net",
                            model.name()
                        ),
                    });
                }
            }
            match model.inputs().iter().find(|(n, _)| *n == mask_ensemble) {
                Some((_, len)) if *len == bucket => {}
                Some((_, len)) => {
                    return Err(ServeError::Compile {
                        detail: format!(
                            "{}: mask `{mask_ensemble}` has {len} elements, expected {bucket}",
                            model.name()
                        ),
                    })
                }
                None => {
                    return Err(ServeError::Compile {
                        detail: format!(
                            "{}: mask input `{mask_ensemble}` missing",
                            model.name()
                        ),
                    })
                }
            }
            models.push(Arc::new(model));
        }
        let first_step = format!("{step_ensemble}@t0");
        let step_width = models[0]
            .inputs()
            .iter()
            .find(|(n, _)| *n == first_step)
            .map(|(_, len)| *len)
            .expect("checked above");
        for (i, a) in models.iter().enumerate() {
            for b in &models[i + 1..] {
                if a.fingerprint() == b.fingerprint() {
                    return Err(ServeError::Compile {
                        detail: format!(
                            "{name}: buckets {} and {} share fingerprint {:#x} — the factory \
                             ignores its bucket argument",
                            a.name(),
                            b.name(),
                            a.fingerprint()
                        ),
                    });
                }
            }
        }
        Ok(SeqModel {
            name,
            step_ensemble,
            step_width,
            mask_ensemble,
            buckets,
            models,
        })
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bucket ladder (ascending unroll depths).
    pub fn buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// The longest sequence admission accepts.
    pub fn max_len(&self) -> usize {
        *self.buckets.last().expect("ladder is never empty")
    }

    /// Per-step input width.
    pub fn step_width(&self) -> usize {
        self.step_width
    }

    /// The bucket-specialized model at ladder index `index`.
    pub fn model(&self, index: usize) -> &Arc<Model> {
        &self.models[index]
    }

    /// Which bucket a sequence of `len` true steps routes to.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an empty or over-long sequence.
    pub fn route(&self, len: usize) -> Result<Route, ServeError> {
        if len == 0 {
            return Err(ServeError::BadRequest {
                detail: "sequence has no steps".into(),
            });
        }
        if len > self.max_len() {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "sequence length {len} exceeds the model's maximum {}",
                    self.max_len()
                ),
            });
        }
        let bucket = bucket_len(len);
        let bucket_index = self
            .buckets
            .iter()
            .position(|&b| b == bucket)
            .expect("bucket_len lands on the ladder");
        Ok(Route {
            bucket_index,
            bucket,
            len,
            spilled: bucket != len,
        })
    }

    /// Admits a variable-length request: picks the bucket, zero-pads the
    /// step inputs to it, fills the one-hot last-step mask, zeroes any
    /// `@init` recurrent-state inputs not supplied in `extra`, and
    /// passes the rest of `extra` through. The resulting fixed-shape
    /// [`Request`] validates against the bucket's model.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an empty/over-long sequence, a
    /// step of the wrong width, or an `extra` entry that collides with
    /// a step or mask ensemble.
    pub fn admit(&self, req: &SeqRequest) -> Result<(Route, Request), ServeError> {
        let route = self.route(req.steps.len())?;
        for (t, step) in req.steps.iter().enumerate() {
            if step.len() != self.step_width {
                return Err(ServeError::BadRequest {
                    detail: format!(
                        "step {t} has {} elements, expected {}",
                        step.len(),
                        self.step_width
                    ),
                });
            }
        }
        let step_prefix = format!("{}@t", self.step_ensemble);
        for (n, _) in &req.extra {
            if n.starts_with(&step_prefix) || *n == self.mask_ensemble {
                return Err(ServeError::BadRequest {
                    detail: format!("extra input `{n}` collides with a routed ensemble"),
                });
            }
        }
        let model = &self.models[route.bucket_index];
        let mut inputs = Vec::with_capacity(model.inputs().len());
        for (ensemble, want) in model.inputs() {
            let values = if let Some(t) = ensemble
                .strip_prefix(&step_prefix)
                .and_then(|s| s.parse::<usize>().ok())
            {
                if t < route.len {
                    req.steps[t].clone()
                } else {
                    vec![0.0; *want]
                }
            } else if *ensemble == self.mask_ensemble {
                last_step_mask(route.len, route.bucket)
            } else if let Some((_, v)) = req.extra.iter().find(|(n, _)| n == ensemble) {
                v.clone()
            } else if ensemble.ends_with("@init") {
                // Unsupplied recurrent initial state starts at zero, the
                // unrolling semantics the paper specifies.
                vec![0.0; *want]
            } else {
                continue; // let the model's validate() report it
            };
            inputs.push((ensemble.clone(), values));
        }
        Ok((route, Request { inputs }))
    }
}

/// A [`Ticket`] that also remembers where admission routed the request.
#[derive(Debug)]
pub struct SeqTicket {
    route: Route,
    ticket: Ticket,
}

impl SeqTicket {
    /// The admission route (bucket, true length, spill flag).
    pub fn route(&self) -> Route {
        self.route
    }

    /// Blocks until the response arrives (see [`Ticket::wait`]).
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`].
    pub fn wait(self) -> Result<crate::server::Response, ServeError> {
        self.ticket.wait()
    }

    /// Blocks up to `timeout` (see [`Ticket::wait_timeout`]).
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait_timeout`].
    pub fn wait_timeout(
        self,
        timeout: std::time::Duration,
    ) -> Result<crate::server::Response, ServeError> {
        self.ticket.wait_timeout(timeout)
    }
}

/// A dynamic-shape server: one dynamic-batching [`Server`] per bucket
/// over one shared [`PlanCache`], with spill accounting.
pub struct SeqServer {
    model: Arc<SeqModel>,
    servers: Vec<Server>,
    cache: Arc<PlanCache>,
    spills: AtomicU64,
    routed: Vec<AtomicU64>,
}

impl std::fmt::Debug for SeqServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqServer")
            .field("model", &self.model.name())
            .field("buckets", &self.model.buckets())
            .field("bucket_spills", &self.bucket_spills())
            .finish_non_exhaustive()
    }
}

impl SeqServer {
    /// Starts one server per bucket with a private shared plan cache and
    /// no fault hooks.
    pub fn start(model: SeqModel, cfg: ServeConfig) -> SeqServer {
        let cache = Arc::new(PlanCache::new(ExecConfig {
            threads: cfg.threads,
            arena: false,
            gemm_blocking: None,
        }));
        Self::start_with(Arc::new(model), cfg, cache, Arc::new(NoHooks))
    }

    /// Starts with an explicit (possibly shared) plan cache and replica
    /// hooks; every bucket's server lowers through the same cache, which
    /// is what makes the cache effectively `(bucket, batch)`-keyed.
    pub fn start_with(
        model: Arc<SeqModel>,
        cfg: ServeConfig,
        cache: Arc<PlanCache>,
        hooks: Arc<dyn ReplicaHooks>,
    ) -> SeqServer {
        let servers = (0..model.buckets().len())
            .map(|i| {
                Server::start_with(
                    Arc::clone(model.model(i)),
                    cfg,
                    Arc::clone(&cache),
                    Arc::clone(&hooks),
                )
            })
            .collect::<Vec<_>>();
        let routed = (0..servers.len()).map(|_| AtomicU64::new(0)).collect();
        SeqServer {
            model,
            servers,
            cache,
            spills: AtomicU64::new(0),
            routed,
        }
    }

    /// Submits one variable-length request; admission pads and masks it,
    /// then it coalesces with other requests of the *same bucket* only.
    ///
    /// # Errors
    ///
    /// Admission errors ([`ServeError::BadRequest`]) plus everything
    /// [`Server::submit`] can return for the routed bucket.
    pub fn submit(&self, req: &SeqRequest) -> Result<SeqTicket, ServeError> {
        self.submit_with_deadline(req, None)
    }

    /// Submits with a client completion deadline (see
    /// [`Server::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// As [`SeqServer::submit`], plus [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        req: &SeqRequest,
        deadline: Option<Instant>,
    ) -> Result<SeqTicket, ServeError> {
        let (route, fixed) = self.model.admit(req)?;
        let ticket = self.servers[route.bucket_index].submit_with_deadline(fixed, deadline)?;
        // Counters move only after a successful admission, so spills
        // count executed work, not rejected requests.
        self.routed[route.bucket_index].fetch_add(1, Ordering::Relaxed);
        if route.spilled {
            self.spills.fetch_add(1, Ordering::Relaxed);
        }
        Ok(SeqTicket { route, ticket })
    }

    /// Force-flushes every bucket's coalescing batch.
    pub fn flush(&self) {
        for s in &self.servers {
            s.flush();
        }
    }

    /// Requests admitted per bucket (parallel to
    /// [`SeqModel::buckets`]).
    pub fn routed(&self) -> Vec<u64> {
        self.routed.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Admitted requests whose length was not a bucket boundary — they
    /// paid padding to ride a larger bucket instead of compiling a new
    /// program.
    pub fn bucket_spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// A field-wise sum of every bucket server's counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for s in &self.servers {
            let st = s.stats();
            total.submitted += st.submitted;
            total.completed += st.completed;
            total.rejected += st.rejected;
            total.failed += st.failed;
            total.batches += st.batches;
            total.flush_size += st.flush_size;
            total.flush_deadline += st.flush_deadline;
            total.flush_drain += st.flush_drain;
            total.retries += st.retries;
            total.crashes += st.crashes;
            total.restarts += st.restarts;
            total.max_depth = total.max_depth.max(st.max_depth);
            total.deadline_rejected += st.deadline_rejected;
            total.deadline_shed += st.deadline_shed;
            total.replies_dropped += st.replies_dropped;
            total.conn_accepted += st.conn_accepted;
            total.conn_rejected += st.conn_rejected;
            total.conn_timeouts += st.conn_timeouts;
            total.frames_corrupt += st.frames_corrupt;
        }
        total
    }

    /// One bucket's underlying server (parallel to
    /// [`SeqModel::buckets`]).
    pub fn server(&self, bucket_index: usize) -> &Server {
        &self.servers[bucket_index]
    }

    /// The shared plan cache every bucket lowers through.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The routed sequence model.
    pub fn model(&self) -> &SeqModel {
        &self.model
    }

    /// Gracefully drains and stops every bucket server.
    pub fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }
}

impl Drop for SeqServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use std::time::Duration;

    fn seq_model() -> SeqModel {
        zoo::seq_model(6).expect("zoo seq model registers")
    }

    #[test]
    fn ladder_models_have_distinct_fingerprints() {
        let m = seq_model();
        assert_eq!(m.buckets(), &[1, 2, 4, 8]);
        for i in 0..m.buckets().len() {
            for j in i + 1..m.buckets().len() {
                assert_ne!(m.model(i).fingerprint(), m.model(j).fingerprint());
            }
        }
    }

    #[test]
    fn routing_rounds_up_and_flags_spills() {
        let m = seq_model();
        let r = m.route(3).unwrap();
        assert_eq!((r.bucket, r.spilled), (4, true));
        let r = m.route(4).unwrap();
        assert_eq!((r.bucket, r.spilled), (4, false));
        assert!(m.route(0).is_err());
        assert!(m.route(9).is_err());
    }

    #[test]
    fn admission_pads_and_masks() {
        let m = seq_model();
        let req = zoo::seq_sample(3, 7);
        let (route, fixed) = m.admit(&req).unwrap();
        assert_eq!(route.bucket, 4);
        m.model(route.bucket_index)
            .validate(&fixed.inputs)
            .expect("admitted request validates");
        let get = |name: &str| -> &[f32] {
            &fixed.inputs.iter().find(|(n, _)| n == name).unwrap().1
        };
        assert_eq!(get("x@t0"), &req.steps[0][..]);
        assert_eq!(get("x@t2"), &req.steps[2][..]);
        assert!(get("x@t3").iter().all(|&v| v == 0.0), "padding must be zero");
        assert_eq!(get("lstm_last_mask"), &[0.0, 0.0, 1.0, 0.0]);
        assert!(get("lstm_h@init").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn admission_rejects_bad_widths_and_collisions() {
        let m = seq_model();
        let mut req = zoo::seq_sample(2, 3);
        req.steps[1].push(0.5);
        assert!(matches!(
            m.admit(&req),
            Err(ServeError::BadRequest { .. })
        ));
        let mut req = zoo::seq_sample(2, 3);
        req.extra.push(("x@t0".to_string(), vec![0.0; 3]));
        assert!(matches!(
            m.admit(&req),
            Err(ServeError::BadRequest { .. })
        ));
    }

    /// The dynamic-shape serving guarantee: any length's served output
    /// is bit-identical to the same admitted inputs run alone through a
    /// plain batch-1 executor of the routed bucket's net, mixed lengths
    /// share bucket plans (cache length == warmed buckets, not lengths),
    /// and odd lengths count as spills.
    #[test]
    fn mixed_lengths_serve_bit_identically_and_share_bucket_plans() {
        use latte_runtime::pool::WorkerPool;

        let model = seq_model();
        let server = SeqServer::start(
            zoo::seq_model(6).unwrap(),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let pool = Arc::new(WorkerPool::new(1));
        let mut spills = 0u64;
        for len in 1..=6usize {
            let req = zoo::seq_sample(len, 40 + len as u64);
            let (route, fixed) = model.admit(&req).unwrap();
            let ticket = server.submit(&req).unwrap();
            assert_eq!(ticket.route().bucket, route.bucket);
            server.flush();
            let resp = ticket.wait_timeout(Duration::from_secs(60)).unwrap();
            if route.spilled {
                spills += 1;
            }

            // Reference: the routed bucket net, compiled solo at batch 1.
            let compiled = model.model(route.bucket_index).compile_batch(1).unwrap();
            let program = latte_runtime::CompiledProgram::lower(
                compiled,
                &latte_runtime::registry::KernelRegistry::with_builtins(),
                latte_runtime::ExecConfig::default(),
            )
            .unwrap();
            let mut solo = program.instantiate(Arc::clone(&pool)).unwrap();
            for (name, v) in &fixed.inputs {
                solo.set_input(name, v).unwrap();
            }
            solo.forward();
            let want = solo.read_buffer("head.value").unwrap();
            let got = &resp.outputs[0].1;
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "len {len} output[{i}]: served {a} vs solo {b}"
                );
            }
        }
        assert_eq!(server.bucket_spills(), spills);
        assert_eq!(spills, 3, "lengths 3, 5, and 6 pad up to a larger bucket");
        let routed = server.routed();
        assert_eq!(routed.iter().sum::<u64>(), 6);
        // Six lengths, but only four buckets were ever compiled (each at
        // batch 1): the cache holds one plan per (bucket, batch) pair.
        assert_eq!(server.cache().len(), 4);
        assert_eq!(server.cache().misses(), 4);
    }
}
