//! The serving contract: batching is a scheduling decision, never a
//! numerics decision. A sample served in ANY micro-batch — any size
//! 1..=8, plan-cache miss or hit path — returns `head.value` bits
//! identical to the same sample run alone through a plain batch-1
//! `Executor::forward`, for every net in the oracle five-net suite.

mod common;

use std::sync::Arc;
use std::time::Duration;

use latte_runtime::{ExecConfig, Executor};
use latte_serve::{NoHooks, PlanCache, Request, ServeConfig, Server};
use proptest::prelude::*;

/// The case count, overridable by CI (`PROPTEST_CASES=16` for deeper
/// nightly sweeps).
fn proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        // Effectively "never": every flush in this test is size-driven
        // or an explicit drain, so batch composition is deterministic.
        max_delay: Duration::from_secs(3600),
        queue_cap: 256,
        replicas: 1,
        threads: 1,
        retry_limit: 1,
    }
}

/// A batch-1 reference executor for one net, reused across samples.
struct Reference {
    exec: Executor,
}

impl Reference {
    fn new(net_name: &str) -> Self {
        let net = common::factory(net_name)(1);
        let compiled = latte_core::compile(&net, &latte_core::OptLevel::full())
            .expect("reference compile");
        Reference {
            exec: Executor::new(compiled).expect("reference executor"),
        }
    }

    fn head(&mut self, req: &Request) -> Vec<f32> {
        for (ensemble, values) in &req.inputs {
            self.exec.set_input(ensemble, values).expect("reference input");
        }
        self.exec.forward();
        self.exec.read_item("head.value", 0).expect("reference output")
    }
}

/// Serves `size` samples as one micro-batch and checks each response
/// bit-for-bit against the reference, plus the expected cache path.
fn check_batch(
    server: &Server,
    reference: &mut Reference,
    net_name: &str,
    size: usize,
    seed: u64,
    expect_hit: bool,
) -> Result<(), TestCaseError> {
    let reqs: Vec<Request> = (0..size)
        .map(|i| common::sample(net_name, seed.wrapping_mul(8191).wrapping_add((size * 16 + i) as u64)))
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| server.submit(r.clone()).expect("submit"))
        .collect();
    server.flush();
    for (req, ticket) in reqs.iter().zip(tickets) {
        let resp = ticket
            .wait_timeout(Duration::from_secs(60))
            .map_err(|e| TestCaseError::Fail(format!("{net_name}@{size}: {e}")))?;
        prop_assert_eq!(resp.meta.batch_size, size, "{}@{}", net_name, size);
        prop_assert_eq!(
            resp.meta.cache_hit,
            expect_hit,
            "{}@{}: wrong cache path",
            net_name,
            size
        );
        let expected = reference.head(req);
        let (out_name, got) = &resp.outputs[0];
        prop_assert_eq!(out_name.as_str(), "head.value");
        prop_assert_eq!(got.len(), expected.len());
        for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{}@{} head[{}]: served {} vs solo {}",
                net_name,
                size,
                j,
                g,
                e
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(2)))]

    #[test]
    fn any_micro_batch_is_bit_identical_to_solo_execution(seed in 0u64..1_000_000) {
        for net_name in common::NETS {
            let mut reference = Reference::new(net_name);
            let cache = Arc::new(PlanCache::new(ExecConfig { threads: 1, arena: false, gemm_blocking: None }));

            // Miss path: a fresh cache, so each size lowers its plan.
            let server = Server::start_with(
                Arc::new(common::model(net_name)),
                serve_cfg(),
                Arc::clone(&cache),
                Arc::new(NoHooks),
            );
            for size in 1..=8usize {
                check_batch(&server, &mut reference, net_name, size, seed, false)?;
            }
            drop(server);

            // Hit path: a second server sharing the cache instantiates
            // warm executors from already-lowered plans — no recompiles.
            let misses_after_warmup = cache.misses();
            let server = Server::start_with(
                Arc::new(common::model(net_name)),
                serve_cfg(),
                Arc::clone(&cache),
                Arc::new(NoHooks),
            );
            for size in 1..=8usize {
                check_batch(&server, &mut reference, net_name, size, seed ^ 0x5a5a, true)?;
            }
            prop_assert_eq!(
                cache.misses(),
                misses_after_warmup,
                "{}: hit path recompiled",
                net_name
            );
        }
    }
}
