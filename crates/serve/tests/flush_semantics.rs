//! Deadline/flush policy and backpressure semantics.
//!
//! Assertions are structural (flush reasons, counters, structured
//! errors) — never on wall-clock durations, so the suite is stable on
//! loaded CI machines.

mod common;

use std::sync::Arc;
use std::time::Duration;

use latte_runtime::ExecConfig;
use latte_serve::{FlushReason, GateHooks, PlanCache, ServeConfig, Server, ServeError};

/// A deadline long enough that it never fires accidentally in tests
/// that only exercise size/drain flushes.
const NEVER: Duration = Duration::from_secs(3600);

#[test]
fn deadline_flush_releases_a_lone_straggler() {
    let server = Server::start(
        common::model("fc"),
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let ticket = server.submit(common::sample("fc", 1)).expect("submit");
    let resp = ticket.wait_timeout(Duration::from_secs(30)).expect("response");
    // One request can never fill max_batch=8: only the deadline (not a
    // size flush, not an explicit drain) can have released it.
    assert_eq!(resp.meta.flush, FlushReason::Deadline);
    assert_eq!(resp.meta.batch_size, 1);
    let stats = server.stats();
    assert_eq!(stats.flush_deadline, 1);
    assert_eq!(stats.flush_size, 0);
    assert_eq!(stats.completed, 1);
}

#[test]
fn size_flush_fires_before_the_deadline_under_a_burst() {
    let server = Server::start(
        common::model("fc"),
        ServeConfig {
            max_batch: 4,
            max_delay: NEVER,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..4)
        .map(|i| server.submit(common::sample("fc", 100 + i)).expect("submit"))
        .collect();
    // No flush() call and an unreachable deadline: if the size trigger
    // were broken these waits would time out.
    for t in tickets {
        let resp = t.wait_timeout(Duration::from_secs(30)).expect("response");
        assert_eq!(resp.meta.flush, FlushReason::Size);
        assert_eq!(resp.meta.batch_size, 4);
    }
    let stats = server.stats();
    assert_eq!(stats.flush_size, 1);
    assert_eq!(stats.flush_deadline, 0);
}

#[test]
fn manual_flush_drains_a_partial_batch() {
    let server = Server::start(
        common::model("fc"),
        ServeConfig {
            max_batch: 8,
            max_delay: NEVER,
            ..ServeConfig::default()
        },
    );
    let a = server.submit(common::sample("fc", 7)).expect("submit");
    let b = server.submit(common::sample("fc", 8)).expect("submit");
    server.flush();
    for t in [a, b] {
        let resp = t.wait_timeout(Duration::from_secs(30)).expect("response");
        assert_eq!(resp.meta.flush, FlushReason::Drain);
        assert_eq!(resp.meta.batch_size, 2);
    }
    assert_eq!(server.stats().flush_drain, 1);
}

#[test]
fn slow_client_backpressure_bounds_the_queue() {
    // A closed gate wedges the replica, modeling a consumer that stops
    // draining: admitted work piles up against the admission cap.
    let gate = Arc::new(GateHooks::new());
    let cap = 4;
    let server = Server::start_with(
        Arc::new(common::model("fc")),
        ServeConfig {
            max_batch: 1, // every submit becomes a job immediately
            max_delay: NEVER,
            queue_cap: cap,
            replicas: 1,
            threads: 1,
            retry_limit: 1,
        },
        Arc::new(PlanCache::new(ExecConfig {
            threads: 1,
            arena: false,
            gemm_blocking: None,
        })),
        Arc::clone(&gate) as Arc<dyn latte_serve::ReplicaHooks>,
    );

    let tickets: Vec<_> = (0..cap)
        .map(|i| server.submit(common::sample("fc", 200 + i as u64)).expect("admit"))
        .collect();

    // The cap-plus-first submit is refused with structured overload —
    // no unbounded queue, no panic — and depth never exceeded the cap.
    let err = server.submit(common::sample("fc", 999)).expect_err("over cap");
    assert_eq!(
        err,
        ServeError::Overloaded {
            depth: cap,
            capacity: cap
        }
    );
    assert_eq!(server.stats().rejected, 1);
    assert_eq!(server.stats().max_depth, cap);

    // Releasing the gate drains everything that was admitted...
    gate.open();
    for t in tickets {
        t.wait_timeout(Duration::from_secs(30)).expect("drained response");
    }
    // ...and the server accepts new work again.
    let t = server.submit(common::sample("fc", 1000)).expect("admitted again");
    t.wait_timeout(Duration::from_secs(30)).expect("post-overload response");
    let stats = server.stats();
    assert_eq!(stats.completed, cap as u64 + 1);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn bad_requests_are_rejected_before_admission() {
    let server = Server::start(common::model("fc"), ServeConfig::default());
    // Missing label.
    let mut req = common::sample("fc", 3);
    req.inputs.retain(|(n, _)| n != "label");
    assert!(matches!(
        server.submit(req),
        Err(ServeError::BadRequest { .. })
    ));
    // Wrong per-item length.
    let mut req = common::sample("fc", 3);
    req.inputs[0].1.push(0.0);
    assert!(matches!(
        server.submit(req),
        Err(ServeError::BadRequest { .. })
    ));
    // Rejection happens before admission: nothing was admitted.
    assert_eq!(server.stats().submitted, 0);
    assert_eq!(server.stats().max_depth, 0);
}
