//! Loopback-TCP integration: real sockets against the framed front-end
//! and the `latte-served` binary. Covers the well-behaved path (bit
//! identity with in-process submission), every adversary in the
//! [`Misbehavior`] vocabulary, and the SIGTERM graceful drain.

mod common;

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use latte_serve::loadgen::{misbehaviors, Misbehavior};
use latte_serve::net::{run_adversary, AdversaryOutcome, ServerMsg};
use latte_serve::{Client, NetConfig, NetError, NetFrontend, ServeConfig, Server, WireError};

const PATIENCE: Duration = Duration::from_secs(10);

fn frontend_with(
    net: &str,
    serve_cfg: ServeConfig,
    net_cfg: NetConfig,
) -> (Arc<Server>, NetFrontend) {
    let server = Arc::new(Server::start(common::model(net), serve_cfg));
    let frontend =
        NetFrontend::bind(Arc::clone(&server), "127.0.0.1:0", net_cfg).expect("bind loopback");
    (server, frontend)
}

fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn tcp_replies_are_bit_identical_to_in_process_submission() {
    for net in ["fc", "lstm"] {
        let (server, frontend) =
            frontend_with(net, ServeConfig::default(), NetConfig::default());
        let mut client = Client::connect(frontend.addr(), PATIENCE).expect("connect");
        assert_eq!(client.hello().model, net);
        assert_eq!(client.hello().fingerprint, server.model().fingerprint());
        for seed in 0..6u64 {
            let req = common::sample(net, seed);
            let reply = client
                .call(seed, req.inputs.clone(), None)
                .expect("tcp call");
            assert_eq!(reply.id, seed);
            // The same sample through the in-process path...
            let direct = server
                .submit(req.clone())
                .expect("in-process submit")
                .wait()
                .expect("in-process reply");
            assert_eq!(
                reply.outputs, direct.outputs,
                "{net} sample {seed}: wire and in-process replies differ"
            );
            // ...and against the plain batch-1 oracle, bit for bit.
            let oracle = common::reference(net, &req);
            let wire_head = &reply
                .outputs
                .iter()
                .find(|(name, _)| name == "head.value")
                .expect("head.value on the wire")
                .1;
            assert_eq!(wire_head, &oracle, "{net} sample {seed} vs oracle");
        }
        client.bye().expect("polite close");
        frontend.close();
        server.shutdown();
    }
}

#[test]
fn health_frames_report_readiness_and_counters() {
    let (server, frontend) = frontend_with("fc", ServeConfig::default(), NetConfig::default());
    let mut client = Client::connect(frontend.addr(), PATIENCE).expect("connect");
    let h = client.health().expect("health round trip");
    assert!(!h.draining);
    assert_eq!(h.capacity, server.config().queue_cap);
    assert_eq!(h.stats.conn_accepted, 1);
    let req = common::sample("fc", 0);
    client.call(1, req.inputs, None).expect("call");
    let h2 = client.health().expect("health after a request");
    assert_eq!(h2.stats.completed, 1);
    assert_eq!(h2.stats.submitted, 1);
    client.bye().expect("bye");
    frontend.close();
}

#[test]
fn the_connection_cap_refuses_with_a_structured_frame() {
    let (server, frontend) = frontend_with(
        "fc",
        ServeConfig::default(),
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    );
    let _first = Client::connect(frontend.addr(), PATIENCE).expect("first connect");
    let second = Client::connect(frontend.addr(), PATIENCE);
    match second {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireError::ConnLimit),
        other => panic!("over-cap connect should be refused, got {other:?}"),
    }
    assert!(wait_for(|| server.stats().conn_rejected == 1));
    frontend.close();
}

#[test]
fn a_slow_loris_is_reclaimed_by_the_read_timeout() {
    let (server, frontend) = frontend_with(
        "fc",
        ServeConfig::default(),
        NetConfig {
            read_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        },
    );
    let outcome = run_adversary(frontend.addr(), &Misbehavior::HoldOpen, PATIENCE)
        .expect("hold-open adversary runs");
    assert_eq!(outcome, AdversaryOutcome::Closed);
    assert!(wait_for(|| server.stats().conn_timeouts == 1));
    // The server is unharmed: a well-behaved client still gets served.
    let mut client = Client::connect(frontend.addr(), PATIENCE).expect("connect after loris");
    client
        .call(1, common::sample("fc", 1).inputs, None)
        .expect("call after loris");
    frontend.close();
}

#[test]
fn a_corrupt_frame_draws_a_bad_frame_error_and_a_close() {
    let (server, frontend) = frontend_with("fc", ServeConfig::default(), NetConfig::default());
    let outcome = run_adversary(frontend.addr(), &Misbehavior::CorruptCrc, PATIENCE)
        .expect("corrupt-crc adversary runs");
    assert_eq!(outcome, AdversaryOutcome::Rejected(vec![WireError::BadFrame]));
    assert!(wait_for(|| server.stats().frames_corrupt == 1));
    frontend.close();
}

#[test]
fn a_mid_frame_disconnect_is_cleaned_up() {
    let (server, frontend) = frontend_with("fc", ServeConfig::default(), NetConfig::default());
    let outcome = run_adversary(frontend.addr(), &Misbehavior::MidFrameDisconnect, PATIENCE)
        .expect("mid-frame adversary runs");
    assert_eq!(outcome, AdversaryOutcome::Closed);
    // The truncated connection wound down; service continues.
    let mut client = Client::connect(frontend.addr(), PATIENCE).expect("connect after truncation");
    client
        .call(1, common::sample("fc", 2).inputs, None)
        .expect("call after truncation");
    client.bye().expect("bye");
    // close() proves the wind-down: every thread joined, no leaks.
    frontend.close();
    assert!(server.stats().conn_accepted >= 2);
}

#[test]
fn a_past_deadline_flood_is_fully_rejected_or_shed_and_never_executed() {
    let flood = 16usize;
    let (server, frontend) = frontend_with(
        "fc",
        ServeConfig {
            // A batch bigger than the flood so nothing flushes on size:
            // every expired request must go through admission or shed.
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            ..ServeConfig::default()
        },
        NetConfig::default(),
    );
    let outcome = run_adversary(
        frontend.addr(),
        &Misbehavior::PastDeadlineFlood { requests: flood },
        PATIENCE,
    )
    .expect("flood adversary runs");
    match outcome {
        AdversaryOutcome::Rejected(codes) => {
            assert_eq!(codes.len(), flood);
            assert!(
                codes.iter().all(|c| *c == WireError::DeadlineExceeded),
                "every flooded request draws DeadlineExceeded: {codes:?}"
            );
        }
        other => panic!("flood should be rejected, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(
        stats.deadline_rejected + stats.deadline_shed,
        flood as u64,
        "every flooded request is accounted to a deadline counter: {stats:?}"
    );
    assert_eq!(stats.batches, 0, "an expired flood must execute nothing");
    frontend.close();
}

#[test]
fn a_mixed_fleet_of_clients_and_adversaries_coexists() {
    let flood = 8usize;
    let (server, frontend) = frontend_with(
        "fc",
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            ..ServeConfig::default()
        },
        NetConfig {
            read_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        },
    );
    let addr = frontend.addr();
    let adversaries = misbehaviors(6, 0xC0FFEE, flood);
    let floods: u64 = adversaries
        .iter()
        .filter(|m| matches!(m, Misbehavior::PastDeadlineFlood { .. }))
        .count() as u64
        * flood as u64;
    let corrupt: u64 = adversaries
        .iter()
        .filter(|m| matches!(m, Misbehavior::CorruptCrc))
        .count() as u64;
    let mut threads = Vec::new();
    for m in adversaries {
        threads.push(std::thread::spawn(move || {
            run_adversary(addr, &m, PATIENCE).expect("adversary terminates cleanly");
        }));
    }
    let well_behaved = 3usize;
    let per_client = 6u64;
    let mut clients = Vec::new();
    for c in 0..well_behaved as u64 {
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, PATIENCE).expect("connect");
            for i in 0..per_client {
                let seed = c * 100 + i;
                let req = common::sample("fc", seed);
                let reply = client
                    .call(seed, req.inputs.clone(), None)
                    .expect("well-behaved call during chaos");
                let oracle = common::reference("fc", &req);
                let head = &reply
                    .outputs
                    .iter()
                    .find(|(n, _)| n == "head.value")
                    .expect("head.value")
                    .1;
                assert_eq!(head, &oracle, "client {c} request {i} diverged");
            }
            client.bye().expect("bye");
        }));
    }
    for t in threads {
        t.join().expect("adversary thread");
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, well_behaved as u64 * per_client);
    assert_eq!(stats.deadline_rejected + stats.deadline_shed, floods);
    assert_eq!(stats.frames_corrupt, corrupt);
    frontend.close();
    server.shutdown();
}

#[test]
fn closing_the_frontend_mid_connection_leaks_nothing() {
    let (server, frontend) = frontend_with("fc", ServeConfig::default(), NetConfig::default());
    let mut client = Client::connect(frontend.addr(), PATIENCE).expect("connect");
    client
        .call(1, common::sample("fc", 3).inputs, None)
        .expect("call");
    // Drain order: server first (answers admitted work), then the
    // front-end (flushes reply queues, joins all threads).
    server.shutdown();
    frontend.close();
    // The abandoned client observes EOF, not a hang.
    match client.recv() {
        Err(NetError::Io { .. }) => {}
        other => panic!("expected EOF after close, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The binary, end to end
// ---------------------------------------------------------------------------

struct Served {
    child: Child,
    addr: std::net::SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_served(extra: &[&str]) -> Served {
    let mut child = Command::new(env!("CARGO_BIN_EXE_latte-served"))
        .args(["--addr", "127.0.0.1:0", "--model", "fc"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn latte-served");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("ready line");
    let addr = ready
        .split_whitespace()
        .nth(3)
        .expect("address on the ready line")
        .parse()
        .expect("parseable address");
    Served {
        child,
        addr,
        stdout,
    }
}

impl Served {
    fn terminate(mut self) -> String {
        Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        let status = self.child.wait().expect("latte-served exits");
        assert!(status.success(), "drain must exit 0, got {status:?}");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("final output");
        rest
    }
}

#[test]
fn the_binary_serves_drains_on_sigterm_and_reports_counters() {
    let served = spawn_served(&["--read-timeout-ms", "300"]);
    // Well-behaved traffic.
    let mut client = Client::connect(served.addr, PATIENCE).expect("connect to binary");
    for seed in 0..4u64 {
        let req = common::sample("fc", seed);
        let reply = client.call(seed, req.inputs.clone(), None).expect("call");
        let oracle = common::reference("fc", &req);
        let head = &reply
            .outputs
            .iter()
            .find(|(n, _)| n == "head.value")
            .expect("head.value")
            .1;
        assert_eq!(head, &oracle, "binary reply diverged from the oracle");
    }
    // Adversaries against the real process, concurrently.
    let addr = served.addr;
    let adversary_threads: Vec<_> = [
        Misbehavior::HoldOpen,
        Misbehavior::MidFrameDisconnect,
        Misbehavior::CorruptCrc,
        Misbehavior::PastDeadlineFlood { requests: 5 },
    ]
    .into_iter()
    .map(|m| {
        std::thread::spawn(move || {
            run_adversary(addr, &m, PATIENCE).expect("adversary vs binary terminates")
        })
    })
    .collect();
    for t in adversary_threads {
        t.join().expect("adversary thread");
    }
    // The first client sat idle through the adversary phase, so the
    // slow-loris reclaim may legitimately have taken it too — probe
    // health over a fresh connection.
    drop(client);
    let mut probe = Client::connect(served.addr, PATIENCE).expect("health reconnect");
    let health = probe.health().expect("health from binary");
    assert!(!health.draining);
    assert_eq!(health.stats.completed, 4);
    assert_eq!(health.stats.frames_corrupt, 1);
    assert!(health.stats.conn_timeouts >= 1, "{:?}", health.stats);
    assert_eq!(
        health.stats.deadline_rejected + health.stats.deadline_shed,
        5
    );
    probe.bye().expect("bye");
    let summary = served.terminate();
    assert!(
        summary.contains("drained cleanly"),
        "missing drain summary: {summary}"
    );
    assert!(summary.contains("frames_corrupt=1"), "{summary}");
}

#[test]
fn sigterm_mid_flight_answers_admitted_work_before_exit() {
    // A long coalescing window: requests sit in the batcher when the
    // signal lands, so the drain path itself must flush and answer them.
    let served = spawn_served(&["--max-batch", "64", "--max-delay-ms", "2000"]);
    let mut client = Client::connect(served.addr, PATIENCE).expect("connect");
    for id in 0..3u64 {
        client
            .send_request(id, common::sample("fc", id).inputs, None)
            .expect("pipelined send");
    }
    // Give the reader a moment to admit all three, then pull the plug.
    std::thread::sleep(Duration::from_millis(200));
    Command::new("kill")
        .args(["-TERM", &served.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    // All three answers arrive through the drain, long before the 2 s
    // coalescing deadline would have flushed them.
    let mut answered = 0;
    while answered < 3 {
        match client.recv().expect("drained reply") {
            ServerMsg::Reply(_) => answered += 1,
            other => panic!("expected drained replies, got {other:?}"),
        }
    }
    let mut child = served.child;
    let status = child.wait().expect("exit");
    assert!(status.success(), "drain must exit 0, got {status:?}");
}

/// Randomized chaos-client soak, gated behind `LATTE_FAULT_SWEEP=1`
/// (nightly CI, same switch as the transport sweep): adversarial
/// schedules derived from random training-side fault plans must never
/// hang the front-end, panic it, or perturb a single well-behaved
/// reply — and every flooded past-deadline request must be accounted
/// for by the shedding counters, never executed.
#[test]
fn randomized_chaos_client_soak() {
    if std::env::var("LATTE_FAULT_SWEEP").is_err() {
        return;
    }
    use latte_runtime::fault::{FaultPlan, FaultRates};
    use latte_serve::loadgen::misbehaviors_from_plan;

    const FLOOD: usize = 8;
    const NODES: usize = 3;
    const ITERS: usize = 3;
    let rates = FaultRates {
        crash: 0.15,
        ..FaultRates::default()
    };
    for seed in 0..4u64 {
        let plan = FaultPlan::random(seed, NODES, ITERS, 1, &rates);
        let (server, frontend) = frontend_with(
            "fc",
            ServeConfig::default(),
            NetConfig {
                read_timeout: Duration::from_millis(200),
                ..NetConfig::default()
            },
        );
        let addr = frontend.addr();
        let schedules: Vec<_> = (0..NODES)
            .map(|node| misbehaviors_from_plan(&plan, node, ITERS, FLOOD))
            .collect();
        let expected_floods: u64 = schedules
            .iter()
            .flatten()
            .map(|m| match m {
                Misbehavior::PastDeadlineFlood { requests } => *requests as u64,
                _ => 0,
            })
            .sum();
        let adversaries: Vec<_> = schedules
            .into_iter()
            .map(|schedule| {
                std::thread::spawn(move || {
                    for m in &schedule {
                        run_adversary(addr, m, PATIENCE)
                            .unwrap_or_else(|e| panic!("seed {seed}: {m:?} drew {e}"));
                    }
                })
            })
            .collect();
        // A well-behaved client keeps its oracle identity through the
        // whole storm.
        let mut client = Client::connect(addr, PATIENCE).expect("connect amid chaos");
        for i in 0..10u64 {
            let req = common::sample("fc", seed * 100 + i);
            let reply = client
                .call(i, req.inputs.clone(), None)
                .expect("healthy call amid chaos");
            let oracle = common::reference("fc", &req);
            let head = &reply
                .outputs
                .iter()
                .find(|(name, _)| name == "head.value")
                .expect("head.value on the wire")
                .1;
            assert_eq!(head, &oracle, "seed {seed} sample {i}: chaos perturbed a reply");
        }
        for h in adversaries {
            h.join().expect("an adversary thread panicked");
        }
        client.bye().expect("bye");
        server.shutdown();
        frontend.close();
        let stats = server.stats();
        assert_eq!(
            stats.deadline_rejected + stats.deadline_shed,
            expected_floods,
            "seed {seed}: every flooded request must be rejected or shed"
        );
        assert_eq!(server.depth(), 0, "seed {seed}: a request leaked a queue slot");
    }
}
