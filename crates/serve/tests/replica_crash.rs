//! Replica-crash-mid-batch supervision: in-flight requests are retried
//! on a live replica, the supervisor's restart counter increments, ids
//! are never reused, and exhausted retries surface as structured
//! `ServeError::ReplicaFailed` — while retried results stay
//! bit-identical to solo execution.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use latte_runtime::fault::{Fault, FaultPlan};
use latte_runtime::ExecConfig;
use latte_serve::{
    BatchAction, FaultHooks, PlanCache, ReplicaHooks, Request, ServeConfig, ServeError, Server,
};

const NEVER: Duration = Duration::from_secs(3600);

fn cfg(replicas: usize) -> ServeConfig {
    ServeConfig {
        max_batch: 2,
        max_delay: NEVER,
        queue_cap: 64,
        replicas,
        threads: 1,
        retry_limit: 1,
    }
}

fn start(replicas: usize, hooks: Arc<dyn ReplicaHooks>) -> Server {
    Server::start_with(
        Arc::new(common::model("fc")),
        cfg(replicas),
        Arc::new(PlanCache::new(ExecConfig {
            threads: 1,
            arena: false,
            gemm_blocking: None,
        })),
        hooks,
    )
}

fn assert_bit_identical(net: &str, req: &Request, got: &[(String, Vec<f32>)]) {
    let expected = common::reference(net, req);
    assert_eq!(got[0].0, "head.value");
    assert_eq!(got[0].1.len(), expected.len());
    for (g, e) in got[0].1.iter().zip(&expected) {
        assert_eq!(g.to_bits(), e.to_bits(), "retried result diverged from solo run");
    }
}

#[test]
fn crashed_batch_is_retried_once_on_a_replacement_replica() {
    // `runtime::fault` drives the injection: replica 0 dies at its first
    // batch. NodeCrash is persistent, but the replacement gets a fresh,
    // never-reused id (1), which the plan does not name.
    let hooks = Arc::new(FaultHooks::new(FaultPlan::new(vec![Fault::NodeCrash {
        node: 0,
        iter: 0,
    }])));
    let server = start(1, hooks);

    let reqs = [common::sample("fc", 31), common::sample("fc", 32)];
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| server.submit(r.clone()).expect("submit"))
        .collect();
    for (req, t) in reqs.iter().zip(tickets) {
        let resp = t.wait_timeout(Duration::from_secs(30)).expect("retried response");
        assert_eq!(resp.meta.retried, 1, "retried exactly once");
        assert_eq!(resp.meta.replica, 1, "served by the replacement replica");
        assert_bit_identical("fc", req, &resp.outputs);
    }
    let stats = server.stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1, "supervisor restart counter");
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn exhausted_retries_fail_with_structured_error_and_server_survives() {
    // Both the original replica and its replacement die at their first
    // batch; with retry_limit=1 the job then fails outward.
    let hooks = Arc::new(FaultHooks::new(FaultPlan::new(vec![
        Fault::NodeCrash { node: 0, iter: 0 },
        Fault::NodeCrash { node: 1, iter: 0 },
    ])));
    let server = start(1, hooks);

    let tickets: Vec<_> = (0..2)
        .map(|i| server.submit(common::sample("fc", 40 + i)).expect("submit"))
        .collect();
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(30)) {
            Err(ServeError::ReplicaFailed { retries, .. }) => assert_eq!(retries, 1),
            other => panic!("expected ReplicaFailed, got {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.crashes, 2);
    assert_eq!(stats.restarts, 2);
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 0);

    // The server is still alive: replica 2 serves the next batch clean.
    let req = common::sample("fc", 50);
    let t = server.submit(req.clone()).expect("submit after failure");
    server.flush();
    let resp = t.wait_timeout(Duration::from_secs(30)).expect("post-crash response");
    assert_eq!(resp.meta.replica, 2);
    assert_eq!(resp.meta.retried, 0);
    assert_bit_identical("fc", &req, &resp.outputs);
}

/// Crashes whichever replica first picks up a batch, exactly once, and
/// records the victim's id.
#[derive(Debug, Default)]
struct CrashFirst {
    fired: AtomicBool,
    victim: Mutex<Option<usize>>,
}

impl ReplicaHooks for CrashFirst {
    fn on_batch(&self, replica: usize, _seq: u64, _size: usize) -> BatchAction {
        if self.fired.swap(true, Ordering::SeqCst) {
            BatchAction::Proceed
        } else {
            *self.victim.lock().unwrap() = Some(replica);
            BatchAction::Crash
        }
    }
}

#[test]
fn surviving_replica_picks_up_the_retried_batch() {
    let hooks = Arc::new(CrashFirst::default());
    let server = start(2, Arc::clone(&hooks) as Arc<dyn ReplicaHooks>);

    let reqs = [common::sample("fc", 61), common::sample("fc", 62)];
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| server.submit(r.clone()).expect("submit"))
        .collect();
    let victim = {
        let mut responses = Vec::new();
        for (req, t) in reqs.iter().zip(tickets) {
            let resp = t.wait_timeout(Duration::from_secs(30)).expect("response");
            assert_eq!(resp.meta.retried, 1);
            assert_bit_identical("fc", req, &resp.outputs);
            responses.push(resp);
        }
        let victim = hooks.victim.lock().unwrap().expect("a replica crashed");
        for resp in &responses {
            assert_ne!(
                resp.meta.replica, victim,
                "retried batch must land on a live replica, not the dead one"
            );
        }
        victim
    };
    assert!(victim < 2, "victim was one of the two original replicas");
    let stats = server.stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.completed, 2);
}
