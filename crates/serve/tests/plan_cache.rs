//! Plan-cache behavior: fingerprints are batch-invariant, tail batches
//! reuse cached plans (zero recompiles after warmup — the hit counter
//! is asserted, not assumed), and non-batch-invariant factories are
//! rejected at lowering time.

mod common;

use std::sync::Arc;
use std::time::Duration;

use latte_core::OptLevel;
use latte_nn::layers::{data, fully_connected, softmax_loss};
use latte_runtime::ExecConfig;
use latte_serve::{Model, NoHooks, PlanCache, ServeConfig, ServeError, Server};

const NEVER: Duration = Duration::from_secs(3600);

#[test]
fn fingerprints_are_batch_invariant_and_distinguish_nets() {
    for name in common::NETS {
        let at = |batch: usize| {
            latte_core::compile(&common::factory(name)(batch), &OptLevel::full())
                .expect("compile")
                .fingerprint()
        };
        assert_eq!(at(2), at(5), "{name}: fingerprint must not depend on batch");
    }
    let fingerprints: Vec<u64> = common::NETS
        .iter()
        .map(|n| common::model(n).fingerprint())
        .collect();
    for i in 0..fingerprints.len() {
        for j in i + 1..fingerprints.len() {
            assert_ne!(
                fingerprints[i], fingerprints[j],
                "{} and {} collide",
                common::NETS[i],
                common::NETS[j]
            );
        }
    }
}

#[test]
fn tail_batches_never_recompile_after_warmup() {
    let cache = Arc::new(PlanCache::new(ExecConfig {
        threads: 1,
        arena: false,
        gemm_blocking: None,
    }));
    let server = Server::start_with(
        Arc::new(common::model("classifier")),
        ServeConfig {
            max_batch: 4,
            max_delay: NEVER,
            ..ServeConfig::default()
        },
        Arc::clone(&cache),
        Arc::new(NoHooks),
    );

    // Batch sizes 4,3,4,3,4: two distinct sizes, five batches.
    let sizes = [4usize, 3, 4, 3, 4];
    let mut seed = 0u64;
    let mut first_seen = std::collections::HashSet::new();
    for (round, &size) in sizes.iter().enumerate() {
        let tickets: Vec<_> = (0..size)
            .map(|_| {
                seed += 1;
                server.submit(common::sample("classifier", seed)).expect("submit")
            })
            .collect();
        server.flush(); // no-op for full batches (already size-flushed)
        let expect_hit = !first_seen.insert(size);
        for t in tickets {
            let resp = t.wait_timeout(Duration::from_secs(30)).expect("response");
            assert_eq!(resp.meta.batch_size, size, "round {round}");
            assert_eq!(
                resp.meta.cache_hit, expect_hit,
                "round {round} size {size}: wrong cache path"
            );
        }
    }

    // Two misses (first size-4 and first size-3 batch), hits for the
    // other three batches, and — the serving guarantee — zero
    // recompiles after warmup.
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 3);
    assert_eq!(cache.len(), 2);
    let warm_misses = cache.misses();
    let tickets: Vec<_> = (0..4)
        .map(|i| server.submit(common::sample("classifier", 1000 + i)).expect("submit"))
        .collect();
    for t in tickets {
        assert!(t.wait_timeout(Duration::from_secs(30)).expect("response").meta.cache_hit);
    }
    assert_eq!(cache.misses(), warm_misses, "recompile after warmup");
}

#[test]
fn non_batch_invariant_factories_are_rejected() {
    // A factory that derives a layer seed from the batch size builds
    // *different* nets per batch — the cache's fingerprint cross-check
    // must refuse it rather than serve inconsistent results.
    let model = Model::new(
        "shapeshifter",
        Box::new(|batch| {
            let mut net = latte_core::dsl::Net::new(batch);
            let x = data(&mut net, "data", vec![4]);
            let head = fully_connected(&mut net, "head", x, 3, batch as u64);
            let label = data(&mut net, "label", vec![1]);
            softmax_loss(&mut net, "loss", head, label);
            net
        }),
        OptLevel::full(),
        vec!["head.value".to_string()],
    )
    .expect("probe compile succeeds");
    let cache = PlanCache::new(ExecConfig {
        threads: 1,
        arena: false,
        gemm_blocking: None,
    });
    // Batch 1 matches the probe; any other batch changes the seed and
    // must be caught.
    assert!(cache.get(&model, 1).is_ok());
    match cache.get(&model, 2) {
        Err(ServeError::Compile { detail }) => {
            assert!(detail.contains("not batch-invariant"), "detail: {detail}")
        }
        other => panic!("expected Compile error, got {other:?}"),
    }
}
