//! Deadline propagation and reply-sink hygiene at the [`Server`] layer:
//! admission-time rejection, flush-time shedding, abandoned tickets,
//! and the draining state machine — all without a socket in sight.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use latte_serve::{GateHooks, PlanCache, ServeConfig, ServeError, Server};

fn server_with(cfg: ServeConfig) -> Server {
    Server::start(common::model("fc"), cfg)
}

/// Polls `cond` for up to two seconds — counters move on other threads.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn a_past_deadline_is_rejected_before_occupying_a_queue_slot() {
    let server = server_with(ServeConfig::default());
    let req = common::sample("fc", 1);
    let err = server
        .submit_with_deadline(req.clone(), Some(Instant::now() - Duration::from_millis(5)))
        .expect_err("a dead-on-arrival request must be refused");
    assert!(matches!(err, ServeError::DeadlineExceeded { late_by } if late_by > Duration::ZERO));
    let stats = server.stats();
    assert_eq!(stats.deadline_rejected, 1);
    // It never occupied a slot: nothing was submitted, depth unmoved.
    assert_eq!(stats.submitted, 0);
    assert_eq!(server.depth(), 0);
    // The server is still perfectly serviceable.
    let t = server.submit(req).expect("healthy submit after a rejection");
    server.flush();
    t.wait().expect("healthy request completes");
}

#[test]
fn a_deadline_expiring_during_coalescing_is_shed_at_flush() {
    // A huge max_batch and max_delay so nothing flushes on its own:
    // the test drives the flush explicitly after the deadline passed.
    let server = server_with(ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_secs(60),
        ..ServeConfig::default()
    });
    let live = server
        .submit(common::sample("fc", 2))
        .expect("live submit");
    let doomed = server
        .submit_with_deadline(
            common::sample("fc", 3),
            Some(Instant::now() + Duration::from_millis(20)),
        )
        .expect("the deadline is still ahead at admission");
    std::thread::sleep(Duration::from_millis(40));
    server.flush();
    // The expired request is answered with the structured error...
    let err = doomed.wait().expect_err("expired request must not execute");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }));
    // ...while its batch-mate executes normally.
    let resp = live.wait().expect("live request completes");
    assert_eq!(resp.meta.batch_size, 1, "the shed request left the batch");
    assert!(wait_for(|| {
        let s = server.stats();
        s.deadline_shed == 1 && s.completed == 1
    }));
}

#[test]
fn an_all_expired_batch_executes_nothing() {
    let server = server_with(ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_secs(60),
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit_with_deadline(
                    common::sample("fc", i),
                    Some(Instant::now() + Duration::from_millis(10)),
                )
                .expect("admitted while the deadline was ahead")
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    server.flush();
    for t in tickets {
        assert!(matches!(
            t.wait(),
            Err(ServeError::DeadlineExceeded { .. })
        ));
    }
    let stats = server.stats();
    assert_eq!(stats.deadline_shed, 3);
    assert_eq!(stats.batches, 0, "an all-expired flush must run no batch");
    assert_eq!(server.depth(), 0, "shed requests release their slots");
}

#[test]
fn an_abandoned_ticket_is_detected_and_its_reply_dropped() {
    let gate = Arc::new(GateHooks::new());
    let cache = Arc::new(PlanCache::new(latte_runtime::ExecConfig {
        threads: 1,
        arena: false,
        gemm_blocking: None,
    }));
    let server = Server::start_with(
        Arc::new(common::model("fc")),
        ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        },
        cache,
        gate.clone(),
    );
    let ticket = server.submit(common::sample("fc", 4)).expect("submit");
    // The client walks away while its batch is gated in flight.
    drop(ticket);
    gate.open();
    assert!(
        wait_for(|| {
            let s = server.stats();
            s.completed == 1 && s.replies_dropped == 1
        }),
        "the dead receiver must be detected and counted: {:?}",
        server.stats()
    );
    assert_eq!(server.depth(), 0, "the abandoned request released its slot");
}

#[test]
fn a_timed_out_wait_is_an_abandoned_receiver_too() {
    let gate = Arc::new(GateHooks::new());
    let cache = Arc::new(PlanCache::new(latte_runtime::ExecConfig {
        threads: 1,
        arena: false,
        gemm_blocking: None,
    }));
    let server = Server::start_with(
        Arc::new(common::model("fc")),
        ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        },
        cache,
        gate.clone(),
    );
    let ticket = server.submit(common::sample("fc", 5)).expect("submit");
    assert!(matches!(
        ticket.wait_timeout(Duration::from_millis(20)),
        Err(ServeError::WaitTimeout)
    ));
    // wait_timeout consumed the ticket: its channel is gone.
    gate.open();
    assert!(wait_for(|| server.stats().replies_dropped == 1));
}

#[test]
fn draining_refuses_new_admissions_but_answers_admitted_work() {
    let gate = Arc::new(GateHooks::new());
    let cache = Arc::new(PlanCache::new(latte_runtime::ExecConfig {
        threads: 1,
        arena: false,
        gemm_blocking: None,
    }));
    let server = Arc::new(Server::start_with(
        Arc::new(common::model("fc")),
        ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_secs(60),
            ..ServeConfig::default()
        },
        cache,
        gate.clone(),
    ));
    // Three admitted requests: one gated pair in flight, one still
    // coalescing when shutdown arrives (the drain must flush it).
    let tickets: Vec<_> = (0..3)
        .map(|i| server.submit(common::sample("fc", i)).expect("submit"))
        .collect();
    let opener = {
        let gate = gate.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            gate.open();
        })
    };
    server.shutdown();
    opener.join().unwrap();
    assert!(server.is_draining());
    // Every admitted request was answered before shutdown returned.
    for t in tickets {
        t.wait().expect("admitted work completes through the drain");
    }
    assert_eq!(server.stats().completed, 3);
    // New work is refused with the structured draining error.
    assert!(matches!(
        server.submit(common::sample("fc", 9)),
        Err(ServeError::Draining)
    ));
    // Idempotent: a second shutdown is a no-op.
    server.shutdown();
}
