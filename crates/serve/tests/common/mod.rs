//! Batch-parametric mirrors of the oracle harness's five-net suite.
//!
//! The oracle builders fix their batch size; serving needs the same
//! architectures as *factories* over the batch (identical layer seeds,
//! so parameters are batch-invariant). Each factory paired with a
//! seeded per-sample input generator and a plain batch-1 executor
//! reference lets every test compare a served sample bit-for-bit
//! against the same sample run alone.

#![allow(dead_code)]

use latte_core::dsl::Net;
use latte_core::OptLevel;
use latte_nn::layers::{
    convolution, data, fully_connected, max_pool, relu, sigmoid, softmax_loss, tanh, ConvSpec,
};
use latte_nn::rnn::lstm;
use latte_runtime::Executor;
use latte_serve::{Model, NetFactory, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Time steps the served LSTM is unrolled for.
pub const LSTM_STEPS: usize = 2;

/// The five serving test nets.
pub const NETS: [&str; 5] = ["fc", "conv", "fusion", "classifier", "lstm"];

fn fc_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![5]);
    let fc1 = fully_connected(&mut net, "fc1", x, 8, 7);
    let a1 = tanh(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 6, 8);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, 4, 9);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn conv_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![5, 5, 2]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(3, 3), 11);
    let head = fully_connected(&mut net, "head", conv, 3, 12);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn fusion_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![6, 6, 1]);
    let conv = convolution(&mut net, "conv", x, ConvSpec::same(2, 3), 13);
    let act = relu(&mut net, "act", conv);
    let pool = max_pool(&mut net, "pool", act, 2, 2);
    let head = fully_connected(&mut net, "head", pool, 3, 14);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn classifier_factory(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![7]);
    let fc1 = fully_connected(&mut net, "fc1", x, 10, 15);
    let a1 = relu(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 8, 16);
    let a2 = sigmoid(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, 5, 17);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn lstm_factory(batch: usize) -> Net {
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![3]);
    lstm(&mut step_net, "lstm", x, 4, 19);
    let mut net = step_net.unroll(LSTM_STEPS);
    let final_h = net
        .find(&format!("lstm_h@t{}", LSTM_STEPS - 1))
        .expect("unrolled LSTM output missing");
    let head = fully_connected(&mut net, "head", final_h, 3, 20);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

/// The batch-parametric factory for a named test net.
pub fn factory(name: &str) -> NetFactory {
    match name {
        "fc" => Box::new(fc_factory),
        "conv" => Box::new(conv_factory),
        "fusion" => Box::new(fusion_factory),
        "classifier" => Box::new(classifier_factory),
        "lstm" => Box::new(lstm_factory),
        other => panic!("unknown test net `{other}`"),
    }
}

/// Per-item `(ensemble, len)` input signature of a named test net.
pub fn input_signature(name: &str) -> Vec<(String, usize)> {
    let mut sig = match name {
        "fc" => vec![("data".to_string(), 5)],
        "conv" => vec![("data".to_string(), 50)],
        "fusion" => vec![("data".to_string(), 36)],
        "classifier" => vec![("data".to_string(), 7)],
        "lstm" => {
            // The unrolled LSTM also exposes its zero-filled initial
            // recurrent states as data ensembles.
            let mut sig: Vec<(String, usize)> =
                (0..LSTM_STEPS).map(|t| (format!("x@t{t}"), 3)).collect();
            sig.push(("lstm_h@init".to_string(), 4));
            sig.push(("lstm_cell@init".to_string(), 4));
            sig
        }
        other => panic!("unknown test net `{other}`"),
    };
    sig.push(("label".to_string(), 1));
    sig
}

/// Output classes of a named test net's head.
pub fn classes(name: &str) -> usize {
    match name {
        "fc" => 4,
        "conv" | "fusion" | "lstm" => 3,
        "classifier" => 5,
        other => panic!("unknown test net `{other}`"),
    }
}

/// Registers the named test net as a served [`Model`] (full
/// optimization, `head.value` output).
pub fn model(name: &str) -> Model {
    Model::new(
        name,
        factory(name),
        OptLevel::full(),
        vec!["head.value".to_string()],
    )
    .expect("model registration")
}

/// One deterministic single-sample request for the named net.
pub fn sample(name: &str, seed: u64) -> Request {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = input_signature(name)
        .into_iter()
        .map(|(ensemble, len)| {
            let values: Vec<f32> = if ensemble == "label" {
                vec![rng.gen_range(0..classes(name)) as f32]
            } else if ensemble.ends_with("@init") {
                // Zero initial recurrent state, matching the paper's
                // unrolling semantics.
                vec![0.0; len]
            } else {
                (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
            };
            (ensemble, values)
        })
        .collect();
    Request { inputs }
}

/// The oracle for a served sample: the same request run alone through a
/// plain batch-1 [`Executor`], returning `head.value`.
pub fn reference(name: &str, req: &Request) -> Vec<f32> {
    let net = factory(name)(1);
    let compiled =
        latte_core::compile(&net, &OptLevel::full()).expect("reference compile");
    let mut exec = Executor::new(compiled).expect("reference executor");
    for (ensemble, values) in &req.inputs {
        exec.set_input(ensemble, values).expect("reference input");
    }
    exec.forward();
    exec.read_item("head.value", 0).expect("reference output")
}
