//! Shared helpers for the serving test suite.
//!
//! The five batch-parametric test nets now live in [`latte_serve::zoo`]
//! (the binary and bench serve them too); this module re-exports them
//! and adds the test-only pieces: a seeded request generator and the
//! plain batch-1 executor oracle every served sample is compared
//! bit-for-bit against.

#![allow(dead_code)]

use latte_core::{compile, OptLevel};
use latte_runtime::Executor;
use latte_serve::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Each test binary uses its own subset of these.
#[allow(unused_imports)]
pub use latte_serve::zoo::{classes, factory, input_signature, LSTM_STEPS, NETS};

/// Registers the named test net as a served [`latte_serve::Model`]
/// (full optimization, `head.value` output).
pub fn model(name: &str) -> latte_serve::Model {
    latte_serve::zoo::model(name).expect("model registration")
}

/// One deterministic single-sample request for the named net.
pub fn sample(name: &str, seed: u64) -> Request {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = input_signature(name)
        .into_iter()
        .map(|(ensemble, len)| {
            let values: Vec<f32> = if ensemble == "label" {
                vec![rng.gen_range(0..classes(name)) as f32]
            } else if ensemble.ends_with("@init") {
                // Zero initial recurrent state, matching the paper's
                // unrolling semantics.
                vec![0.0; len]
            } else {
                (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
            };
            (ensemble, values)
        })
        .collect();
    Request { inputs }
}

/// The oracle for a served sample: the same request run alone through a
/// plain batch-1 [`Executor`], returning `head.value`.
pub fn reference(name: &str, req: &Request) -> Vec<f32> {
    let net = factory(name)(1);
    let compiled = compile(&net, &OptLevel::full()).expect("reference compile");
    let mut exec = Executor::new(compiled).expect("reference executor");
    for (ensemble, values) in &req.inputs {
        exec.set_input(ensemble, values).expect("reference input");
    }
    exec.forward();
    exec.read_item("head.value", 0).expect("reference output")
}
