//! Criterion ablations over the compiler's design choices: each benchmark
//! toggles one optimization the DESIGN.md inventory calls out and times a
//! forward(+backward) pass of a convolution block or MLP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latte_bench::seeded;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{convolution, data, max_pool, relu, ConvSpec};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::Executor;

fn conv_block(batch: usize, h: usize, cin: usize, cout: usize) -> latte_core::dsl::Net {
    let mut net = latte_core::dsl::Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, cin]);
    let c = convolution(&mut net, "conv1", d, ConvSpec::same(cout, 3), 1);
    let r = relu(&mut net, "relu1", c);
    max_pool(&mut net, "pool1", r, 2, 2);
    net
}

fn exec_for(net: &latte_core::dsl::Net, opt: &OptLevel, input_len: usize) -> Executor {
    let compiled = compile(net, opt).expect("compiles");
    let mut exec = Executor::new(compiled).expect("lowers");
    exec.set_input("data", &seeded(input_len, 3)).expect("input");
    exec
}

/// Cross-layer fusion on/off (the paper's headline optimization).
fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fusion");
    group.sample_size(10);
    let (batch, h, cin, cout) = (4, 32, 8, 16);
    let net = conv_block(batch, h, cin, cout);
    for (name, opt) in [
        ("fused", OptLevel::full()),
        ("unfused", OptLevel::full().with_fusion(false)),
    ] {
        let mut exec = exec_for(&net, &opt, batch * h * h * cin);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                exec.forward();
                exec.backward();
            });
        });
    }
    group.finish();
}

/// Shared-variable buffer optimization on/off (Section 5.2): affects both
/// time (duplicated staging copies) and memory.
fn bench_shared_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shared_buffers");
    group.sample_size(10);
    let (batch, h, cin, cout) = (4, 16, 4, 8);
    let net = conv_block(batch, h, cin, cout);
    for (name, opt) in [
        ("shared", OptLevel::full()),
        ("duplicated", OptLevel::full().with_shared_buffers(false)),
    ] {
        let mut exec = exec_for(&net, &opt, batch * h * h * cin);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| exec.forward());
        });
    }
    group.finish();
}

/// Native inner-loop lowering ("vectorization") on/off.
fn bench_vectorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vectorize");
    group.sample_size(10);
    let (batch, h, cin, cout) = (4, 16, 4, 8);
    let net = conv_block(batch, h, cin, cout);
    for (name, opt) in [
        ("native", OptLevel::full()),
        ("interpreted", OptLevel::full().with_vectorize(false)),
    ] {
        let mut exec = exec_for(&net, &opt, batch * h * h * cin);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| exec.forward());
        });
    }
    group.finish();
}

/// Tile-size sweep over the fused conv block (the paper's TILE_SIZE
/// design choice).
fn bench_tile_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tile_size");
    group.sample_size(10);
    let (batch, h, cin, cout) = (4, 32, 8, 16);
    let net = conv_block(batch, h, cin, cout);
    for tile in [1usize, 2, 4, 8, 16] {
        let opt = OptLevel::full().with_tile_size(tile);
        let mut exec = exec_for(&net, &opt, batch * h * h * cin);
        group.bench_function(BenchmarkId::from_parameter(format!("tile{tile}")), |b| {
            b.iter(|| {
                exec.forward();
                exec.backward();
            });
        });
    }
    group.finish();
}

/// GEMM pattern matching on/off for fully-connected layers.
fn bench_pattern_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pattern_match");
    group.sample_size(10);
    let cfg = ModelConfig {
        batch: 8,
        input_size: 128,
        channel_div: 1,
        classes: 10,
        with_loss: true,
        seed: 4,
    };
    for (name, opt) in [
        ("gemm", OptLevel::full()),
        ("loops", OptLevel::full().with_pattern_match(false)),
    ] {
        let model = mlp(&cfg, &[128, 64]);
        let compiled = compile(&model.net, &opt).expect("compiles");
        let mut exec = Executor::new(compiled).expect("lowers");
        exec.set_input("data", &seeded(8 * 128, 5)).expect("input");
        exec.set_input("label", &[0.0; 8]).expect("labels");
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                exec.forward();
                exec.backward();
            });
        });
    }
    group.finish();
}

/// One fully-connected forward in Latte vs the hand-written baseline
/// stacks (sanity anchor for the figure harness).
fn bench_stacks(c: &mut Criterion) {
    use latte_baselines::spec::LayerSpec;
    let mut group = c.benchmark_group("stack_comparison");
    group.sample_size(10);
    let (batch, h, cin, cout) = (4usize, 16usize, 4usize, 8usize);
    let net = conv_block(batch, h, cin, cout);
    let mut latte_exec = exec_for(&net, &OptLevel::full(), batch * h * h * cin);
    group.bench_function("latte", |b| b.iter(|| latte_exec.forward()));
    let specs = [
        LayerSpec::Conv { out_channels: cout, kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
    ];
    let mut caffe = latte_baselines::caffe::build((cin, h, h), batch, &specs, 1);
    caffe.set_input(&seeded(batch * h * h * cin, 3));
    group.bench_function("caffe", |b| {
        b.iter(|| {
            caffe.forward();
        })
    });
    let mut mocha = latte_baselines::mocha::build((cin, h, h), batch, &specs, 1);
    mocha.set_input(&seeded(batch * h * h * cin, 3));
    group.bench_function("mocha", |b| {
        b.iter(|| {
            mocha.forward();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_shared_buffers,
    bench_vectorize,
    bench_tile_size,
    bench_pattern_match,
    bench_stacks
);
criterion_main!(benches);
