//! Criterion benchmarks for the numeric substrate: GEMM shapes and block
//! sizes, im2col, and the synthesized-copy execution paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latte_tensor::conv::{im2col, Conv2dParams};
use latte_tensor::gemm::{Gemm, Transpose};

fn bench_gemm_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_shapes");
    group.sample_size(10);
    // The shapes the compiler actually emits: Latte conv forward
    // (m=spatial, n=channels), Caffe conv forward (m=channels,
    // n=spatial), weight gradients (k=spatial), and an FC-style square.
    let shapes: [(&str, usize, usize, usize, Transpose, Transpose); 4] = [
        ("latte_conv_fwd", 1024, 64, 27, Transpose::No, Transpose::Yes),
        ("caffe_conv_fwd", 64, 1024, 27, Transpose::No, Transpose::No),
        ("conv_bwd_weights", 64, 27, 1024, Transpose::Yes, Transpose::No),
        ("fc", 256, 256, 256, Transpose::No, Transpose::Yes),
    ];
    for (name, m, n, k, ta, tb) in shapes {
        let a = vec![1.0f32; m.max(k) * k.max(m)];
        let b = vec![1.0f32; k.max(n) * n.max(k)];
        let mut out = vec![0.0f32; m * n];
        let mut engine = Gemm::new();
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| {
                engine.compute(ta, tb, m, n, k, &a, &b, &mut out);
            });
        });
    }
    group.finish();
}

fn bench_gemm_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_blocking");
    group.sample_size(10);
    let (m, n, k) = (192, 192, 192);
    let a = vec![1.0f32; m * k];
    let b = vec![1.0f32; k * n];
    let mut out = vec![0.0f32; m * n];
    for (kc, nc, mc) in [(64, 128, 16), (256, 512, 64), (512, 1024, 128), (32, 64, 8)] {
        let mut engine = Gemm::with_blocking(kc, nc, mc).expect("aligned blocking");
        group.bench_function(
            BenchmarkId::from_parameter(format!("kc{kc}_nc{nc}_mc{mc}")),
            |bencher| {
                bencher.iter(|| {
                    engine.compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut out);
                });
            },
        );
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group.sample_size(10);
    for (h, cin) in [(32usize, 16usize), (64, 3)] {
        let p = Conv2dParams {
            in_channels: cin,
            out_channels: 1,
            height: h,
            width: h,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let input = vec![1.0f32; cin * h * h];
        let mut cols = vec![0.0f32; p.patch_len() * p.out_plane()];
        group.bench_function(
            BenchmarkId::from_parameter(format!("{h}x{h}x{cin}")),
            |bencher| bencher.iter(|| im2col(&p, &input, &mut cols)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_shapes, bench_gemm_blocking, bench_im2col);
criterion_main!(benches);
