//! # latte-bench
//!
//! The measurement harness behind the `figures` binary, which regenerates
//! every figure and table of the paper's evaluation (Section 7), and the
//! criterion ablation benches.

#![warn(missing_docs)]

pub mod json;

use std::time::Instant;

use latte_baselines::net::SequentialNet;
use latte_core::{compile, CompiledNet, OptLevel};
use latte_runtime::{ExecConfig, Executor};

/// Which passes a measurement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward only.
    Forward,
    /// Backward only (after one forward).
    Backward,
    /// Forward + backward.
    Both,
}

/// Measures the median seconds per invocation of `f`, adaptively choosing
/// the iteration count (at least `min_iters`, at least ~0.2 s total).
pub fn measure(min_iters: usize, mut f: impl FnMut()) -> f64 {
    // Warm up.
    f();
    let mut times = Vec::new();
    let budget = std::time::Duration::from_millis(400);
    let start = Instant::now();
    while times.len() < min_iters || (start.elapsed() < budget && times.len() < 50) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Seconds per pass for a Latte executor.
pub fn time_latte(exec: &mut Executor, pass: Pass, min_iters: usize) -> f64 {
    match pass {
        Pass::Forward => measure(min_iters, || exec.forward()),
        Pass::Backward => {
            exec.forward();
            measure(min_iters, || exec.backward())
        }
        Pass::Both => measure(min_iters, || {
            exec.forward();
            exec.backward();
        }),
    }
}

/// Seconds per pass for a baseline network.
pub fn time_baseline(net: &mut SequentialNet, pass: Pass, min_iters: usize) -> f64 {
    match pass {
        Pass::Forward => measure(min_iters, || {
            net.forward();
        }),
        Pass::Backward => {
            net.forward();
            measure(min_iters, || net.backward())
        }
        Pass::Both => measure(min_iters, || {
            net.forward();
            net.backward();
        }),
    }
}

/// Compiles a model at an opt level, panicking with context on failure.
pub fn compile_or_die(net: &latte_core::dsl::Net, opt: &OptLevel, what: &str) -> CompiledNet {
    compile(net, opt).unwrap_or_else(|e| panic!("compiling {what}: {e}"))
}

/// Builds an executor, panicking with context on failure.
pub fn executor_or_die(compiled: CompiledNet, what: &str) -> Executor {
    Executor::new(compiled).unwrap_or_else(|e| panic!("lowering {what}: {e}"))
}

/// Prints the compiler's per-pass instrumentation for one compile — one
/// row per pipeline pass with wall time and IR-size deltas (see
/// `CompileStats::passes`), so figure runs show where compile time goes.
/// Also prints the runtime thread count (`LATTE_THREADS`) and every
/// group's parallel/serial schedule decision, so bench output is
/// self-describing.
pub fn print_compile_stats(compiled: &CompiledNet, what: &str) {
    println!("\n-- compile pipeline: {what} --");
    for p in &compiled.stats.passes {
        println!("  {}", p.render());
    }
    println!("  threads: {} (LATTE_THREADS)", ExecConfig::env_threads());
    println!(
        "  schedule decisions: {} parallel, {} serial",
        compiled.stats.groups_parallel, compiled.stats.groups_serial
    );
    for (name, parallel) in &compiled.stats.group_parallel {
        let decision = if *parallel { "parallel" } else { "serial" };
        println!("  group {name:<40} {decision}");
    }
}

/// Deterministic pseudo-random input data.
pub fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(base: f64, other: f64) -> String {
    format!("{:.2}x", base / other)
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let t = measure(3, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(t > 0.0);
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(2.0, 1.0), "2.00x");
    }
}
