//! Minimal JSON support for machine-readable bench artifacts.
//!
//! The workspace is offline (no serde); bench binaries emit their results
//! through [`Json`] and CI validates the written artifact by re-parsing
//! it with [`parse`]. Only the subset of JSON the bench artifacts use is
//! supported: objects, arrays, strings (with `\"`/`\\`/`\n` escapes),
//! finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value: build one with the constructors, render with
/// [`Json::render`], or obtain one from text with [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), making output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value; `None` for other variants.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) if x.is_finite() => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(map) if map.is_empty() => out.push_str("{}"),
            Json::Obj(map) => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset bench artifacts use).
///
/// # Errors
///
/// A human-readable description with the byte offset of the failure.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".into());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        let ch = char::from_u32(hex).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj([
            ("schema", Json::Str("latte-throughput/v1".into())),
            ("smoke", Json::Bool(true)),
            (
                "gemm",
                Json::Arr(vec![Json::obj([
                    ("m", Json::Num(512.0)),
                    ("gflops", Json::Num(3.25)),
                    ("label", Json::Str("a \"quoted\" name\n".into())),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parse rendered output");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_plain_json() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": false}}"#).expect("parse");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).and_then(|a| a[2].as_num()),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] junk").is_err());
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(512.0).render(), "512\n");
        assert!(Json::Num(f64::NAN).render().starts_with("null"));
    }
}
