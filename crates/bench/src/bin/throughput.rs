//! Throughput harness: GEMM GFLOP/s and end-to-end images/sec across
//! thread counts, written as machine-readable `BENCH_throughput.json`.
//!
//! This starts the performance trajectory the ROADMAP asks for ("as fast
//! as the hardware allows"): every run records
//!
//! * **GEMM** — for each shape, the *seed* serial kernel (the axpy-style
//!   blocked loop this PR replaced, reproduced below as the labelled
//!   baseline), the new register-blocked serial [`Gemm::compute`], and
//!   [`Gemm::compute_parallel`] on a persistent [`WorkerPool`] at each
//!   requested thread count;
//! * **end-to-end** — images/sec of full training iterations
//!   (forward+backward) for the Figure-13 nets at each thread count.
//!
//! Numbers are honest medians on whatever machine runs this; speedup
//! ratios are recorded alongside the raw throughput so regressions are
//! visible without a reference machine.
//!
//! Flags: `--smoke` (tiny shapes, CI-fast), `--out <path>` (default
//! `BENCH_throughput.json`), `--validate <path>` (parse an existing
//! artifact, check its schema, and exit — the CI bench-smoke step).

use latte_bench::json::{parse, Json};
use latte_bench::{compile_or_die, measure, print_compile_stats, seeded};
use latte_core::OptLevel;
use latte_nn::models::{self, ModelConfig};
use latte_runtime::pool::WorkerPool;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor};
use latte_tensor::gemm::{Gemm, Transpose};

/// The serial GEMM this PR replaced (the seed's packed axpy macro-kernel
/// with its default blocking), kept verbatim as the labelled baseline so
/// `parallel_gflops / seed_serial_gflops` measures exactly the
/// acceptance-criterion speedup.
fn seed_gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (kc, nc, mc) = (256, 512, 64);
    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            for ic in (0..m).step_by(mc) {
                let mb = mc.min(m - ic);
                for i in ic..ic + mb {
                    let c_row = &mut c[i * n + jc..i * n + jc + nb];
                    for p in pc..pc + kb {
                        let av = a[i * k + p];
                        let b_row = &b[p * n + jc..p * n + jc + nb];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

struct Args {
    smoke: bool,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--validate" => args.validate = Some(it.next().expect("--validate needs a path")),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke --out <path> --validate <path>");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Median seconds per call with a bench budget suited to the mode.
fn med(smoke: bool, f: impl FnMut()) -> f64 {
    measure(if smoke { 2 } else { 3 }, f)
}

fn gemm_section(smoke: bool, threads: &[usize]) -> Json {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(24, 32, 40), (48, 48, 48)]
    } else {
        &[
            (128, 128, 128),
            (256, 256, 256),
            (512, 512, 512),
            (512, 1024, 256),
            (31, 97, 113),
        ]
    };
    // One persistent pool per thread count, built once outside the timed
    // region — workers are never spawned inside an iteration.
    let pools: Vec<WorkerPool> = threads.iter().map(|&t| WorkerPool::new(t)).collect();
    let mut entries = Vec::new();
    for &(m, n, k) in shapes {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let a = seeded(m * k, 11);
        let b = seeded(k * n, 13);
        let mut c = vec![0.0f32; m * n];

        let t_seed = med(smoke, || {
            c.fill(0.0);
            seed_gemm(m, n, k, &a, &b, &mut c);
        });
        let mut engine = Gemm::new();
        let t_serial = med(smoke, || {
            c.fill(0.0);
            engine.compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c);
        });
        let seed_gflops = flops / t_seed / 1e9;
        let serial_gflops = flops / t_serial / 1e9;

        let mut parallel = Vec::new();
        for (pool, &t) in pools.iter().zip(threads) {
            let t_par = med(smoke, || {
                c.fill(0.0);
                Gemm::compute_parallel(pool, Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c);
            });
            let gflops = flops / t_par / 1e9;
            println!(
                "gemm {m}x{n}x{k}  threads={t}  {gflops:.2} GFLOP/s  ({:.2}x vs seed serial)",
                gflops / seed_gflops
            );
            parallel.push(Json::obj([
                ("threads", Json::Num(t as f64)),
                ("gflops", Json::Num(gflops)),
                ("speedup_vs_seed_serial", Json::Num(gflops / seed_gflops)),
                ("speedup_vs_blocked_serial", Json::Num(gflops / serial_gflops)),
            ]));
        }
        entries.push(Json::obj([
            ("m", Json::Num(m as f64)),
            ("n", Json::Num(n as f64)),
            ("k", Json::Num(k as f64)),
            ("seed_serial_gflops", Json::Num(seed_gflops)),
            ("blocked_serial_gflops", Json::Num(serial_gflops)),
            ("parallel", Json::Arr(parallel)),
        ]));
    }
    Json::Arr(entries)
}

/// Builds the Figure-13 nets sized for the mode.
fn fig13_nets(smoke: bool) -> Vec<(&'static str, models::Model)> {
    let mut out = Vec::new();
    if smoke {
        let cfg = ModelConfig {
            batch: 4,
            input_size: 12,
            channel_div: 8,
            classes: 10,
            with_loss: true,
            seed: 5,
        };
        out.push(("lenet", models::lenet(&cfg)));
    } else {
        let cfg = ModelConfig {
            batch: 8,
            input_size: 32,
            channel_div: 4,
            classes: 100,
            with_loss: true,
            seed: 5,
        };
        out.push(("vgg_prefix2", models::vgg_prefix(&cfg, 2)));
        out.push(("lenet", models::lenet(&ModelConfig { input_size: 28, ..cfg })));
    }
    out
}

fn e2e_section(smoke: bool, threads: &[usize]) -> Json {
    let mut entries = Vec::new();
    for (name, model) in fig13_nets(smoke) {
        let batch = {
            let compiled = compile_or_die(&model.net, &OptLevel::full(), name);
            print_compile_stats(&compiled, name);
            compiled.batch
        };
        let mut results = Vec::new();
        let mut per_thread_ips = Vec::new();
        for &t in threads {
            let compiled = compile_or_die(&model.net, &OptLevel::full(), name);
            let mut exec = Executor::with_registry(
                compiled,
                &KernelRegistry::with_builtins(),
                ExecConfig { threads: t, arena: false },
            )
            .unwrap_or_else(|e| panic!("lowering {name}: {e}"));
            // Feed every data ensemble the net declares (image data plus
            // whatever drives the loss — labels or an L2 target).
            let feeds: Vec<(String, usize)> = exec
                .compiled()
                .inputs
                .iter()
                .map(|i| (i.ensemble.clone(), i.len))
                .collect();
            for (seed_idx, (ensemble, len)) in feeds.iter().enumerate() {
                let values = seeded(batch * len, 17 + seed_idx as u32);
                exec.set_input(ensemble, &values).expect("input");
            }
            let iter_s = med(smoke, || {
                exec.forward();
                exec.backward();
            });
            let ips = batch as f64 / iter_s;
            println!(
                "e2e {name}  threads={t}  {ips:.1} images/sec  ({:.2} ms/iter)",
                iter_s * 1e3
            );
            per_thread_ips.push((t, ips));
            results.push(Json::obj([
                ("threads", Json::Num(t as f64)),
                ("images_per_sec", Json::Num(ips)),
                ("iter_ms", Json::Num(iter_s * 1e3)),
            ]));
        }
        let ips_at = |want: usize| {
            per_thread_ips
                .iter()
                .find(|(t, _)| *t == want)
                .map(|&(_, ips)| ips)
        };
        let speedup = match (ips_at(4), ips_at(1)) {
            (Some(four), Some(one)) if one > 0.0 => Json::Num(four / one),
            _ => Json::Null,
        };
        entries.push(Json::obj([
            ("net", Json::Str(name.to_string())),
            ("batch", Json::Num(batch as f64)),
            ("results", Json::Arr(results)),
            ("speedup_4t_vs_1t", speedup),
        ]));
    }
    Json::Arr(entries)
}

/// Schema check for a written artifact. Returns a list of violations.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some("latte-throughput/v1") {
        errs.push("missing or wrong `schema` (want \"latte-throughput/v1\")".into());
    }
    if doc.get("threads").and_then(Json::as_arr).is_none_or(<[Json]>::is_empty) {
        errs.push("`threads` must be a non-empty array".into());
    }
    match doc.get("gemm").and_then(Json::as_arr) {
        None => errs.push("`gemm` must be an array".into()),
        Some(entries) => {
            if entries.is_empty() {
                errs.push("`gemm` is empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                for key in ["m", "n", "k", "seed_serial_gflops", "blocked_serial_gflops"] {
                    if e.get(key).and_then(Json::as_num).is_none() {
                        errs.push(format!("gemm[{i}].{key} missing or not a number"));
                    }
                }
                match e.get("parallel").and_then(Json::as_arr) {
                    None => errs.push(format!("gemm[{i}].parallel must be an array")),
                    Some(ps) => {
                        for (j, p) in ps.iter().enumerate() {
                            for key in ["threads", "gflops", "speedup_vs_seed_serial"] {
                                if p.get(key).and_then(Json::as_num).is_none() {
                                    errs.push(format!(
                                        "gemm[{i}].parallel[{j}].{key} missing or not a number"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    match doc.get("e2e").and_then(Json::as_arr) {
        None => errs.push("`e2e` must be an array".into()),
        Some(entries) => {
            if entries.is_empty() {
                errs.push("`e2e` is empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                if e.get("net").and_then(Json::as_str).is_none() {
                    errs.push(format!("e2e[{i}].net missing"));
                }
                match e.get("results").and_then(Json::as_arr) {
                    None => errs.push(format!("e2e[{i}].results must be an array")),
                    Some(rs) => {
                        for (j, r) in rs.iter().enumerate() {
                            for key in ["threads", "images_per_sec", "iter_ms"] {
                                if r.get(key).and_then(Json::as_num).is_none() {
                                    errs.push(format!(
                                        "e2e[{i}].results[{j}].{key} missing or not a number"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    errs
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let errs = validate_doc(&doc);
        if errs.is_empty() {
            println!("{path}: schema OK");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let threads: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    println!(
        "throughput harness ({} mode), thread counts {threads:?}, LATTE_THREADS={}",
        if args.smoke { "smoke" } else { "full" },
        ExecConfig::env_threads(),
    );

    let gemm = gemm_section(args.smoke, threads);
    let e2e = e2e_section(args.smoke, threads);

    let doc = Json::obj([
        ("schema", Json::Str("latte-throughput/v1".into())),
        ("smoke", Json::Bool(args.smoke)),
        (
            "threads",
            Json::Arr(threads.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("gemm", gemm),
        ("e2e", e2e),
    ]);
    std::fs::write(&args.out, doc.render())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}
