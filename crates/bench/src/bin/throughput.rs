//! Throughput harness: GEMM GFLOP/s and end-to-end images/sec across
//! thread counts, written as machine-readable `BENCH_throughput.json`.
//!
//! This starts the performance trajectory the ROADMAP asks for ("as fast
//! as the hardware allows"): every run records
//!
//! * **GEMM** — for each shape, the *seed* serial kernel (the axpy-style
//!   blocked loop this PR replaced, reproduced below as the labelled
//!   baseline), the new register-blocked serial [`Gemm::compute`], and
//!   [`Gemm::compute_parallel`] on a persistent [`WorkerPool`] at each
//!   requested thread count;
//! * **end-to-end** — images/sec of full training iterations
//!   (forward+backward) for the Figure-13 nets at each thread count.
//!
//! Numbers are honest medians on whatever machine runs this; speedup
//! ratios are recorded alongside the raw throughput so regressions are
//! visible without a reference machine.
//!
//! Flags: `--smoke` (tiny shapes, CI-fast), `--out <path>` (default
//! `BENCH_throughput.json`), `--validate <path>` (parse an existing
//! artifact, check its schema, and exit — the CI bench-smoke step).

use latte_bench::json::{parse, Json};
use latte_bench::{compile_or_die, measure, print_compile_stats, seeded};
use latte_core::OptLevel;
use latte_nn::models::{self, ModelConfig};
use latte_runtime::pool::WorkerPool;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::tune::Tuner;
use latte_runtime::{ExecConfig, Executor};
use latte_tensor::gemm::{Gemm, Transpose};

/// Default blocking of [`Gemm::new`], spelled out so the tuned section can
/// tell "tuner kept the default" from "tuner found a better blocking".
const DEFAULT_BLOCKING: (usize, usize, usize) = (256, 512, 64);

/// The serial GEMM this PR replaced (the seed's packed axpy macro-kernel
/// with its default blocking), kept verbatim as the labelled baseline so
/// `parallel_gflops / seed_serial_gflops` measures exactly the
/// acceptance-criterion speedup.
fn seed_gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (kc, nc, mc) = (256, 512, 64);
    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            for ic in (0..m).step_by(mc) {
                let mb = mc.min(m - ic);
                for i in ic..ic + mb {
                    let c_row = &mut c[i * n + jc..i * n + jc + nb];
                    for p in pc..pc + kb {
                        let av = a[i * k + p];
                        let b_row = &b[p * n + jc..p * n + jc + nb];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

struct Args {
    smoke: bool,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--validate" => args.validate = Some(it.next().expect("--validate needs a path")),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke --out <path> --validate <path>");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Median seconds per call with a bench budget suited to the mode.
fn med(smoke: bool, f: impl FnMut()) -> f64 {
    measure(if smoke { 2 } else { 3 }, f)
}

/// Best of two median rounds — used where two configurations are
/// *compared* (tuned vs default, 4t vs 1t), so a single noisy round
/// can't fabricate a delta. Both sides always get the same treatment.
fn med2(smoke: bool, mut f: impl FnMut()) -> f64 {
    let first = med(smoke, &mut f);
    first.min(med(smoke, &mut f))
}

/// Paired interleaved timing of two executors: every round runs one
/// iteration of each, back-to-back, and the per-executor medians come
/// from the same load windows. This is the only honest way to compare
/// two configurations on a shared host — sequential campaigns let a
/// background-load burst pollute one side's entire measurement.
fn paired_med(smoke: bool, a: &mut Executor, b: &mut Executor) -> (f64, f64) {
    let (warmup, rounds) = if smoke { (1, 3) } else { (2, 25) };
    let mut ta = Vec::new();
    let mut tb = Vec::new();
    for run in 0..warmup + rounds {
        let s = std::time::Instant::now();
        a.forward();
        a.backward();
        let da = s.elapsed().as_secs_f64();
        let s = std::time::Instant::now();
        b.forward();
        b.backward();
        let db = s.elapsed().as_secs_f64();
        if run >= warmup {
            ta.push(da);
            tb.push(db);
        }
    }
    let med_of = |mut v: Vec<f64>| {
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v[v.len() / 2]
    };
    (med_of(ta), med_of(tb))
}

fn gemm_section(smoke: bool, threads: &[usize]) -> Json {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(24, 32, 40), (48, 48, 48)]
    } else {
        &[
            (128, 128, 128),
            (256, 256, 256),
            (512, 512, 512),
            (512, 1024, 256),
            (31, 97, 113),
        ]
    };
    // One persistent pool per thread count, built once outside the timed
    // region — workers are never spawned inside an iteration.
    let pools: Vec<WorkerPool> = threads.iter().map(|&t| WorkerPool::new(t)).collect();
    let mut entries = Vec::new();
    for &(m, n, k) in shapes {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let a = seeded(m * k, 11);
        let b = seeded(k * n, 13);
        let mut c = vec![0.0f32; m * n];

        let t_seed = med(smoke, || {
            c.fill(0.0);
            seed_gemm(m, n, k, &a, &b, &mut c);
        });
        let mut engine = Gemm::new();
        let t_serial = med(smoke, || {
            c.fill(0.0);
            engine.compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c);
        });
        let seed_gflops = flops / t_seed / 1e9;
        let serial_gflops = flops / t_serial / 1e9;

        let mut parallel = Vec::new();
        for (pool, &t) in pools.iter().zip(threads) {
            let t_par = med(smoke, || {
                c.fill(0.0);
                Gemm::compute_parallel(pool, Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c);
            });
            let gflops = flops / t_par / 1e9;
            println!(
                "gemm {m}x{n}x{k}  threads={t}  {gflops:.2} GFLOP/s  ({:.2}x vs seed serial)",
                gflops / seed_gflops
            );
            parallel.push(Json::obj([
                ("threads", Json::Num(t as f64)),
                ("gflops", Json::Num(gflops)),
                ("speedup_vs_seed_serial", Json::Num(gflops / seed_gflops)),
                ("speedup_vs_blocked_serial", Json::Num(gflops / serial_gflops)),
            ]));
        }
        entries.push(Json::obj([
            ("m", Json::Num(m as f64)),
            ("n", Json::Num(n as f64)),
            ("k", Json::Num(k as f64)),
            ("seed_serial_gflops", Json::Num(seed_gflops)),
            ("blocked_serial_gflops", Json::Num(serial_gflops)),
            ("parallel", Json::Arr(parallel)),
        ]));
    }
    Json::Arr(entries)
}

/// Builds the Figure-13 nets sized for the mode.
fn fig13_nets(smoke: bool) -> Vec<(&'static str, models::Model)> {
    let mut out = Vec::new();
    if smoke {
        let cfg = ModelConfig {
            batch: 4,
            input_size: 12,
            channel_div: 8,
            classes: 10,
            with_loss: true,
            seed: 5,
        };
        out.push(("lenet", models::lenet(&cfg)));
    } else {
        let cfg = ModelConfig {
            batch: 8,
            input_size: 32,
            channel_div: 4,
            classes: 100,
            with_loss: true,
            seed: 5,
        };
        out.push(("vgg_prefix2", models::vgg_prefix(&cfg, 2)));
        out.push(("lenet", models::lenet(&ModelConfig { input_size: 28, ..cfg })));
    }
    out
}

/// Feeds every data ensemble the net declares (image data plus whatever
/// drives the loss — labels or an L2 target) with deterministic values.
fn feed_inputs(exec: &mut Executor, batch: usize) {
    let feeds: Vec<(String, usize)> = exec
        .compiled()
        .inputs
        .iter()
        .map(|i| (i.ensemble.clone(), i.len))
        .collect();
    for (seed_idx, (ensemble, len)) in feeds.iter().enumerate() {
        let values = seeded(batch * len, 17 + seed_idx as u32);
        exec.set_input(ensemble, &values).expect("input");
    }
}

/// End-to-end training throughput. Each thread count is measured twice:
/// the **default** schedule (plain `compile`, every eligible group
/// dispatched to the pool) and the **tuned** schedule (the autotuner's
/// per-group parallel/serial decisions, GEMM blocking, and tile override
/// from `cache`). The headline `images_per_sec` and `speedup_4t_vs_1t`
/// are the tuned numbers — that is what `LATTE_TUNE=1` users get, and the
/// per-group serial fallback is exactly the fix for the 4-thread
/// regression the default path records alongside.
fn e2e_section(smoke: bool, threads: &[usize], cache: &std::path::Path) -> Json {
    let mut entries = Vec::new();
    for (name, model) in fig13_nets(smoke) {
        let batch = {
            let compiled = compile_or_die(&model.net, &OptLevel::full(), name);
            print_compile_stats(&compiled, name);
            compiled.batch
        };
        let mut results = Vec::new();
        let mut tuned_ips = Vec::new();
        let mut default_ips = Vec::new();
        // Tuned schedules with zero pool-dispatched groups execute
        // identically at every thread count (workers park untouched), so
        // equal schedules share one measurement — same principle as the
        // equal-blocking GEMM rows: noise must not fabricate a delta
        // between provably identical executions.
        let mut serial_memo: Vec<(latte_core::TunedSchedule, f64)> = Vec::new();
        for &t in threads {
            let mut tuner = Tuner::with_path(cache, t)
                .unwrap_or_else(|e| panic!("opening tuning cache: {e}"));
            let (schedule, compiled) = tuner
                .tune_net(&model.net, &OptLevel::full())
                .unwrap_or_else(|e| panic!("tuning {name}: {e}"));
            println!(
                "e2e {name}  threads={t}  tuned schedule: {} parallel, {} serial, tile={:?}, blocking={:?}",
                compiled.stats.groups_parallel,
                compiled.stats.groups_serial,
                schedule.tile_size,
                schedule.gemm_blocking
            );
            let pool_free = compiled.stats.groups_parallel == 0;
            let mut tuned_exec = tuner
                .executor_for(compiled, &schedule)
                .unwrap_or_else(|e| panic!("lowering tuned {name}: {e}"));
            feed_inputs(&mut tuned_exec, batch);
            let mut default_exec = Executor::with_registry(
                compile_or_die(&model.net, &OptLevel::full(), name),
                &KernelRegistry::with_builtins(),
                ExecConfig { threads: t, arena: false, gemm_blocking: None },
            )
            .unwrap_or_else(|e| panic!("lowering {name}: {e}"));
            feed_inputs(&mut default_exec, batch);
            // The tuned-vs-default delta comes from this paired run; both
            // sides share every load window.
            let (d_s, t_s) = paired_med(smoke, &mut default_exec, &mut tuned_exec);
            let d_ips = batch as f64 / d_s;
            // The headline tuned number (and the 4t/1t ratio): equal
            // pool-free schedules are one execution, so they share one
            // measurement and cross-thread noise can't fake a delta.
            let memoized = pool_free
                .then(|| serial_memo.iter().find(|(s, _)| *s == schedule).map(|&(_, v)| v))
                .flatten();
            let iter_s = match memoized {
                Some(v) => v,
                None => {
                    if pool_free {
                        serial_memo.push((schedule.clone(), t_s));
                    }
                    t_s
                }
            };
            let ips = batch as f64 / iter_s;
            println!(
                "e2e {name}  threads={t}  tuned {ips:.1} images/sec  default {d_ips:.1}  (paired delta {:.3}x)",
                d_s / t_s
            );
            tuned_ips.push((t, ips));
            default_ips.push((t, d_ips));
            results.push(Json::obj([
                ("threads", Json::Num(t as f64)),
                ("images_per_sec", Json::Num(ips)),
                ("iter_ms", Json::Num(iter_s * 1e3)),
                ("default_images_per_sec", Json::Num(d_ips)),
                ("tuned_speedup_vs_default", Json::Num(d_s / t_s)),
            ]));
        }
        let ratio = |pairs: &[(usize, f64)]| {
            let at = |want: usize| pairs.iter().find(|(t, _)| *t == want).map(|&(_, v)| v);
            match (at(4), at(1)) {
                (Some(four), Some(one)) if one > 0.0 => Json::Num(four / one),
                _ => Json::Null,
            }
        };
        entries.push(Json::obj([
            ("net", Json::Str(name.to_string())),
            ("batch", Json::Num(batch as f64)),
            ("results", Json::Arr(results)),
            ("speedup_4t_vs_1t", ratio(&tuned_ips)),
            ("default_speedup_4t_vs_1t", ratio(&default_ips)),
        ]));
    }
    Json::Arr(entries)
}

/// Tuned-vs-default GEMM deltas plus the tuning-cache counters. For each
/// shape the autotuner picks a blocking (kc pinned — tuning never
/// reassociates the k-sum), then the winner and the default are timed
/// with the same harness. When the tuner keeps the default blocking the
/// two rows are one measurement — identical configuration, ratio exactly
/// 1.0 — so noise can't fabricate a delta where none exists.
fn tuned_section(smoke: bool, cache: &std::path::Path) -> Json {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(48, 48, 48)]
    } else {
        &[(256, 256, 256), (512, 512, 512)]
    };
    let mut tuner =
        Tuner::with_path(cache, 1).unwrap_or_else(|e| panic!("opening tuning cache: {e}"));
    let mut entries = Vec::new();
    for &(m, n, k) in shapes {
        let (kc, nc, mc) = tuner
            .tune_gemm(m, n, k)
            .unwrap_or_else(|e| panic!("tuning gemm {m}x{n}x{k}: {e}"));
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let a = seeded(m * k, 11);
        let b = seeded(k * n, 13);
        let mut c = vec![0.0f32; m * n];
        let mut time_with = |blocking: (usize, usize, usize)| {
            let mut engine = Gemm::with_blocking(blocking.0, blocking.1, blocking.2)
                .expect("tuned blocking validates");
            let t = med2(smoke, || {
                c.fill(0.0);
                engine.compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c);
            });
            flops / t / 1e9
        };
        let default_gflops = time_with(DEFAULT_BLOCKING);
        let tuned_gflops = if (kc, nc, mc) == DEFAULT_BLOCKING {
            default_gflops
        } else {
            time_with((kc, nc, mc))
        };
        println!(
            "tuned gemm {m}x{n}x{k}  blocking kc={kc} nc={nc} mc={mc}  \
             {tuned_gflops:.2} GFLOP/s  ({:.3}x vs default blocking)",
            tuned_gflops / default_gflops
        );
        entries.push(Json::obj([
            ("m", Json::Num(m as f64)),
            ("n", Json::Num(n as f64)),
            ("k", Json::Num(k as f64)),
            (
                "tuned_blocking",
                Json::obj([
                    ("kc", Json::Num(kc as f64)),
                    ("nc", Json::Num(nc as f64)),
                    ("mc", Json::Num(mc as f64)),
                ]),
            ),
            ("default_gflops", Json::Num(default_gflops)),
            ("tuned_gflops", Json::Num(tuned_gflops)),
            ("speedup_vs_default", Json::Num(tuned_gflops / default_gflops)),
        ]));
    }
    // Warm-reuse proof in the artifact itself: re-tuning every shape must
    // answer from the cache without a single new measurement.
    let before = tuner.stats();
    for &(m, n, k) in shapes {
        tuner.tune_gemm(m, n, k).expect("warm gemm tune");
    }
    let after = tuner.stats();
    assert_eq!(
        after.measurements, before.measurements,
        "warm tune_gemm re-measured — cache replay is broken"
    );
    Json::obj([
        ("gemm", Json::Arr(entries)),
        (
            "cache",
            Json::obj([
                ("entries", Json::Num(tuner.len() as f64)),
                ("measurements", Json::Num(after.measurements as f64)),
                ("cache_hits", Json::Num(after.cache_hits as f64)),
                ("cache_misses", Json::Num(after.cache_misses as f64)),
                (
                    "warm_extra_measurements",
                    Json::Num((after.measurements - before.measurements) as f64),
                ),
            ]),
        ),
    ])
}

/// Schema check for a written artifact. Returns a list of violations.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some("latte-throughput/v2") {
        errs.push("missing or wrong `schema` (want \"latte-throughput/v2\")".into());
    }
    if doc.get("threads").and_then(Json::as_arr).is_none_or(<[Json]>::is_empty) {
        errs.push("`threads` must be a non-empty array".into());
    }
    match doc.get("gemm").and_then(Json::as_arr) {
        None => errs.push("`gemm` must be an array".into()),
        Some(entries) => {
            if entries.is_empty() {
                errs.push("`gemm` is empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                for key in ["m", "n", "k", "seed_serial_gflops", "blocked_serial_gflops"] {
                    if e.get(key).and_then(Json::as_num).is_none() {
                        errs.push(format!("gemm[{i}].{key} missing or not a number"));
                    }
                }
                match e.get("parallel").and_then(Json::as_arr) {
                    None => errs.push(format!("gemm[{i}].parallel must be an array")),
                    Some(ps) => {
                        for (j, p) in ps.iter().enumerate() {
                            for key in ["threads", "gflops", "speedup_vs_seed_serial"] {
                                if p.get(key).and_then(Json::as_num).is_none() {
                                    errs.push(format!(
                                        "gemm[{i}].parallel[{j}].{key} missing or not a number"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    match doc.get("e2e").and_then(Json::as_arr) {
        None => errs.push("`e2e` must be an array".into()),
        Some(entries) => {
            if entries.is_empty() {
                errs.push("`e2e` is empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                if e.get("net").and_then(Json::as_str).is_none() {
                    errs.push(format!("e2e[{i}].net missing"));
                }
                match e.get("results").and_then(Json::as_arr) {
                    None => errs.push(format!("e2e[{i}].results must be an array")),
                    Some(rs) => {
                        for (j, r) in rs.iter().enumerate() {
                            for key in [
                                "threads",
                                "images_per_sec",
                                "iter_ms",
                                "default_images_per_sec",
                                "tuned_speedup_vs_default",
                            ] {
                                if r.get(key).and_then(Json::as_num).is_none() {
                                    errs.push(format!(
                                        "e2e[{i}].results[{j}].{key} missing or not a number"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let tuned = doc.get("tuned");
    match tuned.and_then(|t| t.get("gemm")).and_then(Json::as_arr) {
        None => errs.push("`tuned.gemm` must be an array".into()),
        Some(entries) => {
            if entries.is_empty() {
                errs.push("`tuned.gemm` is empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                for key in ["m", "n", "k", "default_gflops", "tuned_gflops", "speedup_vs_default"]
                {
                    if e.get(key).and_then(Json::as_num).is_none() {
                        errs.push(format!("tuned.gemm[{i}].{key} missing or not a number"));
                    }
                }
                for key in ["kc", "nc", "mc"] {
                    if e.get("tuned_blocking").and_then(|b| b.get(key)).and_then(Json::as_num)
                        .is_none()
                    {
                        errs.push(format!(
                            "tuned.gemm[{i}].tuned_blocking.{key} missing or not a number"
                        ));
                    }
                }
            }
        }
    }
    match tuned.and_then(|t| t.get("cache")) {
        None => errs.push("`tuned.cache` must be an object".into()),
        Some(cache) => {
            for key in ["entries", "measurements", "cache_hits", "cache_misses"] {
                if cache.get(key).and_then(Json::as_num).is_none() {
                    errs.push(format!("tuned.cache.{key} missing or not a number"));
                }
            }
            match cache.get("warm_extra_measurements").and_then(Json::as_num) {
                None => errs.push("tuned.cache.warm_extra_measurements missing".into()),
                Some(x) if x != 0.0 => {
                    errs.push("tuned.cache.warm_extra_measurements must be 0 (warm replay)".into());
                }
                Some(_) => {}
            }
        }
    }
    errs
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let errs = validate_doc(&doc);
        if errs.is_empty() {
            println!("{path}: schema OK");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let threads: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    println!(
        "throughput harness ({} mode), thread counts {threads:?}, LATTE_THREADS={}",
        if args.smoke { "smoke" } else { "full" },
        ExecConfig::env_threads(),
    );

    // The tuning cache for this run: start cold so the artifact records a
    // full campaign (the warm-replay proof runs inside tuned_section).
    let mut cache = std::env::temp_dir();
    cache.push(format!("latte_bench_tune_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);

    let gemm = gemm_section(args.smoke, threads);
    let e2e = e2e_section(args.smoke, threads, &cache);
    let tuned = tuned_section(args.smoke, &cache);
    let _ = std::fs::remove_file(&cache);

    let doc = Json::obj([
        ("schema", Json::Str("latte-throughput/v2".into())),
        ("smoke", Json::Bool(args.smoke)),
        (
            "threads",
            Json::Arr(threads.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("gemm", gemm),
        ("e2e", e2e),
        ("tuned", tuned),
    ]);
    std::fs::write(&args.out, doc.render())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}
