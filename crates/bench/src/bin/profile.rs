//! Per-group profiling aid: prints where Latte spends time on the VGG
//! group-1 microbenchmark, against the Caffe baseline total.

use latte_baselines::caffe;
use latte_baselines::spec::LayerSpec;
use latte_bench::{compile_or_die, executor_or_die, seeded, time_baseline, Pass};
use latte_core::OptLevel;
use latte_nn::layers::{convolution, data, max_pool, relu, ConvSpec};

fn main() {
    gemm_probe();
    let (h, cin, cout, batch) = (32usize, 3usize, 8usize, 4usize);
    let mut net = latte_core::dsl::Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, cin]);
    let c = convolution(&mut net, "conv0", d, ConvSpec::same(cout, 3), 1);
    let r = relu(&mut net, "relu0", c);
    max_pool(&mut net, "pool", r, 2, 2);

    for (tag, opt) in [
        ("full", OptLevel::full()),
        ("nofuse", OptLevel::full().with_fusion(false)),
        ("notile", OptLevel::full().with_fusion(false).with_tiling(false)),
    ] {
        let compiled = compile_or_die(&net, &opt, "micro");
        let mut exec = executor_or_die(compiled, "micro");
        exec.set_input("data", &seeded(batch * h * h * cin, 3)).unwrap();
        exec.forward();
        // Average over many runs.
        let mut fwd_acc: Vec<(String, f64)> = Vec::new();
        let mut bwd_acc: Vec<(String, f64)> = Vec::new();
        let reps = 50;
        for _ in 0..reps {
            for (i, (n, t)) in exec.forward_timed().into_iter().enumerate() {
                if fwd_acc.len() <= i {
                    fwd_acc.push((n, 0.0));
                }
                fwd_acc[i].1 += t;
            }
            for (i, (n, t)) in exec.backward_timed().into_iter().enumerate() {
                if bwd_acc.len() <= i {
                    bwd_acc.push((n, 0.0));
                }
                bwd_acc[i].1 += t;
            }
        }
        println!("== latte [{tag}] (ms per pass) ==");
        for (n, t) in fwd_acc.iter().chain(bwd_acc.iter()) {
            println!("  {:<40} {:.3}", n, t / reps as f64);
        }
    }

    let specs = [
        LayerSpec::Conv { out_channels: cout, kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
    ];
    let mut base = caffe::build((cin, h, h), batch, &specs, 1);
    base.set_input(&seeded(batch * h * h * cin, 3));
    println!(
        "caffe: fwd {:.3} ms, bwd {:.3} ms",
        time_baseline(&mut base, Pass::Forward, 5) * 1e3,
        time_baseline(&mut base, Pass::Backward, 5) * 1e3
    );
}

fn gemm_probe() {
    use latte_tensor::gemm::{Gemm, Transpose};
    use std::time::Instant;
    let bench = |name: &str, ta, tb, m: usize, n: usize, k: usize| {
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut g = Gemm::new();
        g.compute(ta, tb, m, n, k, &a, &b, &mut c);
        let reps = 200;
        let t0 = Instant::now();
        for _ in 0..reps {
            g.compute(ta, tb, m, n, k, &a, &b, &mut c);
        }
        let s = t0.elapsed().as_secs_f64() / reps as f64;
        println!(
            "  gemm {name}: m={m} n={n} k={k} -> {:.1} us, {:.2} GFLOPS",
            s * 1e6,
            2.0 * (m * n * k) as f64 / s / 1e9
        );
    };
    println!("== raw gemm probes ==");
    bench("latte-conv-fwd (NT)", Transpose::No, Transpose::Yes, 1024, 8, 27);
    bench("caffe-conv-fwd (NN)", Transpose::No, Transpose::No, 8, 1024, 27);
    bench("latte-conv-bwd-w (TN)", Transpose::Yes, Transpose::No, 8, 27, 1024);
    bench("latte-conv-bwd-d (NN)", Transpose::No, Transpose::No, 1024, 27, 8);
    bench("big square", Transpose::No, Transpose::No, 256, 256, 256);
}
