//! Regenerates every figure and table of the paper's evaluation
//! (Section 7). Usage:
//!
//! ```text
//! cargo run --release -p latte-bench --bin figures -- [fig13|fig14|fig15|fig16|fig17|fig18|fig19|fig20|all] [--full]
//! ```
//!
//! Default shapes are scaled down for a single-core CI machine; `--full`
//! uses the paper's published input sizes (slow). Absolute numbers will
//! not match a 36-core Xeon with MKL — the *shapes* (who wins, rough
//! factors, where crossovers fall) are the reproduction target; see
//! EXPERIMENTS.md.

use latte_baselines::{caffe, mocha, spec};
use latte_bench::{
    compile_or_die, executor_or_die, print_compile_stats, print_table, seeded, speedup,
    time_baseline, time_latte, Pass,
};
use latte_core::OptLevel;
use latte_nn::models::{self, ModelConfig};
use latte_runtime::accel::{AcceleratorSpec, HeterogeneousScheduler, WorkloadModel};
use latte_runtime::cluster::{
    profiles_from_measurements, strong_scaling, weak_scaling, NetworkModel,
};
use latte_runtime::data::{synthetic_mnist, BatchSource, MemoryDataSource};
use latte_runtime::parallel::{DataParallelConfig, DataParallelTrainer, GradSync};


#[derive(Clone, Copy)]
struct Scale {
    /// Square input edge for the VGG-style benchmarks.
    vgg_input: usize,
    alexnet_input: usize,
    overfeat_input: usize,
    /// Channel divider (1 = published widths).
    div: usize,
    batch: usize,
}

impl Scale {
    fn small() -> Self {
        Scale {
            vgg_input: 32,
            alexnet_input: 67,
            overfeat_input: 71,
            div: 8,
            batch: 4,
        }
    }

    fn full() -> Self {
        Scale {
            vgg_input: 224,
            alexnet_input: 227,
            overfeat_input: 231,
            div: 1,
            batch: 16,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::small() };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| a.as_str() != "--full")
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let run = |name: &str| all || which.contains(&name);

    println!(
        "latte figures harness ({} shapes; see EXPERIMENTS.md for interpretation)",
        if full { "full" } else { "scaled" }
    );
    if run("fig13") {
        fig13(scale);
    }
    if run("fig14") {
        fig14(scale);
    }
    if run("fig15") {
        fig15(scale);
    }
    if run("fig16") {
        fig16(scale);
    }
    if run("fig17") {
        fig17(scale);
    }
    if run("fig18") {
        fig18(scale);
    }
    if run("fig19") {
        fig19(scale);
    }
    if run("fig20") {
        fig20();
    }
}

/// One standalone VGG convolution group `g` (1-based) as a Latte model
/// and a baseline spec list, with matching shapes.
fn vgg_group(scale: Scale, group: usize) -> (latte_core::dsl::Net, Vec<spec::LayerSpec>, (usize, usize, usize)) {
    use latte_nn::layers::{convolution, data, max_pool, relu, ConvSpec};
    let table = [(64usize, 1usize), (128, 1), (256, 2), (512, 2), (512, 2)];
    let ch = |c: usize| (c / scale.div).max(1);
    let input_edge = scale.vgg_input >> (group - 1);
    let in_c = if group == 1 { 3 } else { ch(table[group - 2].0) };
    let (out_c, convs) = table[group - 1];

    let mut net = latte_core::dsl::Net::new(scale.batch);
    let d = data(&mut net, "data", vec![input_edge, input_edge, in_c]);
    let mut prev = d;
    for i in 0..convs {
        let c = convolution(
            &mut net,
            &format!("conv{i}"),
            prev,
            ConvSpec::same(ch(out_c), 3),
            group as u64 * 10 + i as u64,
        );
        prev = relu(&mut net, &format!("relu{i}"), c);
    }
    max_pool(&mut net, "pool", prev, 2, 2);

    let mut specs = Vec::new();
    for _ in 0..convs {
        specs.push(spec::LayerSpec::Conv {
            out_channels: ch(out_c),
            kernel: 3,
            stride: 1,
            pad: 1,
        });
        specs.push(spec::LayerSpec::ReLU);
    }
    specs.push(spec::LayerSpec::MaxPool { kernel: 2, stride: 2 });
    (net, specs, (in_c, input_edge, input_edge))
}

/// Figure 13: effect of individual optimizations on the VGG first-group
/// microbenchmark, as speedup over the Caffe-style baseline.
fn fig13(scale: Scale) {
    let (net, specs, input_shape) = vgg_group(scale, 1);
    let input = seeded(scale.batch * input_shape.0 * input_shape.1 * input_shape.2, 3);

    let mut caffe_net = caffe::build(input_shape, scale.batch, &specs, 1);
    caffe_net.set_input(&input);
    let caffe_t = [
        time_baseline(&mut caffe_net, Pass::Forward, 3),
        time_baseline(&mut caffe_net, Pass::Backward, 3),
        time_baseline(&mut caffe_net, Pass::Both, 3),
    ];

    let variants: Vec<(&str, OptLevel)> = vec![
        ("parallelization", OptLevel::parallel_only()),
        (
            "+pattern match (GEMM)",
            OptLevel::parallel_only().with_pattern_match(true),
        ),
        (
            "+tiling",
            OptLevel::parallel_only()
                .with_pattern_match(true)
                .with_tiling(true),
        ),
        (
            "+fusion",
            OptLevel::parallel_only()
                .with_pattern_match(true)
                .with_tiling(true)
                .with_fusion(true),
        ),
        ("+vectorization (full)", OptLevel::full()),
    ];

    let mut rows = Vec::new();
    for (name, opt) in variants {
        let compiled = compile_or_die(&net, &opt, "vgg group 1");
        if name == "+vectorization (full)" {
            print_compile_stats(&compiled, "VGG group 1 at full");
        }
        let mut exec = executor_or_die(compiled, "vgg group 1");
        exec.set_input("data", &input).expect("input");
        let t = [
            time_latte(&mut exec, Pass::Forward, 3),
            time_latte(&mut exec, Pass::Backward, 3),
            time_latte(&mut exec, Pass::Both, 3),
        ];
        rows.push(vec![
            name.to_string(),
            speedup(caffe_t[0], t[0]),
            speedup(caffe_t[1], t[1]),
            speedup(caffe_t[2], t[2]),
        ]);
    }
    rows.push(vec![
        "(caffe baseline ms)".to_string(),
        format!("{:.2}", caffe_t[0] * 1e3),
        format!("{:.2}", caffe_t[1] * 1e3),
        format!("{:.2}", caffe_t[2] * 1e3),
    ]);
    print_table(
        "Figure 13: per-optimization speedup over Caffe, VGG conv1 group",
        &["variant", "forward", "backward", "fwd+bwd"],
        &rows,
    );
}

fn model_cfg(scale: Scale, input: usize) -> ModelConfig {
    ModelConfig {
        batch: scale.batch,
        input_size: input,
        channel_div: scale.div,
        classes: if scale.div == 1 { 1000 } else { 100 },
        with_loss: true,
        seed: 5,
    }
}

/// Times a full model in Latte (full opt) and a baseline stack; returns
/// `(latte, baseline)` fwd+bwd seconds.
fn time_model_pair(
    scale: Scale,
    model: &models::Model,
    specs: &[spec::LayerSpec],
    input_shape: (usize, usize, usize),
    mocha_backend: bool,
) -> (f64, f64) {
    let compiled = compile_or_die(&model.net, &OptLevel::full(), "model");
    let mut exec = executor_or_die(compiled, "model");
    let n = input_shape.0 * input_shape.1 * input_shape.2;
    let input = seeded(scale.batch * n, 17);
    exec.set_input("data", &input).expect("input");
    let labels: Vec<f32> = (0..scale.batch).map(|i| (i % 10) as f32).collect();
    exec.set_input("label", &labels).expect("labels");
    let latte_t = time_latte(&mut exec, Pass::Both, 3);

    let mut base = if mocha_backend {
        mocha::build(input_shape, scale.batch, specs, 5)
    } else {
        caffe::build(input_shape, scale.batch, specs, 5)
    };
    base.set_input(&input);
    base.set_labels(&labels);
    let base_t = time_baseline(&mut base, Pass::Both, if mocha_backend { 1 } else { 3 });
    (latte_t, base_t)
}

/// Figure 14: Latte speedup over the Caffe-style baseline on the three
/// ImageNet models.
fn fig14(scale: Scale) {
    let mut rows = Vec::new();
    let alex = models::alexnet(&model_cfg(scale, scale.alexnet_input));
    let (l, c) = time_model_pair(
        scale,
        &alex,
        &spec::alexnet_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.alexnet_input, scale.alexnet_input),
        false,
    );
    rows.push(vec!["AlexNet".into(), speedup(c, l), format!("{:.1} ms", l * 1e3), format!("{:.1} ms", c * 1e3)]);

    let over = models::overfeat(&model_cfg(scale, scale.overfeat_input));
    let (l, c) = time_model_pair(
        scale,
        &over,
        &spec::overfeat_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.overfeat_input, scale.overfeat_input),
        false,
    );
    rows.push(vec!["OverFeat".into(), speedup(c, l), format!("{:.1} ms", l * 1e3), format!("{:.1} ms", c * 1e3)]);

    let vgg = models::vgg_a(&model_cfg(scale, scale.vgg_input));
    let (l, c) = time_model_pair(
        scale,
        &vgg,
        &spec::vgg_a_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.vgg_input, scale.vgg_input),
        false,
    );
    rows.push(vec!["VGG-A".into(), speedup(c, l), format!("{:.1} ms", l * 1e3), format!("{:.1} ms", c * 1e3)]);

    print_table(
        "Figure 14: Latte speedup over Caffe (fwd+bwd per batch)",
        &["model", "speedup", "latte", "caffe"],
        &rows,
    );
}

/// Figure 15: per-group breakdown over the first four VGG
/// conv(+conv)+ReLU+pool groups.
fn fig15(scale: Scale) {
    let mut rows = Vec::new();
    for group in 1..=4 {
        let (net, specs, input_shape) = vgg_group(scale, group);
        let input = seeded(
            scale.batch * input_shape.0 * input_shape.1 * input_shape.2,
            group as u32,
        );
        let compiled = compile_or_die(&net, &OptLevel::full(), "vgg group");
        let fusions = compiled.stats.fusions;
        if group == 1 {
            print_compile_stats(&compiled, "VGG group 1 at full");
        }
        let mut exec = executor_or_die(compiled, "vgg group");
        exec.set_input("data", &input).expect("input");
        let latte_t = time_latte(&mut exec, Pass::Both, 3);

        let mut caffe_net = caffe::build(input_shape, scale.batch, &specs, 2);
        caffe_net.set_input(&input);
        let caffe_t = time_baseline(&mut caffe_net, Pass::Both, 3);
        rows.push(vec![
            format!("group {group}"),
            speedup(caffe_t, latte_t),
            format!("{}", fusions),
            format!("{:.1} ms", latte_t * 1e3),
            format!("{:.1} ms", caffe_t * 1e3),
        ]);
    }
    print_table(
        "Figure 15: VGG per-group speedup over Caffe (fwd+bwd)",
        &["group", "speedup", "fusions", "latte", "caffe"],
        &rows,
    );
}

/// Figure 16: Latte speedup over the Mocha-style naive stack.
fn fig16(scale: Scale) {
    // The naive stack is orders of magnitude slower; shrink further.
    let scale = Scale {
        div: (scale.div * 2).max(2),
        batch: 2,
        ..scale
    };
    let mut rows = Vec::new();
    let alex = models::alexnet(&model_cfg(scale, scale.alexnet_input));
    let (l, m) = time_model_pair(
        scale,
        &alex,
        &spec::alexnet_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.alexnet_input, scale.alexnet_input),
        true,
    );
    rows.push(vec!["AlexNet".into(), speedup(m, l)]);
    let over = models::overfeat(&model_cfg(scale, scale.overfeat_input));
    let (l, m) = time_model_pair(
        scale,
        &over,
        &spec::overfeat_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.overfeat_input, scale.overfeat_input),
        true,
    );
    rows.push(vec!["OverFeat".into(), speedup(m, l)]);
    let vgg = models::vgg_a(&model_cfg(scale, scale.vgg_input));
    let (l, m) = time_model_pair(
        scale,
        &vgg,
        &spec::vgg_a_specs(scale.div, model_cfg(scale, 0).classes),
        (3, scale.vgg_input, scale.vgg_input),
        true,
    );
    rows.push(vec!["VGG-A".into(), speedup(m, l)]);
    print_table(
        "Figure 16: Latte speedup over Mocha-style naive stack (fwd+bwd)",
        &["model", "speedup"],
        &rows,
    );
}

/// Measures the host workload model for the accelerator simulation.
fn host_workload(scale: Scale) -> WorkloadModel {
    let cfg = model_cfg(scale, scale.alexnet_input);
    let model = models::alexnet(&cfg);
    let compiled = compile_or_die(&model.net, &OptLevel::full(), "alexnet");
    let grad_bytes: f64 = compiled
        .params
        .iter()
        .filter_map(|p| compiled.buffer(&p.value))
        .map(|b| b.shape.len() as f64 * 4.0)
        .sum();
    let mut exec = executor_or_die(compiled, "alexnet");
    let n = 3 * scale.alexnet_input * scale.alexnet_input;
    exec.set_input("data", &seeded(scale.batch * n, 7)).expect("input");
    exec.set_input("label", &vec![0.0; scale.batch]).expect("labels");
    let t = time_latte(&mut exec, Pass::Both, 3);
    WorkloadModel {
        host_seconds_per_item: t / scale.batch as f64,
        input_bytes_per_item: n as f64 * 4.0,
        gradient_bytes: grad_bytes,
    }
}

/// Figure 17: throughput with 0/1/2 simulated coprocessors.
fn fig17(scale: Scale) {
    let workload = host_workload(scale);
    let batch = 256;
    let mut rows = Vec::new();
    let mut base = 0.0;
    for cards in 0..=2 {
        let accels = vec![AcceleratorSpec::phi_like(); cards];
        let mut sched = HeterogeneousScheduler::new(workload, accels);
        let thr = sched.throughput(batch);
        if cards == 0 {
            base = thr;
        }
        rows.push(vec![
            format!("host + {cards} coprocessor(s)"),
            format!("{thr:.1} img/s"),
            format!("{:.2}x", thr / base),
            format!("{:?}", sched.chunks()),
        ]);
    }
    print_table(
        "Figure 17: throughput with simulated Xeon-Phi-like coprocessors",
        &["configuration", "throughput", "vs host", "tuned chunks"],
        &rows,
    );
}

/// Per-layer profiles for the cluster simulations, measured from a real
/// executor run of the scaled VGG model.
fn measured_profiles(_scale: Scale, model: &models::Model) -> Vec<latte_runtime::cluster::LayerProfile> {
    let compiled = compile_or_die(&model.net, &OptLevel::full(), "cluster model");
    // Gradient bytes per forward group, by ensemble membership.
    let mut group_bytes: Vec<(String, f64)> = Vec::new();
    for g in &compiled.forward {
        let mut bytes = 0.0;
        for ens in &g.ensembles {
            for p in &compiled.params {
                if p.value.starts_with(&format!("{ens}.")) {
                    if let Some(b) = compiled.buffer(&p.value) {
                        bytes += b.shape.len() as f64 * 4.0;
                    }
                }
            }
        }
        group_bytes.push((g.name.clone(), bytes));
    }
    let batch = compiled.batch;
    let mut exec = executor_or_die(compiled, "cluster model");
    let dims = model.net.ensemble(model.data).dims().to_vec();
    let n: usize = dims.iter().product();
    exec.set_input("data", &seeded(batch * n, 13)).expect("input");
    let _ = exec.set_input("label", &vec![0.0; batch]);
    let _ = exec.set_input("target", &vec![0.0; batch]);
    exec.forward();
    let fwd = exec.forward_timed();
    let bwd = exec.backward_timed();
    profiles_from_measurements(
        &fwd,
        &bwd,
        batch,
        |name| {
            group_bytes
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| *b)
                .unwrap_or(0.0)
        },
        0.1,
    )
}

/// Analytic `(name, fwd_flops_per_item, params)` rows for a baseline spec
/// list at the published model scale.
fn analytic_layers(
    specs: &[spec::LayerSpec],
    mut shape: (usize, usize, usize),
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        let next = spec::out_shape(s, shape);
        let (flops, params) = match *s {
            spec::LayerSpec::Conv {
                out_channels,
                kernel,
                ..
            } => {
                let patch = kernel * kernel * shape.0;
                (
                    2.0 * (patch * next.1 * next.2 * out_channels) as f64,
                    (out_channels * patch + out_channels) as f64,
                )
            }
            spec::LayerSpec::Fc { out: o } => {
                let n_in = shape.0 * shape.1 * shape.2;
                (2.0 * (n_in * o) as f64, (n_in * o + o) as f64)
            }
            _ => ((shape.0 * shape.1 * shape.2) as f64, 0.0),
        };
        out.push((format!("layer{i}"), flops, params));
        shape = next;
    }
    out
}

fn scaling_rows(results: Vec<(usize, f64, f64)>) -> Vec<Vec<String>> {
    results
        .into_iter()
        .map(|(n, thr, eff)| {
            vec![
                n.to_string(),
                format!("{thr:.1} img/s"),
                format!("{:.1}%", eff * 100.0),
            ]
        })
        .collect()
}

/// Effective per-node throughput assumed for the analytic paper-scale
/// cluster projections (a 36-core Xeon with MKL on conv/FC GEMMs).
const NODE_GFLOPS: f64 = 250.0;

/// Figure 18: Cori-style strong scaling (fixed global batch 512, VGG).
fn fig18(scale: Scale) {
    // Measured profile at the benchmark's (scaled) model size.
    let model = models::vgg_a(&model_cfg(scale, scale.vgg_input));
    let layers = measured_profiles(scale, &model);
    let rows = scaling_rows(strong_scaling(
        NetworkModel::aries_like(),
        &layers,
        512,
        &[1, 2, 4, 8, 16, 32, 64],
    ));
    print_table(
        "Figure 18a: strong scaling, VGG, global batch 512 (measured scaled profile)",
        &["nodes", "throughput", "efficiency vs linear"],
        &rows,
    );
    // Paper-scale analytic profile: full-width VGG at 224x224, where
    // communication is substantial (the regime Cori actually ran).
    let analytic = latte_runtime::cluster::analytic_profiles(
        &analytic_layers(&spec::vgg_a_specs(1, 1000), (3, 224, 224)),
        NODE_GFLOPS,
        2.0,
    );
    let rows = scaling_rows(strong_scaling(
        NetworkModel::aries_like(),
        &analytic,
        512,
        &[1, 2, 4, 8, 16, 32, 64],
    ));
    print_table(
        "Figure 18b: strong scaling, VGG, global batch 512 (analytic full-scale profile)",
        &["nodes", "throughput", "efficiency vs linear"],
        &rows,
    );
}

/// Figure 19: commodity-cluster weak scaling (batch 64/node, AlexNet).
fn fig19(scale: Scale) {
    let model = models::alexnet(&model_cfg(scale, scale.alexnet_input));
    let layers = measured_profiles(scale, &model);
    let rows = scaling_rows(weak_scaling(
        NetworkModel::infiniband_like(),
        &layers,
        64,
        &[1, 2, 4, 8, 16, 32],
    ));
    print_table(
        "Figure 19a: weak scaling, AlexNet, batch 64/node (measured scaled profile)",
        &["nodes", "throughput", "efficiency vs linear"],
        &rows,
    );
    let analytic = latte_runtime::cluster::analytic_profiles(
        &analytic_layers(&spec::alexnet_specs(1, 1000), (3, 227, 227)),
        NODE_GFLOPS,
        2.0,
    );
    let rows = scaling_rows(weak_scaling(
        NetworkModel::infiniband_like(),
        &analytic,
        64,
        &[1, 2, 4, 8, 16, 32],
    ));
    print_table(
        "Figure 19b: weak scaling, AlexNet, batch 64/node (analytic full-scale profile)",
        &["nodes", "throughput", "efficiency vs linear"],
        &rows,
    );
}

/// Figure 20: MNIST top-1 accuracy, lossy vs sequential gradients.
fn fig20() {
    let worker_batch = 16;
    let train = synthetic_mnist(2048, 3);
    let test = synthetic_mnist(512, 77);
    let cfg = ModelConfig {
        batch: worker_batch,
        input_size: 28 * 28,
        channel_div: 1,
        classes: 10,
        with_loss: true,
        seed: 31,
    };

    let run = |workers: usize, sync: GradSync| -> f32 {
        let mut trainer = DataParallelTrainer::new(
            || {
                compile_or_die(
                    &models::mlp(&cfg, &[128, 64]).net,
                    &OptLevel::full(),
                    "mnist mlp",
                )
            },
            DataParallelConfig {
                workers,
                sync,
                lr: 0.02,
                momentum: 0.9,
            },
        )
        .expect("trainer");
        let mut sources: Vec<MemoryDataSource> = (0..workers)
            .map(|w| {
                let shard: Vec<_> = train.iter().skip(w).step_by(workers).cloned().collect();
                MemoryDataSource::try_new("data", "label", shard, worker_batch).unwrap()
            })
            .collect();
        for _epoch in 0..4 {
            for s in &mut sources {
                s.reset();
            }
            loop {
                let shards: Option<Vec<_>> =
                    sources.iter_mut().map(|s| s.next_batch().expect("batch")).collect();
                match shards {
                    Some(shards) => {
                        trainer.step(&shards).expect("step");
                    }
                    None => break,
                }
            }
        }
        trainer
            .accuracy("data", "ip_out.value", &test)
            .expect("accuracy")
    };

    let lossy = run(4, GradSync::Lossy);
    let sequential = run(1, GradSync::Synchronized);
    let rows = vec![
        vec!["Goodfellow et al. (paper ref)".into(), "99.55%".into()],
        vec!["Adam (paper ref)".into(), "99.63%".into()],
        vec![
            "Latte (lossy, 4 workers)".into(),
            format!("{:.2}%", lossy * 100.0),
        ],
        vec![
            "Latte (sequential)".into(),
            format!("{:.2}%", sequential * 100.0),
        ],
    ];
    print_table(
        "Figure 20: MNIST-like top-1 accuracy (synthetic dataset)",
        &["system", "top-1"],
        &rows,
    );
    println!(
        "lossy == sequential (paper: both 99.20%): Δ = {:.3}%",
        (lossy - sequential).abs() * 100.0
    );
}
