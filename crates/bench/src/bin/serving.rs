//! Serving harness: open-loop latency/throughput of the latte-serve
//! dynamic-batching server, written as machine-readable
//! `BENCH_serving.json`.
//!
//! Each scenario replays a seeded arrival schedule
//! ([`latte_serve::loadgen`]) against a fresh server — steady Poisson
//! traffic and bursty traffic — and records p50/p99 latency, sustained
//! QPS, micro-batch statistics, and the plan-cache counters. The server
//! is warmed over every micro-batch size first, so the headline
//! `recompiles_after_warmup` figure is the serving guarantee: tail
//! batches hit the `(fingerprint, batch)` plan cache instead of the
//! compiler.
//!
//! The `dynshape` scenario extends the guarantee to dynamic shapes: a
//! mixed-length sequence stream routed through a [`SeqServer`]'s
//! power-of-two bucket ladder. After warming every `(bucket, batch)`
//! pair, the scenario *asserts* zero recompiles — odd lengths pad into
//! a warm bucket (counted as `buckets.spills`) instead of reaching the
//! compiler — and records the trace-cache hit/miss/eviction counters
//! alongside the per-bucket routing histogram.
//!
//! Flags: `--smoke` (short schedules, CI-fast), `--out <path>` (default
//! `BENCH_serving.json`), `--validate <path>` (parse an existing
//! artifact, check its schema, and exit — the CI bench-smoke step).

use std::sync::Arc;
use std::time::{Duration, Instant};

use latte_bench::json::{parse, Json};
use latte_core::dsl::Net;
use latte_core::OptLevel;
use latte_nn::layers::{data, fully_connected, relu, softmax_loss, tanh};
use latte_serve::net::run_adversary;
use latte_serve::{
    loadgen, zoo, Arrival, Client, Misbehavior, Model, NetConfig, NetError, NetFrontend, Request,
    SeqServer, ServeConfig, Server, ServeError,
};

struct Args {
    smoke: bool,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_serving.json".to_string(),
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--validate" => args.validate = Some(it.next().expect("--validate needs a path")),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke --out <path> --validate <path>");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The served model: a small MLP classifier, batch-parametric with
/// fixed layer seeds (batch-invariant by construction).
fn classifier(batch: usize) -> Net {
    let mut net = Net::new(batch);
    let x = data(&mut net, "data", vec![16]);
    let fc1 = fully_connected(&mut net, "fc1", x, 32, 21);
    let a1 = tanh(&mut net, "a1", fc1);
    let fc2 = fully_connected(&mut net, "fc2", a1, 24, 22);
    let a2 = relu(&mut net, "a2", fc2);
    let head = fully_connected(&mut net, "head", a2, 10, 23);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn model() -> Model {
    Model::new(
        "bench-classifier",
        Box::new(classifier),
        OptLevel::full(),
        vec!["head.value".to_string()],
    )
    .expect("model registration")
}

/// A deterministic request (inputs derived from `seed`).
fn request(seed: u64) -> Request {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let data: Vec<f32> = (0..16).map(|_| next()).collect();
    let label = vec![(seed % 10) as f32];
    Request {
        inputs: vec![("data".to_string(), data), ("label".to_string(), label)],
    }
}

fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Pre-warms every micro-batch size so steady-state traffic never
/// compiles. Returns the cache miss count after warmup.
fn warmup(server: &Server, max_batch: usize) -> u64 {
    for size in 1..=max_batch {
        let tickets: Vec<_> = (0..size)
            .map(|i| server.submit(request(warm_seed(size, i))).expect("warmup submit"))
            .collect();
        server.flush();
        for t in tickets {
            t.wait_timeout(Duration::from_secs(60)).expect("warmup response");
        }
    }
    server.cache().misses()
}

/// A warmup seed disjoint from scenario request seeds.
fn warm_seed(size: usize, i: usize) -> u64 {
    (size as u64) << 32 | i as u64
}

/// Replays one arrival schedule open-loop and summarizes the run.
fn scenario(name: &str, arrival: &Arrival, n: usize, seed: u64, cfg: ServeConfig) -> Json {
    let server = Server::start(model(), cfg);
    let warm_misses = warmup(&server, cfg.max_batch);

    let offsets = loadgen::schedule(arrival, n, seed);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    let mut rejected = 0u64;
    for (i, &off) in offsets.iter().enumerate() {
        let now = start.elapsed();
        if off > now {
            std::thread::sleep(off - now);
        }
        match server.submit(request(seed.wrapping_add(i as u64))) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("{name}: submit failed: {e}"),
        }
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(tickets.len());
    for t in tickets {
        let resp = t.wait_timeout(Duration::from_secs(120)).expect("response");
        latencies.push(resp.meta.latency);
    }
    let makespan = start.elapsed().as_secs_f64();
    latencies.sort();

    let stats = server.stats();
    let cache = server.cache();
    let recompiles_after_warmup = cache.misses() - warm_misses;
    // Warmup batches are excluded from the scenario's traffic counters.
    let completed = latencies.len() as u64;
    let qps = completed as f64 / makespan;
    let p50 = percentile_ms(&latencies, 50.0);
    let p99 = percentile_ms(&latencies, 99.0);
    let run_batches = stats.batches - cfg.max_batch as u64; // warmup ran one batch per size
    let mean_batch = if run_batches > 0 {
        completed as f64 / run_batches as f64
    } else {
        0.0
    };

    println!(
        "{name}: {completed}/{n} ok, {rejected} rejected, p50 {p50:.3} ms, p99 {p99:.3} ms, \
         {qps:.0} QPS, mean batch {mean_batch:.2}, recompiles after warmup {recompiles_after_warmup}"
    );

    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("requests", Json::Num(n as f64)),
        ("seed", Json::Num(seed as f64)),
        ("p50_ms", Json::Num(p50)),
        ("p99_ms", Json::Num(p99)),
        ("sustained_qps", Json::Num(qps)),
        ("completed", Json::Num(completed as f64)),
        ("rejected", Json::Num(rejected as f64)),
        ("batches", Json::Num(run_batches as f64)),
        ("mean_batch", Json::Num(mean_batch)),
        (
            "flush",
            Json::obj([
                ("size", Json::Num(stats.flush_size as f64)),
                ("deadline", Json::Num(stats.flush_deadline as f64)),
                ("drain", Json::Num(stats.flush_drain as f64)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache.hits() as f64)),
                ("misses", Json::Num(cache.misses() as f64)),
                ("evictions", Json::Num(cache.evictions() as f64)),
                (
                    "recompiles_after_warmup",
                    Json::Num(recompiles_after_warmup as f64),
                ),
            ]),
        ),
    ])
}

/// Longest sequence the dynshape scenario serves (buckets 1, 2, 4, 8).
const SEQ_MAX_LEN: usize = 8;

/// splitmix64, for the dynshape scenario's seeded length stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The dynamic-shape scenario: a mixed-length sequence stream against a
/// [`SeqServer`] bucket ladder. Every `(bucket, micro-batch)` pair is
/// warmed first; the steady-state stream then draws lengths uniformly
/// from `1..=SEQ_MAX_LEN`, so most requests pad ("spill") into a larger
/// bucket — and **none** of them may reach the compiler. The zero-
/// recompile claim is asserted, not just reported.
fn dynshape_scenario(name: &str, arrival: &Arrival, n: usize, seed: u64, cfg: ServeConfig) -> Json {
    let server = SeqServer::start(
        zoo::seq_model(SEQ_MAX_LEN).expect("seq model registration"),
        cfg,
    );
    let ladder: Vec<usize> = server.model().buckets().to_vec();

    // Warm every (bucket, batch) pair with exact-length (spill-free)
    // traffic, mirroring the fixed-shape warmup.
    for &bucket in &ladder {
        for size in 1..=cfg.max_batch {
            let tickets: Vec<_> = (0..size)
                .map(|i| {
                    server
                        .submit(&zoo::seq_sample(bucket, warm_seed(size, i)))
                        .expect("warmup submit")
                })
                .collect();
            server.flush();
            for t in tickets {
                t.wait_timeout(Duration::from_secs(60)).expect("warmup response");
            }
        }
    }
    let warm_misses = server.cache().misses();
    let warm_spills = server.bucket_spills();
    assert_eq!(warm_spills, 0, "exact-length warmup must not spill");

    let offsets = loadgen::schedule(arrival, n, seed);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    let mut rejected = 0u64;
    let mut state = seed ^ 0xd15b_a7c4_ed5e_11e5;
    for &off in offsets.iter() {
        let now = start.elapsed();
        if off > now {
            std::thread::sleep(off - now);
        }
        let len = (mix(&mut state) as usize % SEQ_MAX_LEN) + 1;
        let req_seed = mix(&mut state);
        match server.submit(&zoo::seq_sample(len, req_seed)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("{name}: submit failed: {e}"),
        }
    }
    server.flush();
    let mut latencies: Vec<Duration> = Vec::with_capacity(tickets.len());
    for t in tickets {
        let resp = t.wait_timeout(Duration::from_secs(120)).expect("response");
        latencies.push(resp.meta.latency);
    }
    let makespan = start.elapsed().as_secs_f64();
    latencies.sort();

    let stats = server.stats();
    let cache = server.cache();
    let recompiles_after_warmup = cache.misses() - warm_misses;
    assert_eq!(
        recompiles_after_warmup, 0,
        "a warm bucket ladder must never recompile for a mixed-length stream"
    );
    let completed = latencies.len() as u64;
    let qps = completed as f64 / makespan;
    let p50 = percentile_ms(&latencies, 50.0);
    let p99 = percentile_ms(&latencies, 99.0);
    let warm_batches = (ladder.len() * cfg.max_batch) as u64;
    let run_batches = stats.batches - warm_batches;
    let mean_batch = if run_batches > 0 {
        completed as f64 / run_batches as f64
    } else {
        0.0
    };
    let spills = server.bucket_spills();
    let routed = server.routed();

    println!(
        "{name}: {completed}/{n} ok, {rejected} rejected, p50 {p50:.3} ms, p99 {p99:.3} ms, \
         {qps:.0} QPS, mean batch {mean_batch:.2}, {spills} bucket spills over ladder {ladder:?}, \
         recompiles after warmup {recompiles_after_warmup}"
    );

    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("requests", Json::Num(n as f64)),
        ("seed", Json::Num(seed as f64)),
        ("p50_ms", Json::Num(p50)),
        ("p99_ms", Json::Num(p99)),
        ("sustained_qps", Json::Num(qps)),
        ("completed", Json::Num(completed as f64)),
        ("rejected", Json::Num(rejected as f64)),
        ("batches", Json::Num(run_batches as f64)),
        ("mean_batch", Json::Num(mean_batch)),
        (
            "flush",
            Json::obj([
                ("size", Json::Num(stats.flush_size as f64)),
                ("deadline", Json::Num(stats.flush_deadline as f64)),
                ("drain", Json::Num(stats.flush_drain as f64)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache.hits() as f64)),
                ("misses", Json::Num(cache.misses() as f64)),
                ("evictions", Json::Num(cache.evictions() as f64)),
                (
                    "recompiles_after_warmup",
                    Json::Num(recompiles_after_warmup as f64),
                ),
            ]),
        ),
        (
            "buckets",
            Json::obj([
                (
                    "ladder",
                    Json::Arr(ladder.iter().map(|&b| Json::Num(b as f64)).collect()),
                ),
                (
                    "routed",
                    Json::Arr(routed.iter().map(|&r| Json::Num(r as f64)).collect()),
                ),
                ("spills", Json::Num(spills as f64)),
            ]),
        ),
    ])
}

/// Replays closed-loop traffic over real loopback TCP — through the
/// framed protocol, the per-connection reader/writer threads, and the
/// deadline/admission path — while a seeded fleet of adversarial
/// clients (slow-loris, mid-frame disconnects, corrupt CRCs, a
/// past-deadline flood) rides alongside. The summary carries the same
/// latency/batching figures as the in-process scenarios plus the
/// fault-hardening counters, so a regression in shedding or connection
/// hygiene shows up in the artifact.
fn tcp_scenario(name: &str, n: usize, seed: u64, cfg: ServeConfig) -> Json {
    const PATIENCE: Duration = Duration::from_secs(10);
    const FLOOD: usize = 16;
    let net_cfg = NetConfig {
        max_connections: 16,
        read_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    };

    let server = Arc::new(Server::start(model(), cfg));
    let warm_misses = warmup(&server, cfg.max_batch);
    let front = NetFrontend::bind(Arc::clone(&server), "127.0.0.1:0", net_cfg)
        .expect("loopback bind");
    let addr = front.addr();

    // Well-behaved closed-loop clients: each owns one connection and
    // round-trips its share of the load.
    let client_threads = 4;
    let per_client = n / client_threads;
    let start = Instant::now();
    let clients: Vec<_> = (0..client_threads)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, PATIENCE).expect("client connect");
                let mut latencies = Vec::with_capacity(per_client);
                let mut rejected = 0u64;
                for i in 0..per_client {
                    let req = request(seed.wrapping_add((c * per_client + i) as u64));
                    let t0 = Instant::now();
                    match client.call(i as u64, req.inputs, None) {
                        Ok(_) => latencies.push(t0.elapsed()),
                        Err(NetError::Remote { .. }) => rejected += 1,
                        Err(e) => panic!("well-behaved client failed: {e}"),
                    }
                }
                client.bye().expect("polite close");
                (latencies, rejected)
            })
        })
        .collect();

    // The adversary fleet, concurrent with the real traffic. A corrupt
    // frame and a past-deadline flood are always present so the
    // shedding counters are exercised on every run, whatever the
    // seeded mix contributes.
    let mut mix = loadgen::misbehaviors(4, seed ^ 0xad5e_5a1e, FLOOD);
    mix.push(Misbehavior::HoldOpen);
    mix.push(Misbehavior::CorruptCrc);
    mix.push(Misbehavior::PastDeadlineFlood { requests: FLOOD });
    let floods: usize = mix
        .iter()
        .map(|m| match m {
            Misbehavior::PastDeadlineFlood { requests } => *requests,
            _ => 0,
        })
        .sum();
    let adversaries: Vec<_> = mix
        .into_iter()
        .map(|m| {
            std::thread::spawn(move || {
                run_adversary(addr, &m, PATIENCE).expect("adversary contract");
            })
        })
        .collect();

    // A client that submits work and hangs up without reading the
    // replies: the late deliveries must be dropped and counted, never
    // block a writer thread. Several abandoned replies, because the
    // first write onto the dead socket can still succeed (the RST it
    // provokes lands just after); a later one reliably fails.
    {
        let mut quitter = Client::connect(addr, PATIENCE).expect("quitter connect");
        for i in 0..4u64 {
            let req = request(seed ^ (0x71 + i));
            quitter
                .send_request(i, req.inputs, None)
                .expect("quitter send");
        }
        drop(quitter);
    }

    let mut latencies = Vec::with_capacity(n);
    let mut rejected = 0u64;
    for h in clients {
        let (lat, rej) = h.join().expect("client thread");
        latencies.extend(lat);
        rejected += rej;
    }
    let makespan = start.elapsed().as_secs_f64();
    for h in adversaries {
        h.join().expect("adversary thread");
    }

    // Saturate the connection cap so the refusal path is exercised:
    // every connect past `max_connections` must draw the structured
    // `ConnLimit` frame, never a hang.
    let mut held = Vec::new();
    let mut cap_refused = 0u64;
    for _ in 0..net_cfg.max_connections + 2 {
        match Client::connect(addr, PATIENCE) {
            Ok(c) => held.push(c),
            Err(NetError::Remote { .. }) => cap_refused += 1,
            Err(e) => panic!("cap probe drew an unstructured failure: {e}"),
        }
    }
    assert!(cap_refused >= 2, "the connection cap never refused anyone");
    drop(held);

    // Graceful-drain order, same as latte-served on SIGTERM.
    server.shutdown();
    front.close();

    latencies.sort();
    let stats = server.stats();
    let cache = server.cache();
    let recompiles_after_warmup = cache.misses() - warm_misses;
    let completed = latencies.len() as u64;
    let qps = completed as f64 / makespan;
    let p50 = percentile_ms(&latencies, 50.0);
    let p99 = percentile_ms(&latencies, 99.0);
    let run_batches = stats.batches - cfg.max_batch as u64;
    let mean_batch = if run_batches > 0 {
        completed as f64 / run_batches as f64
    } else {
        0.0
    };
    assert_eq!(
        stats.deadline_rejected + stats.deadline_shed,
        floods as u64,
        "every flooded past-deadline request must be rejected or shed, never executed"
    );
    assert!(stats.conn_timeouts >= 1, "the held-open connection was never reclaimed");
    assert!(stats.frames_corrupt >= 1, "the corrupt frame went unnoticed");
    assert!(
        stats.replies_dropped >= 1,
        "the quitter's abandoned reply was never counted"
    );

    println!(
        "{name}: {completed}/{n} ok over TCP, {rejected} rejected, p50 {p50:.3} ms, \
         p99 {p99:.3} ms, {qps:.0} QPS, mean batch {mean_batch:.2}; \
         conns {}/{} rejected, {} timed out, {} corrupt frames, \
         {} deadline-rejected + {} shed, {} replies dropped",
        stats.conn_rejected,
        stats.conn_accepted + stats.conn_rejected,
        stats.conn_timeouts,
        stats.frames_corrupt,
        stats.deadline_rejected,
        stats.deadline_shed,
        stats.replies_dropped,
    );

    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("requests", Json::Num(n as f64)),
        ("seed", Json::Num(seed as f64)),
        ("p50_ms", Json::Num(p50)),
        ("p99_ms", Json::Num(p99)),
        ("sustained_qps", Json::Num(qps)),
        ("completed", Json::Num(completed as f64)),
        ("rejected", Json::Num(rejected as f64)),
        ("batches", Json::Num(run_batches as f64)),
        ("mean_batch", Json::Num(mean_batch)),
        (
            "flush",
            Json::obj([
                ("size", Json::Num(stats.flush_size as f64)),
                ("deadline", Json::Num(stats.flush_deadline as f64)),
                ("drain", Json::Num(stats.flush_drain as f64)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache.hits() as f64)),
                ("misses", Json::Num(cache.misses() as f64)),
                ("evictions", Json::Num(cache.evictions() as f64)),
                (
                    "recompiles_after_warmup",
                    Json::Num(recompiles_after_warmup as f64),
                ),
            ]),
        ),
        (
            "net",
            Json::obj([
                ("conn_accepted", Json::Num(stats.conn_accepted as f64)),
                ("conn_rejected", Json::Num(stats.conn_rejected as f64)),
                ("conn_timeouts", Json::Num(stats.conn_timeouts as f64)),
                ("frames_corrupt", Json::Num(stats.frames_corrupt as f64)),
                ("deadline_rejected", Json::Num(stats.deadline_rejected as f64)),
                ("deadline_shed", Json::Num(stats.deadline_shed as f64)),
                ("replies_dropped", Json::Num(stats.replies_dropped as f64)),
            ]),
        ),
    ])
}

/// Schema check for a written artifact. Returns a list of violations.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some("latte-serving/v1") {
        errs.push("missing or wrong `schema` (want \"latte-serving/v1\")".into());
    }
    for key in ["max_batch", "max_delay_ms", "replicas", "threads", "queue_cap"] {
        if doc.get("config").and_then(|c| c.get(key)).and_then(Json::as_num).is_none() {
            errs.push(format!("config.{key} missing or not a number"));
        }
    }
    match doc.get("scenarios").and_then(Json::as_arr) {
        None => errs.push("`scenarios` must be an array".into()),
        Some(entries) => {
            for want in ["steady", "bursty", "tcp", "dynshape"] {
                if !entries
                    .iter()
                    .any(|e| e.get("name").and_then(Json::as_str) == Some(want))
                {
                    errs.push(format!("scenario `{want}` missing"));
                }
            }
            for (i, e) in entries.iter().enumerate() {
                if e.get("name").and_then(Json::as_str).is_none() {
                    errs.push(format!("scenarios[{i}].name missing"));
                }
                for key in [
                    "requests",
                    "p50_ms",
                    "p99_ms",
                    "sustained_qps",
                    "completed",
                    "rejected",
                    "batches",
                    "mean_batch",
                ] {
                    if e.get(key).and_then(Json::as_num).is_none() {
                        errs.push(format!("scenarios[{i}].{key} missing or not a number"));
                    }
                }
                for key in ["size", "deadline", "drain"] {
                    if e.get("flush").and_then(|f| f.get(key)).and_then(Json::as_num).is_none() {
                        errs.push(format!("scenarios[{i}].flush.{key} missing or not a number"));
                    }
                }
                for key in ["hits", "misses", "evictions", "recompiles_after_warmup"] {
                    if e.get("cache").and_then(|c| c.get(key)).and_then(Json::as_num).is_none() {
                        errs.push(format!("scenarios[{i}].cache.{key} missing or not a number"));
                    }
                }
                if e.get("name").and_then(Json::as_str) == Some("dynshape") {
                    for key in ["ladder", "routed"] {
                        if e.get("buckets").and_then(|b| b.get(key)).and_then(Json::as_arr).is_none()
                        {
                            errs.push(format!("scenarios[{i}].buckets.{key} missing or not an array"));
                        }
                    }
                    if e.get("buckets").and_then(|b| b.get("spills")).and_then(Json::as_num).is_none()
                    {
                        errs.push(format!("scenarios[{i}].buckets.spills missing or not a number"));
                    }
                    if e.get("cache")
                        .and_then(|c| c.get("recompiles_after_warmup"))
                        .and_then(Json::as_num)
                        != Some(0.0)
                    {
                        errs.push(format!(
                            "scenarios[{i}].cache.recompiles_after_warmup must be 0: a warm \
                             bucket ladder never recompiles"
                        ));
                    }
                }
                if e.get("name").and_then(Json::as_str) == Some("tcp") {
                    for key in [
                        "conn_accepted",
                        "conn_rejected",
                        "conn_timeouts",
                        "frames_corrupt",
                        "deadline_rejected",
                        "deadline_shed",
                        "replies_dropped",
                    ] {
                        if e.get("net").and_then(|v| v.get(key)).and_then(Json::as_num).is_none() {
                            errs.push(format!("scenarios[{i}].net.{key} missing or not a number"));
                        }
                    }
                }
            }
        }
    }
    errs
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let errs = validate_doc(&doc);
        if errs.is_empty() {
            println!("{path}: schema OK");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let cfg = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        queue_cap: 256,
        replicas: 2,
        threads: 1,
        retry_limit: 1,
    };
    let n = if args.smoke { 64 } else { 2000 };
    println!(
        "serving harness ({} mode): {n} requests/scenario, max_batch={}, max_delay={:?}, \
         replicas={}",
        if args.smoke { "smoke" } else { "full" },
        cfg.max_batch,
        cfg.max_delay,
        cfg.replicas
    );

    let scenarios = vec![
        scenario("steady", &Arrival::Steady { rps: 1500.0 }, n, 11, cfg),
        scenario(
            "bursty",
            &Arrival::Bursty {
                burst: 16,
                within: Duration::from_millis(1),
                gap: Duration::from_millis(8),
            },
            n,
            13,
            cfg,
        ),
        scenario(
            "slow_client",
            &Arrival::SlowClient {
                rps: 1500.0,
                stall_every: 50,
                stall: Duration::from_millis(40),
            },
            n,
            17,
            cfg,
        ),
        tcp_scenario("tcp", n, 19, cfg),
        dynshape_scenario("dynshape", &Arrival::Steady { rps: 1500.0 }, n, 23, cfg),
    ];

    let doc = Json::obj([
        ("schema", Json::Str("latte-serving/v1".into())),
        ("smoke", Json::Bool(args.smoke)),
        (
            "config",
            Json::obj([
                ("max_batch", Json::Num(cfg.max_batch as f64)),
                ("max_delay_ms", Json::Num(cfg.max_delay.as_secs_f64() * 1e3)),
                ("replicas", Json::Num(cfg.replicas as f64)),
                ("threads", Json::Num(cfg.threads as f64)),
                ("queue_cap", Json::Num(cfg.queue_cap as f64)),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
    ]);
    std::fs::write(&args.out, doc.render())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}
