//! Cluster harness for the real transport: overlap efficiency of the
//! layer-by-layer streamed ring all-reduce, synchronized step time, and
//! the degraded-mode (post-eviction, lossy) step time, written as
//! machine-readable `BENCH_cluster.json`.
//!
//! Everything runs in-process over the channel transport — real frames,
//! real CRCs, real deadlines — so the numbers measure the communicator,
//! not the kernel of the day. The fault section injects a genuine node
//! crash through `FaultyTransport` and times the survivors before and
//! after the ring heals.
//!
//! Flags: `--smoke` (tiny model, CI-fast), `--out <path>` (default
//! `BENCH_cluster.json`), `--validate <path>` (parse an existing
//! artifact, check its schema, and exit — the CI bench-smoke step).

use std::sync::Arc;

use latte_bench::json::{parse, Json};
use latte_core::{compile, OptLevel};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::cluster::SyncMode;
use latte_runtime::data::Batch;
use latte_runtime::dist::{DistStats, DistTrainer};
use latte_runtime::fault::{Fault, FaultPlan, FaultyTransport};
use latte_runtime::ring::CommPolicy;
use latte_runtime::solver::{LrPolicy, MomPolicy, Sgd, Solver, SolverParams};
use latte_runtime::transport::{channel_group, channel_group_with};
use latte_runtime::Executor;

struct Args {
    smoke: bool,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_cluster.json".to_string(),
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--validate" => args.validate = Some(it.next().expect("--validate needs a path")),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke --out <path> --validate <path>");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Shape {
    batch: usize,
    input: usize,
    classes: usize,
    hidden: Vec<usize>,
}

fn shape(smoke: bool) -> Shape {
    if smoke {
        Shape { batch: 4, input: 6, classes: 3, hidden: vec![8] }
    } else {
        Shape { batch: 8, input: 24, classes: 10, hidden: vec![64, 48, 32] }
    }
}

fn build_executor(sh: &Shape) -> Executor {
    let cfg = ModelConfig {
        batch: sh.batch,
        input_size: sh.input,
        channel_div: 1,
        classes: sh.classes,
        with_loss: true,
        seed: 7,
    };
    Executor::new(compile(&mlp(&cfg, &sh.hidden).net, &OptLevel::full()).expect("compile"))
        .expect("executor")
}

fn solver() -> Sgd {
    Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.05 },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0,
        max_epoch: 1,
    })
}

fn shard(sh: &Shape, step: u32, rank: usize) -> Batch {
    let mut inputs = Vec::with_capacity(sh.batch * sh.input);
    let mut labels = Vec::with_capacity(sh.batch);
    for item in 0..sh.batch {
        let g = 7u64
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((step as u64) << 24)
            .wrapping_add((rank as u64) << 12)
            .wrapping_add(item as u64);
        let class = (g % sh.classes as u64) as usize;
        for j in 0..sh.input {
            let base = if j % sh.classes == class { 1.0 } else { 0.1 };
            inputs.push(base + ((g >> 8).wrapping_add(j as u64) % 7) as f32 * 0.01);
        }
        labels.push(class as f32);
    }
    vec![("data".into(), inputs), ("label".into(), labels)]
}

struct RankOutcome {
    stats: DistStats,
    /// Mean step wall-clock before the first lossy step, ms.
    sync_step_ms: f64,
    /// Mean step wall-clock of the lossy steps, ms (NaN when none ran).
    lossy_step_ms: f64,
}

/// Runs `steps` distributed steps on every rank of `endpoints` and
/// returns the per-rank timing outcomes (ranks whose trainer errored —
/// e.g. the crashed one — are dropped).
fn run_world<W: latte_runtime::transport::Wire>(
    endpoints: Vec<latte_runtime::transport::Endpoint<W>>,
    policy: CommPolicy,
    sh: Arc<Shape>,
    steps: u32,
) -> Vec<RankOutcome> {
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| {
            let policy = policy.clone();
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || {
                let exec = build_executor(&sh);
                let mut trainer = DistTrainer::new(exec, Box::new(ep), policy).ok()?;
                let mut solver = solver();
                let mut sync = Vec::new();
                let mut lossy = Vec::new();
                for step in 0..steps {
                    let batch = shard(&sh, step, rank);
                    let t = std::time::Instant::now();
                    match trainer.step(&batch, &mut |e| solver.step(e)) {
                        Ok(rep) => {
                            let ms = t.elapsed().as_secs_f64() * 1e3;
                            if rep.mode == SyncMode::LossyDegraded {
                                lossy.push(ms);
                            } else {
                                sync.push(ms);
                            }
                        }
                        Err(_) => return None,
                    }
                }
                let mean = |v: &[f64]| {
                    if v.is_empty() {
                        f64::NAN
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                Some(RankOutcome {
                    stats: trainer.stats(),
                    sync_step_ms: mean(&sync),
                    lossy_step_ms: mean(&lossy),
                })
            })
        })
        .collect();
    handles
        .into_iter()
        .filter_map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

fn overlap_section(smoke: bool, world: usize, steps: u32) -> Json {
    let sh = Arc::new(shape(smoke));
    let endpoints = channel_group(world).expect("channel group");
    let outs = run_world(endpoints, CommPolicy::default(), sh, steps);
    assert_eq!(outs.len(), world, "a clean run must not lose ranks");
    let agg = outs.iter().fold(DistStats::default(), |mut a, o| {
        a.steps += o.stats.steps;
        a.comm_ms += o.stats.comm_ms;
        a.exposed_ms += o.stats.exposed_ms;
        a.backward_ms += o.stats.backward_ms;
        a
    });
    let sync_ms = outs.iter().map(|o| o.sync_step_ms).sum::<f64>() / outs.len() as f64;
    let eff = {
        let mut s = agg;
        s.steps /= world as u64;
        s.overlap_efficiency()
    };
    println!(
        "overlap: world={world} steps={steps}  comm={:.2}ms exposed={:.2}ms  efficiency={:.3}  step={:.2}ms",
        agg.comm_ms, agg.exposed_ms, eff, sync_ms
    );
    Json::obj([
        ("world", Json::Num(world as f64)),
        ("steps", Json::Num(steps as f64)),
        ("comm_ms", Json::Num(agg.comm_ms)),
        ("exposed_ms", Json::Num(agg.exposed_ms)),
        ("backward_ms", Json::Num(agg.backward_ms)),
        ("overlap_efficiency", Json::Num(eff)),
        ("sync_step_ms", Json::Num(sync_ms)),
    ])
}

fn degraded_section(smoke: bool, world: usize, steps: u32) -> Json {
    let sh = Arc::new(shape(smoke));
    let crash_at = 1u32;
    let plan = FaultPlan::new(vec![Fault::NodeCrash { node: world - 1, iter: crash_at as usize }]);
    let endpoints = channel_group_with(world, |rank, wire| {
        let p = if rank == world - 1 { plan.clone() } else { FaultPlan::none() };
        FaultyTransport::new(rank, p, wire)
    })
    .expect("faulty channel group");
    let policy = CommPolicy {
        op_timeout_ms: 500,
        max_retries: 2,
        lossy_timeout_ms: 150,
        ..CommPolicy::default()
    };
    let outs = run_world(endpoints, policy, sh, steps);
    assert!(
        outs.len() >= world - 1,
        "survivors must finish the degraded run"
    );
    let survivors: Vec<&RankOutcome> =
        outs.iter().filter(|o| o.stats.lossy_steps > 0).collect();
    assert!(!survivors.is_empty(), "the crash must degrade someone");
    let mean = |f: &dyn Fn(&RankOutcome) -> f64| {
        let vals: Vec<f64> = survivors.iter().map(|o| f(o)).filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let sync_ms = mean(&|o: &RankOutcome| o.sync_step_ms);
    let lossy_ms = mean(&|o: &RankOutcome| o.lossy_step_ms);
    println!(
        "degraded: world={world} crash_at={crash_at}  sync_step={sync_ms:.2}ms  lossy_step={lossy_ms:.2}ms"
    );
    Json::obj([
        ("world", Json::Num(world as f64)),
        ("steps", Json::Num(steps as f64)),
        ("crash_at_step", Json::Num(crash_at as f64)),
        ("sync_step_ms", Json::Num(sync_ms)),
        ("lossy_step_ms", Json::Num(lossy_ms)),
        (
            "lossy_steps",
            Json::Num(survivors.iter().map(|o| o.stats.lossy_steps).sum::<u64>() as f64),
        ),
    ])
}

/// Schema check for a written artifact. Returns a list of violations.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some("latte-cluster/v1") {
        errs.push("missing or wrong `schema` (want \"latte-cluster/v1\")".into());
    }
    match doc.get("overlap") {
        None => errs.push("`overlap` missing".into()),
        Some(o) => {
            for key in ["world", "steps", "comm_ms", "exposed_ms", "overlap_efficiency", "sync_step_ms"] {
                if o.get(key).and_then(Json::as_num).is_none() {
                    errs.push(format!("overlap.{key} missing or not a number"));
                }
            }
            if let Some(eff) = o.get("overlap_efficiency").and_then(Json::as_num) {
                if !(0.0..=1.0).contains(&eff) {
                    errs.push(format!("overlap_efficiency {eff} outside [0, 1]"));
                }
            }
        }
    }
    match doc.get("degraded") {
        None => errs.push("`degraded` missing".into()),
        Some(d) => {
            for key in ["world", "steps", "crash_at_step", "lossy_step_ms", "lossy_steps"] {
                if d.get(key).and_then(Json::as_num).is_none() {
                    errs.push(format!("degraded.{key} missing or not a number"));
                }
            }
        }
    }
    errs
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        let errs = validate_doc(&doc);
        if errs.is_empty() {
            println!("{path}: schema OK");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let (world, steps) = if args.smoke { (4, 4) } else { (4, 12) };
    println!(
        "cluster harness ({} mode), world {world}, {steps} steps",
        if args.smoke { "smoke" } else { "full" }
    );

    let overlap = overlap_section(args.smoke, world, steps);
    let degraded = degraded_section(args.smoke, world, steps);

    let doc = Json::obj([
        ("schema", Json::Str("latte-cluster/v1".into())),
        ("smoke", Json::Bool(args.smoke)),
        ("overlap", overlap),
        ("degraded", degraded),
    ]);
    std::fs::write(&args.out, doc.render())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}
