//! The Mocha.jl-style baseline: a straightforward high-level
//! implementation with none of the systems work.
//!
//! Convolution and fully-connected layers are direct scalar loops with
//! per-call bounds arithmetic and fresh temporary allocations each
//! invocation, no GEMM, no blocking, no parallelism — the performance
//! profile of an idiomatic dynamic-language framework, which is what the
//! paper's Figure 16 compares against.

use latte_tensor::init;

use crate::net::{Backend, Blob, Layer, SequentialNet};
use crate::spec::{BlobShape, LayerSpec};

/// Marker type implementing [`Backend`] for the Mocha-style stack.
#[derive(Debug, Clone, Copy)]
pub struct MochaBackend;

/// Builds a Mocha-style network.
pub fn build(input: BlobShape, batch: usize, specs: &[LayerSpec], seed: u64) -> SequentialNet {
    SequentialNet::build::<MochaBackend>(input, batch, specs, seed)
}

impl Backend for MochaBackend {
    fn build(spec: &LayerSpec, input: BlobShape, seed: u64) -> Box<dyn Layer> {
        match *spec {
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => Box::new(NaiveConv {
                input,
                out_channels,
                kernel,
                stride,
                pad,
                weights: init::xavier(
                    vec![out_channels, input.0 * kernel * kernel],
                    input.0 * kernel * kernel,
                    seed,
                )
                .into_vec(),
                bias: vec![0.0; out_channels],
                g_weights: vec![0.0; out_channels * input.0 * kernel * kernel],
                g_bias: vec![0.0; out_channels],
            }),
            LayerSpec::ReLU => Box::new(NaiveRelu),
            LayerSpec::MaxPool { kernel, stride } => Box::new(NaiveMaxPool {
                input,
                kernel,
                stride,
            }),
            LayerSpec::Lrn { size, alpha, beta } => Box::new(NaiveLrn {
                input,
                size,
                alpha,
                beta,
            }),
            LayerSpec::Fc { out } => {
                let n_in = input.0 * input.1 * input.2;
                Box::new(NaiveFc {
                    n_in,
                    n_out: out,
                    weights: init::xavier(vec![out, n_in], n_in, seed).into_vec(),
                    bias: vec![0.0; out],
                    g_weights: vec![0.0; out * n_in],
                    g_bias: vec![0.0; out],
                })
            }
            LayerSpec::SoftmaxLoss => Box::new(NaiveSoftmaxLoss { labels: Vec::new() }),
        }
    }
}

struct NaiveConv {
    input: BlobShape,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    g_weights: Vec<f32>,
    g_bias: Vec<f32>,
}

impl NaiveConv {
    fn out_hw(&self) -> (usize, usize) {
        let (_, h, w) = self.input;
        (
            (h + 2 * self.pad - self.kernel) / self.stride + 1,
            (w + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }
}

impl Layer for NaiveConv {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let (cin, h, w) = self.input;
        let (oh, ow) = self.out_hw();
        let k = self.kernel;
        for item in 0..batch {
            // A fresh temporary every call, like an idiomatic high-level
            // implementation.
            let x: Vec<f32> =
                bottom.data[item * cin * h * w..(item + 1) * cin * h * w].to_vec();
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..cin {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = oy as isize * self.stride as isize + ky as isize
                                        - self.pad as isize;
                                    let ix = ox as isize * self.stride as isize + kx as isize
                                        - self.pad as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize
                                    {
                                        continue;
                                    }
                                    acc += x[ic * h * w + iy as usize * w + ix as usize]
                                        * self.weights
                                            [oc * cin * k * k + ic * k * k + ky * k + kx];
                                }
                            }
                        }
                        top.data[item * self.out_channels * oh * ow + oc * oh * ow + oy * ow
                            + ox] = acc;
                    }
                }
            }
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let (cin, h, w) = self.input;
        let (oh, ow) = self.out_hw();
        let k = self.kernel;
        for item in 0..batch {
            let g: Vec<f32> = top.grad[item * self.out_channels * oh * ow
                ..(item + 1) * self.out_channels * oh * ow]
                .to_vec();
            let x: Vec<f32> =
                bottom.data[item * cin * h * w..(item + 1) * cin * h * w].to_vec();
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[oc * oh * ow + oy * ow + ox];
                        self.g_bias[oc] += go;
                        for ic in 0..cin {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = oy as isize * self.stride as isize + ky as isize
                                        - self.pad as isize;
                                    let ix = ox as isize * self.stride as isize + kx as isize
                                        - self.pad as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize
                                    {
                                        continue;
                                    }
                                    let xi = ic * h * w + iy as usize * w + ix as usize;
                                    let wi = oc * cin * k * k + ic * k * k + ky * k + kx;
                                    self.g_weights[wi] += go * x[xi];
                                    bottom.grad[item * cin * h * w + xi] +=
                                        go * self.weights[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn sgd_step(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&mut self.g_weights) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.iter_mut().zip(&mut self.g_bias) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn params_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (&mut self.weights, &mut self.g_weights),
            (&mut self.bias, &mut self.g_bias),
        ]
    }

    fn label(&self) -> String {
        format!("naive-conv/{}", self.out_channels)
    }
}

struct NaiveRelu;

impl Layer for NaiveRelu {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, _batch: usize) {
        // Allocate-then-assign, as a naive vectorized style would.
        let out: Vec<f32> = bottom.data.iter().map(|&x| x.max(0.0)).collect();
        top.data.copy_from_slice(&out);
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, _batch: usize) {
        let gin: Vec<f32> = top
            .grad
            .iter()
            .zip(&top.data)
            .map(|(&g, &t)| if t > 0.0 { g } else { 0.0 })
            .collect();
        bottom.grad.copy_from_slice(&gin);
    }

    fn label(&self) -> String {
        "naive-relu".to_string()
    }
}

struct NaiveMaxPool {
    input: BlobShape,
    kernel: usize,
    stride: usize,
}

impl Layer for NaiveMaxPool {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let (c, h, w) = self.input;
        let (oh, ow) = (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        );
        for item in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let v = bottom.data[item * c * h * w
                                    + ch * h * w
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        top.data[item * c * oh * ow + ch * oh * ow + oy * ow + ox] = best;
                    }
                }
            }
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let (c, h, w) = self.input;
        let (oh, ow) = (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        );
        for item in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Recompute the argmax, naive-style.
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let i = item * c * h * w
                                    + ch * h * w
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx;
                                if bottom.data[i] > best {
                                    best = bottom.data[i];
                                    best_i = i;
                                }
                            }
                        }
                        bottom.grad[best_i] +=
                            top.grad[item * c * oh * ow + ch * oh * ow + oy * ow + ox];
                    }
                }
            }
        }
    }

    fn label(&self) -> String {
        "naive-maxpool".to_string()
    }
}

struct NaiveLrn {
    input: BlobShape,
    size: usize,
    alpha: f32,
    beta: f32,
}

impl Layer for NaiveLrn {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let (c, h, w) = self.input;
        let plane = h * w;
        let per = c * plane;
        let half = self.size / 2;
        for item in 0..batch {
            for s in 0..plane {
                for ch in 0..c {
                    let lo = ch.saturating_sub(half);
                    let hi = (ch + half).min(c - 1);
                    let mut acc = 0.0;
                    for wch in lo..=hi {
                        let v = bottom.data[item * per + wch * plane + s];
                        acc += v * v;
                    }
                    let scale = 1.0 + self.alpha / self.size as f32 * acc;
                    top.data[item * per + ch * plane + s] =
                        bottom.data[item * per + ch * plane + s] * scale.powf(-self.beta);
                }
            }
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let (c, h, w) = self.input;
        let plane = h * w;
        let per = c * plane;
        let half = self.size / 2;
        for item in 0..batch {
            for s in 0..plane {
                for ch in 0..c {
                    let j = item * per + ch * plane + s;
                    // Recompute the scale naive-style.
                    let lo = ch.saturating_sub(half);
                    let hi = (ch + half).min(c - 1);
                    let mut acc = 0.0;
                    for wch in lo..=hi {
                        let v = bottom.data[item * per + wch * plane + s];
                        acc += v * v;
                    }
                    let scale = 1.0 + self.alpha / self.size as f32 * acc;
                    let mut g = top.grad[j] * scale.powf(-self.beta);
                    let mut cross = 0.0;
                    for wch in lo..=hi {
                        let i = item * per + wch * plane + s;
                        let mut acc_i = 0.0;
                        let lo_i = wch.saturating_sub(half);
                        let hi_i = (wch + half).min(c - 1);
                        for w2 in lo_i..=hi_i {
                            let v = bottom.data[item * per + w2 * plane + s];
                            acc_i += v * v;
                        }
                        let scale_i = 1.0 + self.alpha / self.size as f32 * acc_i;
                        cross += top.grad[i] * top.data[i] / scale_i;
                    }
                    g -= 2.0 * self.alpha * self.beta / self.size as f32
                        * bottom.data[j]
                        * cross;
                    bottom.grad[j] += g;
                }
            }
        }
    }

    fn label(&self) -> String {
        "naive-lrn".to_string()
    }
}

struct NaiveFc {
    n_in: usize,
    n_out: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    g_weights: Vec<f32>,
    g_bias: Vec<f32>,
}

impl Layer for NaiveFc {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        for item in 0..batch {
            let x: Vec<f32> =
                bottom.data[item * self.n_in..(item + 1) * self.n_in].to_vec();
            for o in 0..self.n_out {
                let mut acc = self.bias[o];
                let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
                for (xi, wi) in x.iter().zip(row) {
                    acc += xi * wi;
                }
                top.data[item * self.n_out + o] = acc;
            }
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        for item in 0..batch {
            for o in 0..self.n_out {
                let g = top.grad[item * self.n_out + o];
                self.g_bias[o] += g;
                for i in 0..self.n_in {
                    self.g_weights[o * self.n_in + i] +=
                        g * bottom.data[item * self.n_in + i];
                    bottom.grad[item * self.n_in + i] += g * self.weights[o * self.n_in + i];
                }
            }
        }
    }

    fn sgd_step(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&mut self.g_weights) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.iter_mut().zip(&mut self.g_bias) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn params_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (&mut self.weights, &mut self.g_weights),
            (&mut self.bias, &mut self.g_bias),
        ]
    }

    fn label(&self) -> String {
        format!("naive-fc{}", self.n_out)
    }
}

struct NaiveSoftmaxLoss {
    labels: Vec<f32>,
}

impl Layer for NaiveSoftmaxLoss {
    fn set_labels(&mut self, labels: &[f32]) {
        self.labels = labels.to_vec();
    }

    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let n = bottom.per_item();
        for item in 0..batch {
            let x: Vec<f32> = bottom.data[item * n..(item + 1) * n].to_vec();
            let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let label = self.labels.get(item).copied().unwrap_or(0.0) as usize;
            top.data[item] = -(exps[label.min(n - 1)] / sum).max(1e-12).ln();
        }
    }

    fn backward(&mut self, _top: &Blob, bottom: &mut Blob, batch: usize) {
        let n = bottom.per_item();
        let scale = 1.0 / batch as f32;
        for item in 0..batch {
            let x: Vec<f32> = bottom.data[item * n..(item + 1) * n].to_vec();
            let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let label = self.labels.get(item).copied().unwrap_or(0.0) as usize;
            for (i, g) in bottom.grad[item * n..(item + 1) * n].iter_mut().enumerate() {
                let p = exps[i] / sum;
                *g = (p - if i == label { 1.0 } else { 0.0 }) * scale;
            }
        }
    }

    fn label(&self) -> String {
        "naive-softmax-loss".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerSpec;

    fn seeded(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h >> 9) % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// Mocha and Caffe stacks produce identical forward results when
    /// given identical weights — they differ only in implementation
    /// strategy.
    #[test]
    fn mocha_matches_caffe_numerically() {
        let specs = [
            LayerSpec::Conv { out_channels: 4, kernel: 3, stride: 1, pad: 1 },
            LayerSpec::ReLU,
            LayerSpec::MaxPool { kernel: 2, stride: 2 },
            LayerSpec::Fc { out: 5 },
        ];
        let mut caffe = crate::caffe::build((2, 6, 6), 2, &specs, 9);
        let mut mocha = build((2, 6, 6), 2, &specs, 9);
        // Same seeds produce the same initial weights.
        let input = seeded(2 * 72, 4);
        caffe.set_input(&input);
        mocha.set_input(&input);
        caffe.forward();
        mocha.forward();
        for (a, b) in caffe.output().data.iter().zip(&mocha.output().data) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn mocha_trains() {
        let mut net = build(
            (1, 6, 6),
            4,
            &[
                LayerSpec::Conv { out_channels: 3, kernel: 3, stride: 1, pad: 1 },
                LayerSpec::ReLU,
                LayerSpec::Fc { out: 3 },
                LayerSpec::SoftmaxLoss,
            ],
            5,
        );
        net.set_input(&seeded(4 * 36, 7));
        net.set_labels(&[0.0, 1.0, 2.0, 0.0]);
        let initial = net.forward();
        for _ in 0..40 {
            net.forward();
            net.backward();
            net.sgd_step(0.1);
        }
        let trained = net.forward();
        assert!(trained < initial * 0.6, "{initial} -> {trained}");
    }
}
