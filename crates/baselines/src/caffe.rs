//! The Caffe-style baseline: a static, layer-specific library.
//!
//! Convolution is lowered through im2col + GEMM per image (Caffe's
//! `conv_layer.cpp`), fully-connected layers are whole-batch GEMMs, and
//! every layer executes independently over its own blobs — no tiling, no
//! cross-layer fusion, exactly the architectural profile the paper
//! compares against. It shares the blocked GEMM in `latte-tensor` with
//! the Latte runtime, mirroring the paper's setup where both systems call
//! MKL.

use latte_tensor::conv::{col2im, conv2d_reference, im2col, maxpool2d, Conv2dParams};
use latte_tensor::gemm::{Gemm, Transpose};
use latte_tensor::init;

use crate::net::{Backend, Blob, Layer, SequentialNet};
use crate::spec::{BlobShape, LayerSpec};

/// Marker type implementing [`Backend`] for the Caffe-style stack.
#[derive(Debug, Clone, Copy)]
pub struct CaffeBackend;

/// Builds a Caffe-style network.
pub fn build(input: BlobShape, batch: usize, specs: &[LayerSpec], seed: u64) -> SequentialNet {
    SequentialNet::build::<CaffeBackend>(input, batch, specs, seed)
}

impl Backend for CaffeBackend {
    fn build(spec: &LayerSpec, input: BlobShape, seed: u64) -> Box<dyn Layer> {
        match *spec {
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => Box::new(ConvLayer::new(input, out_channels, kernel, stride, pad, seed)),
            LayerSpec::ReLU => Box::new(ReluLayer),
            LayerSpec::MaxPool { kernel, stride } => {
                Box::new(MaxPoolLayer::new(input, kernel, stride))
            }
            LayerSpec::Lrn { size, alpha, beta } => Box::new(LrnLayer {
                size,
                alpha,
                beta,
                scale: Vec::new(),
            }),
            LayerSpec::Fc { out } => Box::new(FcLayer::new(input, out, seed)),
            LayerSpec::SoftmaxLoss => Box::new(SoftmaxLossLayer {
                labels: Vec::new(),
                prob: Vec::new(),
            }),
        }
    }
}

/// im2col + GEMM convolution.
pub struct ConvLayer {
    p: Conv2dParams,
    /// `(out_c, in_c * k * k)` row-major.
    pub weights: Vec<f32>,
    /// Per output channel.
    pub bias: Vec<f32>,
    g_weights: Vec<f32>,
    g_bias: Vec<f32>,
    cols: Vec<f32>,
    gemm: Gemm,
}

impl ConvLayer {
    fn new(
        input: BlobShape,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let p = Conv2dParams {
            in_channels: input.0,
            out_channels,
            height: input.1,
            width: input.2,
            kernel,
            stride,
            pad,
        };
        let fan_in = p.patch_len();
        let weights = init::xavier(vec![out_channels, fan_in], fan_in, seed).into_vec();
        ConvLayer {
            p,
            g_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; out_channels],
            g_bias: vec![0.0; out_channels],
            cols: Vec::new(),
            gemm: Gemm::new(),
        }
    }
}

impl Layer for ConvLayer {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let p = self.p;
        let in_sz = bottom.per_item();
        let out_sz = top.per_item();
        let (oc, plane, k) = (p.out_channels, p.out_plane(), p.patch_len());
        self.cols.resize(k * plane, 0.0);
        for item in 0..batch {
            let x = &bottom.data[item * in_sz..(item + 1) * in_sz];
            let y = &mut top.data[item * out_sz..(item + 1) * out_sz];
            im2col(&p, x, &mut self.cols);
            // y(oc x plane) = W(oc x k) * cols(k x plane) + bias.
            for (c, chunk) in y.chunks_mut(plane).enumerate() {
                chunk.fill(self.bias[c]);
            }
            self.gemm.compute(
                Transpose::No,
                Transpose::No,
                oc,
                plane,
                k,
                &self.weights,
                &self.cols,
                y,
            );
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let p = self.p;
        let in_sz = bottom.per_item();
        let out_sz = top.per_item();
        let (oc, plane, k) = (p.out_channels, p.out_plane(), p.patch_len());
        self.cols.resize(k * plane, 0.0);
        let mut gcols = vec![0.0f32; k * plane];
        for item in 0..batch {
            let g = &top.grad[item * out_sz..(item + 1) * out_sz];
            let x = &bottom.data[item * in_sz..(item + 1) * in_sz];
            // Weight gradient: gW(oc x k) += g(oc x plane) * cols(k x plane)^T.
            im2col(&p, x, &mut self.cols);
            self.gemm.compute(
                Transpose::No,
                Transpose::Yes,
                oc,
                k,
                plane,
                g,
                &self.cols,
                &mut self.g_weights,
            );
            for (c, chunk) in g.chunks(plane).enumerate() {
                self.g_bias[c] += chunk.iter().sum::<f32>();
            }
            // Data gradient: gcols(k x plane) = W^T * g, then col2im.
            gcols.fill(0.0);
            self.gemm.compute(
                Transpose::Yes,
                Transpose::No,
                k,
                plane,
                oc,
                &self.weights,
                g,
                &mut gcols,
            );
            col2im(
                &p,
                &gcols,
                &mut bottom.grad[item * in_sz..(item + 1) * in_sz],
            );
        }
    }

    fn sgd_step(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&mut self.g_weights) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.iter_mut().zip(&mut self.g_bias) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn params_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (&mut self.weights, &mut self.g_weights),
            (&mut self.bias, &mut self.g_bias),
        ]
    }

    fn label(&self) -> String {
        format!("conv{}x{}/{}", self.p.kernel, self.p.kernel, self.p.out_channels)
    }
}

/// Element-wise ReLU.
pub struct ReluLayer;

impl Layer for ReluLayer {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, _batch: usize) {
        for (t, &b) in top.data.iter_mut().zip(&bottom.data) {
            *t = b.max(0.0);
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, _batch: usize) {
        for ((bg, &t), &tg) in bottom.grad.iter_mut().zip(&top.data).zip(&top.grad) {
            *bg = if t > 0.0 { tg } else { 0.0 };
        }
    }

    fn label(&self) -> String {
        "relu".to_string()
    }
}

/// Max pooling with remembered argmax.
pub struct MaxPoolLayer {
    p: Conv2dParams,
    argmax: Vec<usize>,
}

impl MaxPoolLayer {
    fn new(input: BlobShape, kernel: usize, stride: usize) -> Self {
        let p = Conv2dParams {
            in_channels: input.0,
            out_channels: input.0,
            height: input.1,
            width: input.2,
            kernel,
            stride,
            pad: 0,
        };
        MaxPoolLayer {
            p,
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPoolLayer {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let in_sz = bottom.per_item();
        let out_sz = top.per_item();
        self.argmax.resize(batch * out_sz, 0);
        for item in 0..batch {
            maxpool2d(
                &self.p,
                &bottom.data[item * in_sz..(item + 1) * in_sz],
                &mut top.data[item * out_sz..(item + 1) * out_sz],
                &mut self.argmax[item * out_sz..(item + 1) * out_sz],
            );
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let in_sz = bottom.per_item();
        let out_sz = top.per_item();
        for item in 0..batch {
            let g = &top.grad[item * out_sz..(item + 1) * out_sz];
            let bg = &mut bottom.grad[item * in_sz..(item + 1) * in_sz];
            for (o, &a) in g.iter().zip(&self.argmax[item * out_sz..(item + 1) * out_sz]) {
                bg[a] += o;
            }
        }
    }

    fn label(&self) -> String {
        format!("maxpool{}x{}", self.p.kernel, self.p.kernel)
    }
}

/// Local response normalization across channels (layout `(c, y, x)`).
pub struct LrnLayer {
    size: usize,
    alpha: f32,
    beta: f32,
    scale: Vec<f32>,
}

impl Layer for LrnLayer {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let (c, h, w) = bottom.shape;
        let plane = h * w;
        let per = bottom.per_item();
        self.scale.resize(batch * per, 0.0);
        let half = self.size / 2;
        for item in 0..batch {
            let x = &bottom.data[item * per..(item + 1) * per];
            let scale = &mut self.scale[item * per..(item + 1) * per];
            for s in 0..plane {
                for ch in 0..c {
                    let lo = ch.saturating_sub(half);
                    let hi = (ch + half).min(c - 1);
                    let mut acc = 0.0;
                    for wch in lo..=hi {
                        let v = x[wch * plane + s];
                        acc += v * v;
                    }
                    scale[ch * plane + s] = 1.0 + self.alpha / self.size as f32 * acc;
                }
            }
            let y = &mut top.data[item * per..(item + 1) * per];
            for ((o, &xv), &sc) in y.iter_mut().zip(x).zip(scale.iter()) {
                *o = xv * sc.powf(-self.beta);
            }
        }
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        let (c, h, w) = bottom.shape;
        let plane = h * w;
        let per = bottom.per_item();
        let half = self.size / 2;
        for item in 0..batch {
            let x: Vec<f32> = bottom.data[item * per..(item + 1) * per].to_vec();
            let y = &top.data[item * per..(item + 1) * per];
            let g = &top.grad[item * per..(item + 1) * per];
            let scale = &self.scale[item * per..(item + 1) * per];
            let bg = &mut bottom.grad[item * per..(item + 1) * per];
            for s in 0..plane {
                for ch in 0..c {
                    let j = ch * plane + s;
                    let mut acc = g[j] * scale[j].powf(-self.beta);
                    let lo = ch.saturating_sub(half);
                    let hi = (ch + half).min(c - 1);
                    let mut cross = 0.0;
                    for wch in lo..=hi {
                        let i = wch * plane + s;
                        cross += g[i] * y[i] / scale[i];
                    }
                    acc -= 2.0 * self.alpha * self.beta / self.size as f32 * x[j] * cross;
                    bg[j] += acc;
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("lrn{}", self.size)
    }
}

/// Fully-connected layer via whole-batch GEMM.
pub struct FcLayer {
    n_in: usize,
    n_out: usize,
    /// `(out, in)` row-major.
    pub weights: Vec<f32>,
    /// Per output.
    pub bias: Vec<f32>,
    g_weights: Vec<f32>,
    g_bias: Vec<f32>,
    gemm: Gemm,
}

impl FcLayer {
    fn new(input: BlobShape, n_out: usize, seed: u64) -> Self {
        let n_in = input.0 * input.1 * input.2;
        let weights = init::xavier(vec![n_out, n_in], n_in, seed).into_vec();
        FcLayer {
            n_in,
            n_out,
            g_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; n_out],
            g_bias: vec![0.0; n_out],
            gemm: Gemm::new(),
        }
    }
}

impl Layer for FcLayer {
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        // top(batch x out) = bottom(batch x in) * W^T + bias.
        for item in 0..batch {
            top.data[item * self.n_out..(item + 1) * self.n_out].copy_from_slice(&self.bias);
        }
        self.gemm.compute(
            Transpose::No,
            Transpose::Yes,
            batch,
            self.n_out,
            self.n_in,
            &bottom.data,
            &self.weights,
            &mut top.data,
        );
    }

    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize) {
        // gW(out x in) += gTop(batch x out)^T * bottom(batch x in).
        self.gemm.compute(
            Transpose::Yes,
            Transpose::No,
            self.n_out,
            self.n_in,
            batch,
            &top.grad,
            &bottom.data,
            &mut self.g_weights,
        );
        for item in 0..batch {
            for (gb, &g) in self
                .g_bias
                .iter_mut()
                .zip(&top.grad[item * self.n_out..(item + 1) * self.n_out])
            {
                *gb += g;
            }
        }
        // gBottom(batch x in) = gTop(batch x out) * W(out x in).
        self.gemm.compute(
            Transpose::No,
            Transpose::No,
            batch,
            self.n_in,
            self.n_out,
            &top.grad,
            &self.weights,
            &mut bottom.grad,
        );
    }

    fn sgd_step(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&mut self.g_weights) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.iter_mut().zip(&mut self.g_bias) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn params_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (&mut self.weights, &mut self.g_weights),
            (&mut self.bias, &mut self.g_bias),
        ]
    }

    fn label(&self) -> String {
        format!("fc{}", self.n_out)
    }
}

/// Softmax + cross-entropy loss.
pub struct SoftmaxLossLayer {
    labels: Vec<f32>,
    prob: Vec<f32>,
}

impl Layer for SoftmaxLossLayer {
    fn set_labels(&mut self, labels: &[f32]) {
        self.labels = labels.to_vec();
    }

    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize) {
        let n = bottom.per_item();
        self.prob.resize(batch * n, 0.0);
        for item in 0..batch {
            let x = &bottom.data[item * n..(item + 1) * n];
            let p = &mut self.prob[item * n..(item + 1) * n];
            let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (pi, &xi) in p.iter_mut().zip(x) {
                *pi = (xi - max).exp();
                sum += *pi;
            }
            for pi in p.iter_mut() {
                *pi /= sum;
            }
            let label = self.labels.get(item).copied().unwrap_or(0.0) as usize;
            top.data[item] = -p[label.min(n - 1)].max(1e-12).ln();
        }
    }

    fn backward(&mut self, _top: &Blob, bottom: &mut Blob, batch: usize) {
        let n = bottom.per_item();
        let scale = 1.0 / batch as f32;
        for item in 0..batch {
            let label = self.labels.get(item).copied().unwrap_or(0.0) as usize;
            let p = &self.prob[item * n..(item + 1) * n];
            let g = &mut bottom.grad[item * n..(item + 1) * n];
            for (i, (gi, &pi)) in g.iter_mut().zip(p).enumerate() {
                *gi = (pi - if i == label { 1.0 } else { 0.0 }) * scale;
            }
        }
    }

    fn label(&self) -> String {
        "softmax_loss".to_string()
    }
}

/// Direct-loop convolution check helper used by tests (not a layer).
pub fn conv_forward_reference(
    p: &Conv2dParams,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    output: &mut [f32],
) {
    conv2d_reference(p, input, weights, bias, output);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerSpec;

    fn seeded(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h >> 9) % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn conv_layer_matches_direct_reference() {
        let input_shape = (3, 6, 6);
        let mut net = build(
            input_shape,
            2,
            &[LayerSpec::Conv {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            }],
            3,
        );
        let input = seeded(2 * 108, 1);
        net.set_input(&input);
        net.forward();
        // Extract weights and compare with the direct loop.
        let p = Conv2dParams {
            in_channels: 3,
            out_channels: 4,
            height: 6,
            width: 6,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let (w, b): (Vec<f32>, Vec<f32>) = {
            let params = net.layer_mut(0).params_mut();
            (params[0].0.to_vec(), params[1].0.to_vec())
        };
        for item in 0..2 {
            let mut expect = vec![0.0; 4 * 36];
            conv_forward_reference(&p, &input[item * 108..(item + 1) * 108], &w, &b, &mut expect);
            let got = &net.output().data[item * 144..(item + 1) * 144];
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-3, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn training_small_net_decreases_loss() {
        let mut net = build(
            (1, 6, 6),
            4,
            &[
                LayerSpec::Conv { out_channels: 4, kernel: 3, stride: 1, pad: 1 },
                LayerSpec::ReLU,
                LayerSpec::MaxPool { kernel: 2, stride: 2 },
                LayerSpec::Fc { out: 3 },
                LayerSpec::SoftmaxLoss,
            ],
            5,
        );
        let input = seeded(4 * 36, 7);
        let labels = [0.0, 1.0, 2.0, 0.0];
        net.set_input(&input);
        net.set_labels(&labels);
        let initial = net.forward();
        for _ in 0..40 {
            net.forward();
            net.backward();
            net.sgd_step(0.1);
        }
        let trained = net.forward();
        assert!(trained < initial * 0.6, "{initial} -> {trained}");
    }

    #[test]
    fn fc_gradient_finite_difference() {
        let mut net = build(
            (1, 2, 2),
            2,
            &[LayerSpec::Fc { out: 3 }, LayerSpec::SoftmaxLoss],
            1,
        );
        let input = seeded(8, 3);
        net.set_input(&input);
        net.set_labels(&[1.0, 2.0]);
        net.forward();
        net.backward();
        let (w0, analytic) = {
            let params = net.layer_mut(0).params_mut();
            (params[0].0.to_vec(), params[0].1.to_vec())
        };
        let idx = 5;
        let eps = 1e-3;
        let mut probe = |delta: f32| -> f32 {
            {
                let mut w = w0.clone();
                w[idx] += delta;
                let mut params = net.layer_mut(0).params_mut();
                params[0].0.copy_from_slice(&w);
            }
            net.forward()
        };
        let lp = probe(eps);
        let lm = probe(-eps);
        probe(0.0);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic[idx]).abs() < 1e-2 * analytic[idx].abs().max(0.1),
            "numeric {numeric} vs analytic {}",
            analytic[idx]
        );
    }

    #[test]
    fn lrn_layer_runs_forward_backward() {
        let mut net = build(
            (4, 3, 3),
            1,
            &[
                LayerSpec::Lrn { size: 3, alpha: 0.3, beta: 0.75 },
                LayerSpec::Fc { out: 2 },
                LayerSpec::SoftmaxLoss,
            ],
            2,
        );
        net.set_input(&seeded(36, 11));
        net.set_labels(&[1.0]);
        let loss = net.forward();
        assert!(loss.is_finite());
        net.backward();
    }
}
