//! The sequential-network harness shared by both baseline stacks.


use crate::spec::{out_shape, BlobShape, LayerSpec};

/// An activation blob: batched values and gradients, item-major.
#[derive(Debug, Clone)]
pub struct Blob {
    /// Per-item shape.
    pub shape: BlobShape,
    /// `batch * len` values.
    pub data: Vec<f32>,
    /// `batch * len` gradients.
    pub grad: Vec<f32>,
}

impl Blob {
    /// Allocates a zero blob.
    pub fn new(shape: BlobShape, batch: usize) -> Self {
        let len = shape.0 * shape.1 * shape.2 * batch;
        Blob {
            shape,
            data: vec![0.0; len],
            grad: vec![0.0; len],
        }
    }

    /// Elements per item.
    pub fn per_item(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2
    }
}

/// One layer of a baseline network.
pub trait Layer {
    /// Computes `top.data` from `bottom.data`.
    fn forward(&mut self, bottom: &Blob, top: &mut Blob, batch: usize);

    /// Computes `bottom.grad` from `top.grad` (and accumulates parameter
    /// gradients). `bottom.grad` is pre-zeroed.
    fn backward(&mut self, top: &Blob, bottom: &mut Blob, batch: usize);

    /// Applies SGD to the layer's parameters.
    fn sgd_step(&mut self, lr: f32) {
        let _ = lr;
    }

    /// Parameter and gradient views for tests: `(values, grads)` pairs.
    fn params_mut(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        Vec::new()
    }

    /// Receives the batch labels (loss layers override this).
    fn set_labels(&mut self, labels: &[f32]) {
        let _ = labels;
    }

    /// Human-readable layer label.
    fn label(&self) -> String;
}

/// Builds one layer of a backend from a spec.
pub trait Backend {
    /// Constructs the layer for `spec` with the given input shape.
    fn build(spec: &LayerSpec, input: BlobShape, seed: u64) -> Box<dyn Layer>;
}

/// A sequential baseline network.
pub struct SequentialNet {
    batch: usize,
    layers: Vec<Box<dyn Layer>>,
    /// `blobs[0]` is the input; `blobs[i + 1]` is layer `i`'s output.
    blobs: Vec<Blob>,
    labels: Vec<f32>,
    /// Index of the loss layer, when present.
    loss_layer: Option<usize>,
}

impl std::fmt::Debug for SequentialNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<String> = self.layers.iter().map(|l| l.label()).collect();
        f.debug_struct("SequentialNet")
            .field("batch", &self.batch)
            .field("layers", &labels)
            .finish()
    }
}

impl SequentialNet {
    /// Builds a network from specs with backend `B`.
    pub fn build<B: Backend>(
        input: BlobShape,
        batch: usize,
        specs: &[LayerSpec],
        seed: u64,
    ) -> Self {
        let mut blobs = vec![Blob::new(input, batch)];
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(specs.len());
        let mut shape = input;
        let mut loss_layer = None;
        for (i, spec) in specs.iter().enumerate() {
            if matches!(spec, LayerSpec::SoftmaxLoss) {
                loss_layer = Some(i);
            }
            layers.push(B::build(spec, shape, seed + i as u64));
            shape = out_shape(spec, shape);
            blobs.push(Blob::new(shape, batch));
        }
        SequentialNet {
            batch,
            layers,
            blobs,
            labels: vec![0.0; batch],
            loss_layer,
        }
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Writes the input batch (item-major `(c, y, x)` images).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_input(&mut self, input: &[f32]) {
        assert_eq!(input.len(), self.blobs[0].data.len(), "input length");
        self.blobs[0].data.copy_from_slice(input);
    }

    /// Sets the labels for the loss layer.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_labels(&mut self, labels: &[f32]) {
        assert_eq!(labels.len(), self.batch, "label length");
        self.labels.copy_from_slice(labels);
    }

    /// Runs the forward pass; returns the mean loss when a loss layer is
    /// present.
    pub fn forward(&mut self) -> f32 {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if Some(i) == self.loss_layer {
                layer.set_labels(&self.labels);
            }
            let (bottoms, tops) = self.blobs.split_at_mut(i + 1);
            layer.forward(&bottoms[i], &mut tops[0], self.batch);
        }
        match self.loss_layer {
            Some(i) => {
                self.blobs[i + 1].data.iter().sum::<f32>() / self.batch as f32
            }
            None => 0.0,
        }
    }

    /// Runs the backward pass (gradients seeded by the loss layer).
    pub fn backward(&mut self) {
        for b in &mut self.blobs {
            b.grad.fill(0.0);
        }
        for i in (0..self.layers.len()).rev() {
            let (bottoms, tops) = self.blobs.split_at_mut(i + 1);
            self.layers[i].backward(&tops[0], &mut bottoms[i], self.batch);
        }
    }

    /// Applies SGD to every layer.
    pub fn sgd_step(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.sgd_step(lr);
        }
    }

    /// The output blob of the last layer.
    pub fn output(&self) -> &Blob {
        self.blobs.last().expect("at least the input blob")
    }

    /// The output blob of layer `i`.
    pub fn blob(&self, i: usize) -> &Blob {
        &self.blobs[i]
    }

    /// Layer access for weight-injection in comparison tests.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn Layer {
        self.layers[i].as_mut()
    }

    /// Total parameter elements.
    pub fn param_count(&mut self) -> usize {
        self.layers
            .iter_mut()
            .map(|l| l.params_mut().iter().map(|(v, _)| v.len()).sum::<usize>())
            .sum()
    }
}
