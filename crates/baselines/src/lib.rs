//! # latte-baselines
//!
//! The comparison stacks of the paper's evaluation, reproduced from
//! scratch:
//!
//! * [`caffe`] — a Caffe-style layer-specific library: im2col + GEMM
//!   convolutions, whole-batch FC GEMMs, one statically compiled kernel
//!   per layer, no cross-layer optimization. Shares `latte-tensor`'s
//!   blocked GEMM with the Latte runtime (the paper's "both use MKL").
//! * [`mocha`] — a Mocha.jl-style naive implementation: direct scalar
//!   loops with per-call temporaries, standing in for an idiomatic
//!   dynamic-language framework.
//!
//! Both build structurally identical networks from the shared
//! [`spec::LayerSpec`] language, so benchmark comparisons are
//! apples-to-apples.

#![warn(missing_docs)]

pub mod caffe;
pub mod mocha;
pub mod net;
pub mod spec;
