//! A minimal layer-specification language shared by the Caffe-style and
//! Mocha-style baseline stacks, so both build structurally identical
//! networks to the Latte models they are compared against.

/// One layer of a sequential network. Spatial data is `(c, y, x)` per
/// item (Caffe's layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// 2-D convolution.
    Conv {
        /// Output channels.
        out_channels: usize,
        /// Square kernel.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Rectified linear unit (in place).
    ReLU,
    /// Max pooling.
    MaxPool {
        /// Window.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Local response normalization across channels.
    Lrn {
        /// Window size.
        size: usize,
        /// Alpha.
        alpha: f32,
        /// Beta.
        beta: f32,
    },
    /// Fully-connected (inner product).
    Fc {
        /// Output width.
        out: usize,
    },
    /// Softmax + cross-entropy loss over the final activations.
    SoftmaxLoss,
}

/// Shape of a blob: `(channels, height, width)`; FC activations use
/// `(n, 1, 1)`.
pub type BlobShape = (usize, usize, usize);

/// Output shape of one layer.
///
/// # Panics
///
/// Panics when the window does not fit.
pub fn out_shape(spec: &LayerSpec, input: BlobShape) -> BlobShape {
    let (c, h, w) = input;
    match *spec {
        LayerSpec::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        } => {
            let oh = (h + 2 * pad - kernel) / stride + 1;
            let ow = (w + 2 * pad - kernel) / stride + 1;
            (out_channels, oh, ow)
        }
        LayerSpec::ReLU | LayerSpec::Lrn { .. } => (c, h, w),
        LayerSpec::MaxPool { kernel, stride } => {
            ((c), (h - kernel) / stride + 1, (w - kernel) / stride + 1)
        }
        LayerSpec::Fc { out } => (out, 1, 1),
        LayerSpec::SoftmaxLoss => (1, 1, 1),
    }
}

/// AlexNet as a spec list (channels divided by `div`).
pub fn alexnet_specs(div: usize, classes: usize) -> Vec<LayerSpec> {
    let ch = |c: usize| (c / div).max(1);
    vec![
        LayerSpec::Conv { out_channels: ch(96), kernel: 11, stride: 4, pad: 0 },
        LayerSpec::ReLU,
        LayerSpec::Lrn { size: 5, alpha: 1e-4, beta: 0.75 },
        LayerSpec::MaxPool { kernel: 3, stride: 2 },
        LayerSpec::Conv { out_channels: ch(256), kernel: 5, stride: 1, pad: 2 },
        LayerSpec::ReLU,
        LayerSpec::Lrn { size: 5, alpha: 1e-4, beta: 0.75 },
        LayerSpec::MaxPool { kernel: 3, stride: 2 },
        LayerSpec::Conv { out_channels: ch(384), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::Conv { out_channels: ch(384), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::Conv { out_channels: ch(256), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 3, stride: 2 },
        LayerSpec::Fc { out: ch(4096) },
        LayerSpec::ReLU,
        LayerSpec::Fc { out: ch(4096) },
        LayerSpec::ReLU,
        LayerSpec::Fc { out: classes },
        LayerSpec::SoftmaxLoss,
    ]
}

/// VGG-A as a spec list.
pub fn vgg_a_specs(div: usize, classes: usize) -> Vec<LayerSpec> {
    let ch = |c: usize| (c / div).max(1);
    let mut specs = Vec::new();
    for (chn, convs) in [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)] {
        for _ in 0..convs {
            specs.push(LayerSpec::Conv {
                out_channels: ch(chn),
                kernel: 3,
                stride: 1,
                pad: 1,
            });
            specs.push(LayerSpec::ReLU);
        }
        specs.push(LayerSpec::MaxPool { kernel: 2, stride: 2 });
    }
    specs.push(LayerSpec::Fc { out: ch(4096) });
    specs.push(LayerSpec::ReLU);
    specs.push(LayerSpec::Fc { out: ch(4096) });
    specs.push(LayerSpec::ReLU);
    specs.push(LayerSpec::Fc { out: classes });
    specs.push(LayerSpec::SoftmaxLoss);
    specs
}

/// The first `groups` VGG-A convolution groups (the Figure-13/15
/// microbenchmark), without classifier or loss.
pub fn vgg_prefix_specs(div: usize, groups: usize) -> Vec<LayerSpec> {
    let ch = |c: usize| (c / div).max(1);
    let mut specs = Vec::new();
    for (chn, convs) in [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)]
        .into_iter()
        .take(groups)
    {
        for _ in 0..convs {
            specs.push(LayerSpec::Conv {
                out_channels: ch(chn),
                kernel: 3,
                stride: 1,
                pad: 1,
            });
            specs.push(LayerSpec::ReLU);
        }
        specs.push(LayerSpec::MaxPool { kernel: 2, stride: 2 });
    }
    specs
}

/// OverFeat (fast) as a spec list.
pub fn overfeat_specs(div: usize, classes: usize) -> Vec<LayerSpec> {
    let ch = |c: usize| (c / div).max(1);
    vec![
        LayerSpec::Conv { out_channels: ch(96), kernel: 11, stride: 4, pad: 0 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
        LayerSpec::Conv { out_channels: ch(256), kernel: 5, stride: 1, pad: 0 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
        LayerSpec::Conv { out_channels: ch(512), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::Conv { out_channels: ch(1024), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::Conv { out_channels: ch(1024), kernel: 3, stride: 1, pad: 1 },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { kernel: 2, stride: 2 },
        LayerSpec::Fc { out: ch(3072) },
        LayerSpec::ReLU,
        LayerSpec::Fc { out: ch(4096) },
        LayerSpec::ReLU,
        LayerSpec::Fc { out: classes },
        LayerSpec::SoftmaxLoss,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_chain_through_alexnet() {
        let mut shape = (3, 67, 67);
        for spec in alexnet_specs(8, 10) {
            shape = out_shape(&spec, shape);
        }
        assert_eq!(shape, (1, 1, 1));
    }

    #[test]
    fn vgg_shapes_reach_unit_spatial() {
        let mut shape = (3, 32, 32);
        for spec in vgg_a_specs(8, 10).iter().take(21) {
            shape = out_shape(spec, shape);
        }
        assert_eq!((shape.1, shape.2), (1, 1));
    }

    #[test]
    fn prefix_spec_counts() {
        assert_eq!(vgg_prefix_specs(1, 1).len(), 3); // conv relu pool
        assert_eq!(vgg_prefix_specs(1, 4).len(), 3 + 3 + 5 + 5);
    }
}
