//! Property-based tests of the IR's affine-index algebra — the foundation
//! every compiler pass builds on.

use latte_ir::{BufRef, Expr, IndexExpr, Stmt};
use proptest::prelude::*;
use std::collections::HashMap;

const VARS: [&str; 4] = ["x", "y", "z", "t"];

fn arb_index() -> impl Strategy<Value = IndexExpr> {
    (
        proptest::collection::vec((-5i64..6, 0usize..VARS.len()), 0..4),
        -10i64..11,
    )
        .prop_map(|(terms, off)| {
            let mut e = IndexExpr::constant(off);
            for (coef, v) in terms {
                e = e + IndexExpr::var(VARS[v]).scaled(coef);
            }
            e
        })
}

fn arb_env() -> impl Strategy<Value = HashMap<String, i64>> {
    proptest::collection::vec(-7i64..8, VARS.len()).prop_map(|vals| {
        VARS.iter()
            .zip(vals)
            .map(|(v, x)| (v.to_string(), x))
            .collect()
    })
}

proptest! {
    /// Addition and scaling commute with evaluation.
    #[test]
    fn eval_is_linear(a in arb_index(), b in arb_index(), k in -5i64..6, env in arb_env()) {
        let sum = a.clone() + b.clone();
        prop_assert_eq!(sum.eval(&env), a.eval(&env) + b.eval(&env));
        let scaled = a.clone().scaled(k);
        prop_assert_eq!(scaled.eval(&env), k * a.eval(&env));
        let diff = a.clone() - b.clone();
        prop_assert_eq!(diff.eval(&env), a.eval(&env) - b.eval(&env));
    }

    /// Substitution agrees with evaluating the replacement first.
    #[test]
    fn subst_commutes_with_eval(
        a in arb_index(),
        r in arb_index(),
        v in 0usize..VARS.len(),
        env in arb_env(),
    ) {
        let var = VARS[v];
        let substituted = a.subst(var, &r);
        let mut env2 = env.clone();
        env2.insert(var.to_string(), r.eval(&env));
        prop_assert_eq!(substituted.eval(&env), a.eval(&env2));
    }

    /// Renaming to a fresh variable preserves values under a matching
    /// environment rebinding.
    #[test]
    fn rename_preserves_eval(a in arb_index(), v in 0usize..VARS.len(), env in arb_env()) {
        let var = VARS[v];
        let renamed = a.rename(var, "fresh");
        let mut env2 = env.clone();
        env2.insert("fresh".to_string(), env[var]);
        prop_assert_eq!(renamed.eval(&env2), a.eval(&env));
        prop_assert!(!renamed.uses(var) || a.coef(var) == 0);
    }

    /// `subst` of an unused variable is the identity.
    #[test]
    fn subst_unused_is_identity(a in arb_index(), r in arb_index()) {
        prop_assume!(a.coef("unused") == 0);
        prop_assert_eq!(a.subst("unused", &r), a);
    }

    /// Statement-level substitution distributes to every reference.
    #[test]
    fn stmt_subst_rewrites_all_refs(
        a in arb_index(),
        b in arb_index(),
        r in arb_index(),
        env in arb_env(),
    ) {
        let nest = Stmt::for_loop("i", 3, vec![Stmt::accumulate(
            BufRef::new("dst", vec![a.clone()]),
            Expr::load("src", vec![b.clone()]),
        )]);
        let out = nest.subst_var("x", &r);
        // Evaluate both sides' indices under env with x := r(env).
        let mut env2 = env.clone();
        env2.insert("x".to_string(), r.eval(&env));
        if let Stmt::For(l) = &out {
            if let Stmt::Assign(assign) = &l.body[0] {
                prop_assert_eq!(assign.dest.indices[0].eval(&env), a.eval(&env2));
            } else {
                panic!("expected assign");
            }
        } else {
            panic!("expected loop");
        }
    }
}
