//! Scalar expressions and affine index expressions.
//!
//! Neuron bodies in this reproduction are written directly in this IR (the
//! substitute for the paper's Julia AST introspection): a body is a tree of
//! [`Expr`]s over buffer loads whose indices are affine functions
//! ([`IndexExpr`]) of the enclosing loop variables. Affine indices are what
//! make shared-variable analysis, GEMM pattern matching, tiling, and fusion
//! decidable.

use std::collections::BTreeMap;
use std::fmt;

/// An affine function of loop variables: `sum(coef_i * var_i) + offset`.
///
/// # Examples
///
/// ```
/// use latte_ir::IndexExpr;
///
/// let i = IndexExpr::var("y").scaled(2) + IndexExpr::var("p") + 1;
/// assert_eq!(i.to_string(), "p + 2*y + 1"); // terms print in name order
/// let mut env = std::collections::HashMap::new();
/// env.insert("y".to_string(), 3i64);
/// env.insert("p".to_string(), 1i64);
/// assert_eq!(i.eval(&env), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IndexExpr {
    /// Coefficient per variable, sorted by name; zero coefficients are
    /// never stored.
    terms: BTreeMap<String, i64>,
    /// Constant offset.
    offset: i64,
}

impl IndexExpr {
    /// The constant zero.
    pub fn zero() -> Self {
        IndexExpr::default()
    }

    /// A constant index.
    pub fn constant(c: i64) -> Self {
        IndexExpr {
            terms: BTreeMap::new(),
            offset: c,
        }
    }

    /// A single variable with coefficient one.
    pub fn var(name: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        IndexExpr { terms, offset: 0 }
    }

    /// Multiplies the whole expression by `scale`.
    pub fn scaled(mut self, scale: i64) -> Self {
        if scale == 0 {
            return IndexExpr::zero();
        }
        for coef in self.terms.values_mut() {
            *coef *= scale;
        }
        self.offset *= scale;
        self
    }

    /// The constant offset.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// The coefficient of `var` (zero when absent).
    pub fn coef(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// Iterates over `(variable, coefficient)` pairs in name order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(v, &c)| (v.as_str(), c))
    }

    /// The variables with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the expression is exactly the named variable.
    pub fn is_var(&self, var: &str) -> bool {
        self.offset == 0 && self.terms.len() == 1 && self.coef(var) == 1
    }

    /// Whether the expression mentions `var`.
    pub fn uses(&self, var: &str) -> bool {
        self.coef(var) != 0
    }

    /// Evaluates under a variable binding.
    ///
    /// # Panics
    ///
    /// Panics if a used variable is unbound.
    pub fn eval(&self, env: &std::collections::HashMap<String, i64>) -> i64 {
        let mut acc = self.offset;
        for (v, c) in &self.terms {
            let val = env
                .get(v)
                .unwrap_or_else(|| panic!("unbound index variable `{v}`"));
            acc += c * val;
        }
        acc
    }

    /// Substitutes `var := replacement`, returning the new expression.
    pub fn subst(&self, var: &str, replacement: &IndexExpr) -> IndexExpr {
        let coef = self.coef(var);
        if coef == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(var);
        out + replacement.clone().scaled(coef)
    }

    /// Renames `from` to `to` (coefficients merge if `to` already appears).
    pub fn rename(&self, from: &str, to: &str) -> IndexExpr {
        self.subst(from, &IndexExpr::var(to))
    }

    fn normalize(mut self) -> Self {
        self.terms.retain(|_, c| *c != 0);
        self
    }
}

impl std::ops::Add for IndexExpr {
    type Output = IndexExpr;

    fn add(mut self, rhs: IndexExpr) -> IndexExpr {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0) += c;
        }
        self.offset += rhs.offset;
        self.normalize()
    }
}

impl std::ops::Add<i64> for IndexExpr {
    type Output = IndexExpr;

    fn add(mut self, rhs: i64) -> IndexExpr {
        self.offset += rhs;
        self
    }
}

impl std::ops::Sub for IndexExpr {
    type Output = IndexExpr;

    fn sub(self, rhs: IndexExpr) -> IndexExpr {
        self + rhs.scaled(-1)
    }
}

impl From<i64> for IndexExpr {
    fn from(c: i64) -> Self {
        IndexExpr::constant(c)
    }
}

impl From<usize> for IndexExpr {
    fn from(c: usize) -> Self {
        IndexExpr::constant(c as i64)
    }
}

impl From<i32> for IndexExpr {
    fn from(c: i32) -> Self {
        IndexExpr::constant(c as i64)
    }
}

impl From<&str> for IndexExpr {
    fn from(v: &str) -> Self {
        IndexExpr::var(v)
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.offset);
        }
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                match *c {
                    1 => write!(f, " + {v}")?,
                    -1 => write!(f, " - {v}")?,
                    c if c > 0 => write!(f, " + {c}*{v}")?,
                    c => write!(f, " - {}*{v}", -c)?,
                }
            }
        }
        if self.offset > 0 {
            write!(f, " + {}", self.offset)?;
        } else if self.offset < 0 {
            write!(f, " - {}", -self.offset)?;
        }
        Ok(())
    }
}

/// A reference to an element of a named buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufRef {
    /// Name of the buffer in the program's buffer table.
    pub buffer: String,
    /// One affine index per buffer dimension, outermost first.
    pub indices: Vec<IndexExpr>,
}

impl BufRef {
    /// Creates a reference from a buffer name and indices.
    pub fn new(buffer: impl Into<String>, indices: Vec<IndexExpr>) -> Self {
        BufRef {
            buffer: buffer.into(),
            indices,
        }
    }

    /// Whether any index mentions `var`.
    pub fn uses(&self, var: &str) -> bool {
        self.indices.iter().any(|i| i.uses(var))
    }

    /// Applies `f` to every index expression.
    pub fn map_indices(&self, mut f: impl FnMut(&IndexExpr) -> IndexExpr) -> BufRef {
        BufRef {
            buffer: self.buffer.clone(),
            indices: self.indices.iter().map(&mut f).collect(),
        }
    }
}

impl fmt::Display for BufRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.buffer)?;
        if !self.indices.is_empty() {
            let parts: Vec<String> = self.indices.iter().map(|i| i.to_string()).collect();
            write!(f, "[{}]", parts.join(", "))?;
        }
        Ok(())
    }
}

/// Unary scalar operations available to neuron bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// `e^x`.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Heaviside step: `1` when `x > 0`, else `0`. Used by ReLU backward.
    Step,
}

impl UnaryOp {
    /// Applies the operation to a value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Exp => x.exp(),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Step => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The name used by the pretty printer.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Exp => "exp",
            UnaryOp::Ln => "ln",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Abs => "abs",
            UnaryOp::Step => "step",
        }
    }
}

/// Binary scalar operations available to neuron bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Equality indicator: `1` when `a == b`, else `0`. Used to route
    /// pooling gradients back to the selected input (ties receive the
    /// gradient more than once; see `latte-nn`'s max-pool documentation).
    EqIndicator,
}

impl BinOp {
    /// Applies the operation to two values.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Max => a.max(b),
            BinOp::Min => a.min(b),
            BinOp::EqIndicator => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Const(f32),
    /// A load from a buffer element.
    Load(BufRef),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A literal constant.
    pub fn lit(v: f32) -> Expr {
        Expr::Const(v)
    }

    /// A buffer load.
    pub fn load(buffer: impl Into<String>, indices: Vec<IndexExpr>) -> Expr {
        Expr::Load(BufRef::new(buffer, indices))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder, not operator overloading
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder, not operator overloading
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder, not operator overloading
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder, not operator overloading
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// `1` when `self == rhs`, else `0`.
    pub fn eq_indicator(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::EqIndicator, Box::new(self), Box::new(rhs))
    }

    /// Applies a unary op.
    pub fn unary(self, op: UnaryOp) -> Expr {
        Expr::Unary(op, Box::new(self))
    }

    /// Visits every buffer reference in the expression.
    pub fn visit_loads(&self, f: &mut impl FnMut(&BufRef)) {
        match self {
            Expr::Const(_) => {}
            Expr::Load(r) => f(r),
            Expr::Unary(_, e) => e.visit_loads(f),
            Expr::Binary(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
        }
    }

    /// Rewrites every buffer reference with `f`.
    pub fn map_loads(&self, f: &mut impl FnMut(&BufRef) -> BufRef) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Load(r) => Expr::Load(f(r)),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_loads(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(a.map_loads(f)), Box::new(b.map_loads(f)))
            }
        }
    }

    /// Whether any load index mentions `var`.
    pub fn uses(&self, var: &str) -> bool {
        let mut used = false;
        self.visit_loads(&mut |r| used |= r.uses(var));
        used
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Load(r) => write!(f, "{r}"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(op, e) => write!(f, "{}({e})", op.name()),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Max => return write!(f, "max({a}, {b})"),
                    BinOp::Min => return write!(f, "min({a}, {b})"),
                    BinOp::EqIndicator => return write!(f, "eq({a}, {b})"),
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn index_expr_arithmetic() {
        let e = IndexExpr::var("x").scaled(2) + IndexExpr::var("y") - IndexExpr::var("x");
        assert_eq!(e.coef("x"), 1);
        assert_eq!(e.coef("y"), 1);
        let e2 = e + 5;
        assert_eq!(e2.offset(), 5);
    }

    #[test]
    fn index_expr_cancellation_drops_terms() {
        let e = IndexExpr::var("x") - IndexExpr::var("x");
        assert!(e.is_constant());
        assert_eq!(e.offset(), 0);
    }

    #[test]
    fn index_expr_eval() {
        let e = IndexExpr::var("y").scaled(3) + IndexExpr::var("q") + (-2);
        let mut env = HashMap::new();
        env.insert("y".to_string(), 4);
        env.insert("q".to_string(), 1);
        assert_eq!(e.eval(&env), 11);
    }

    #[test]
    fn index_expr_subst() {
        // y := 2*t + i  in  3*y + 1 = 6t + 3i + 1
        let e = IndexExpr::var("y").scaled(3) + 1;
        let r = IndexExpr::var("t").scaled(2) + IndexExpr::var("i");
        let s = e.subst("y", &r);
        assert_eq!(s.coef("t"), 6);
        assert_eq!(s.coef("i"), 3);
        assert_eq!(s.offset(), 1);
    }

    #[test]
    fn index_expr_display() {
        let e = IndexExpr::var("x").scaled(2) + IndexExpr::var("q").scaled(-1) + 3;
        // BTreeMap order: q before x.
        assert_eq!(e.to_string(), "-q + 2*x + 3");
    }

    #[test]
    fn bufref_display_and_uses() {
        let r = BufRef::new("conv1", vec![IndexExpr::var("x"), IndexExpr::var("y") + 1]);
        assert_eq!(r.to_string(), "conv1[x, y + 1]");
        assert!(r.uses("y"));
        assert!(!r.uses("z"));
    }

    #[test]
    fn expr_display() {
        let e = Expr::load("a", vec![IndexExpr::var("i")])
            .mul(Expr::load("w", vec![IndexExpr::var("i")]))
            .add(Expr::lit(1.0));
        assert_eq!(e.to_string(), "((a[i] * w[i]) + 1)");
    }

    #[test]
    fn unary_ops_apply() {
        assert_eq!(UnaryOp::Neg.apply(2.0), -2.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(UnaryOp::Abs.apply(-3.0), 3.0);
    }

    #[test]
    fn binary_ops_apply() {
        assert_eq!(BinOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(BinOp::Div.apply(6.0, 3.0), 2.0);
    }

    #[test]
    fn expr_map_loads_rewrites() {
        let e = Expr::load("a", vec![IndexExpr::var("i"), IndexExpr::var("n")]);
        // Drop the `n` dimension, as shared-variable analysis would.
        let out = e.map_loads(&mut |r| {
            BufRef::new(r.buffer.clone(), vec![r.indices[0].clone()])
        });
        assert_eq!(out.to_string(), "a[i]");
    }
}
