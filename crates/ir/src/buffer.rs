//! Buffer declarations: the symbol table shared by the compiler and the
//! runtime allocator.

use latte_tensor::Shape;
use std::fmt;

/// What role a buffer plays in the compiled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Neuron output activations (`value` fields). Batched.
    Value,
    /// Gradients of activations (`∇` fields). Batched.
    Grad,
    /// Learnable parameters (weights, biases). Shared across the batch.
    Param,
    /// Gradients of learnable parameters. Shared across the batch and
    /// reduced over it.
    ParamGrad,
    /// Gathered neuron inputs (the synthesized data-copy target). Batched.
    InputStage,
    /// Gradients of gathered inputs. Batched.
    InputGradStage,
    /// Non-learnable per-ensemble state with one copy per batch item
    /// (e.g. softmax probabilities kept for backward).
    State,
    /// Non-learnable state with a single copy shared by the whole batch
    /// (e.g. batch-normalization statistics).
    SharedState,
}

impl BufferKind {
    /// Whether the runtime allocates one copy of this buffer per batch item.
    pub fn is_batched(self) -> bool {
        !matches!(
            self,
            BufferKind::Param | BufferKind::ParamGrad | BufferKind::SharedState
        )
    }

    /// Whether the buffer holds gradient data that must be cleared before
    /// each backward pass.
    pub fn is_grad(self) -> bool {
        matches!(
            self,
            BufferKind::Grad | BufferKind::ParamGrad | BufferKind::InputGradStage
        )
    }
}

/// A named buffer with a shape and a role.
///
/// Shared-variable analysis may record that this buffer *aliases* another
/// (in-place activation ensembles, or data-copy elision when all sink
/// neurons read the source values unchanged); the runtime then maps both
/// names to one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// Unique buffer name, referenced by [`crate::BufRef`]s.
    pub name: String,
    /// Logical per-batch-item shape.
    pub shape: Shape,
    /// Role of the buffer.
    pub kind: BufferKind,
    /// When set, this buffer shares storage with the named buffer (which
    /// must be at least as large).
    pub alias_of: Option<String>,
}

impl BufferDecl {
    /// Declares a fresh buffer.
    pub fn new(name: impl Into<String>, shape: impl Into<Shape>, kind: BufferKind) -> Self {
        BufferDecl {
            name: name.into(),
            shape: shape.into(),
            kind,
            alias_of: None,
        }
    }

    /// Declares a buffer aliasing existing storage.
    pub fn alias(
        name: impl Into<String>,
        shape: impl Into<Shape>,
        kind: BufferKind,
        of: impl Into<String>,
    ) -> Self {
        BufferDecl {
            name: name.into(),
            shape: shape.into(),
            kind,
            alias_of: Some(of.into()),
        }
    }

    /// Number of elements per batch item.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Always `false`; buffers hold at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for BufferDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} {:?}", self.name, self.shape, self.kind)?;
        if let Some(a) = &self.alias_of {
            write!(f, " (alias of {a})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_and_grad_classification() {
        assert!(BufferKind::Value.is_batched());
        assert!(!BufferKind::Param.is_batched());
        assert!(BufferKind::ParamGrad.is_grad());
        assert!(!BufferKind::Value.is_grad());
        assert!(BufferKind::InputGradStage.is_grad());
    }

    #[test]
    fn alias_display() {
        let b = BufferDecl::alias("relu1value", vec![4, 4], BufferKind::Value, "conv1value");
        assert_eq!(b.to_string(), "relu1value: 4x4 Value (alias of conv1value)");
        assert_eq!(b.len(), 16);
    }
}
