//! Structural IR verification: the contract every compiler pass must
//! preserve.
//!
//! The pass manager in `latte-core` runs [`verify_program`] between
//! passes (always in debug builds and tests, opt-in in release via
//! `LATTE_VERIFY_IR=1`), so a pass that emits a malformed nest is caught
//! at the pass boundary with a precise diagnostic instead of surfacing
//! later as a lowering failure — or worse, as silently wrong numbers.
//!
//! Checks performed:
//!
//! * **loop-bound sanity** — every loop has a non-zero extent, loop
//!   variables are unique within their nest, tile annotations are
//!   internally consistent (`tile_size >= 1`, `dep_distance >= 1`);
//! * **buffer-reference consistency** — every referenced buffer is
//!   declared, reference rank matches the declared rank, every index
//!   variable is bound by an enclosing loop, and the flattened affine
//!   index provably stays inside the buffer for all loop values (the
//!   same static bounds proof lowering performs);
//! * **alias-class well-formedness** — alias targets exist, are declared
//!   before the alias, are not themselves aliases, and agree on per-item
//!   size and batching;
//! * **parallel-marker legality** — only tiled loops may carry the
//!   `parallel` annotation (the runtime's collapsed batch x tile schedule
//!   assumes the parallel loop is a tile loop).

use std::collections::HashMap;
use std::fmt;

use crate::buffer::BufferDecl;
use crate::expr::{BufRef, IndexExpr};
use crate::stmt::{CopyStmt, GatherStmt, GemmStmt, Stmt};

/// A verification failure: where it was found and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Which statement tripped the check, as a human-readable path
    /// (e.g. `"stmt 2 / for t / for n0"`).
    pub location: String,
    /// What is wrong.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Everything the statement checks need about one declared buffer.
struct BufMeta {
    rank: usize,
    strides: Vec<usize>,
    per_item: usize,
}

struct Verifier {
    bufs: HashMap<String, BufMeta>,
    /// Enclosing loop variables with extents, outermost first.
    scope: Vec<(String, usize)>,
    /// Human-readable location path.
    path: Vec<String>,
}

/// Verifies a whole program: the buffer table plus every statement of
/// every group in both phases. `groups` supplies `(group name,
/// statements)` pairs in execution order.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_program<'a>(
    decls: &[BufferDecl],
    groups: impl IntoIterator<Item = (&'a str, &'a [Stmt])>,
) -> Result<(), VerifyError> {
    verify_buffers(decls)?;
    let mut v = Verifier::new(decls);
    for (name, stmts) in groups {
        v.path.clear();
        v.path.push(format!("group `{name}`"));
        for (i, s) in stmts.iter().enumerate() {
            v.path.push(format!("stmt {i}"));
            v.stmt(s)?;
            v.path.pop();
        }
    }
    Ok(())
}

/// Verifies the buffer table alone: unique names and well-formed alias
/// classes.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_buffers(decls: &[BufferDecl]) -> Result<(), VerifyError> {
    let mut seen: HashMap<&str, &BufferDecl> = HashMap::new();
    for decl in decls {
        let here = || VerifyError {
            location: format!("buffer `{}`", decl.name),
            detail: String::new(),
        };
        if seen.contains_key(decl.name.as_str()) {
            return Err(VerifyError {
                detail: "declared twice".into(),
                ..here()
            });
        }
        if let Some(target) = &decl.alias_of {
            let Some(t) = seen.get(target.as_str()) else {
                return Err(VerifyError {
                    detail: format!("aliases `{target}`, which is missing or declared later"),
                    ..here()
                });
            };
            // Alias-of-alias chains are fine (the store resolves them
            // transitively); since targets must be declared earlier the
            // chain can never cycle.
            if t.len() != decl.len() {
                return Err(VerifyError {
                    detail: format!(
                        "aliases `{target}` but sizes differ ({} vs {} elements)",
                        decl.len(),
                        t.len()
                    ),
                    ..here()
                });
            }
            if t.kind.is_batched() != decl.kind.is_batched() {
                return Err(VerifyError {
                    detail: format!("aliases `{target}` across the batched/unbatched boundary"),
                    ..here()
                });
            }
        }
        seen.insert(&decl.name, decl);
    }
    Ok(())
}

impl Verifier {
    fn new(decls: &[BufferDecl]) -> Self {
        let bufs = decls
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    BufMeta {
                        rank: d.shape.rank(),
                        strides: d.shape.strides().to_vec(),
                        per_item: d.len(),
                    },
                )
            })
            .collect();
        Verifier {
            bufs,
            scope: Vec::new(),
            path: Vec::new(),
        }
    }

    fn err(&self, detail: impl Into<String>) -> VerifyError {
        VerifyError {
            location: self.path.join(" / "),
            detail: detail.into(),
        }
    }

    fn meta(&self, name: &str) -> Result<&BufMeta, VerifyError> {
        self.bufs
            .get(name)
            .ok_or_else(|| self.err(format!("references undeclared buffer `{name}`")))
    }

    /// Minimum and maximum of an affine index over the enclosing loop
    /// ranges; errors on unbound variables.
    fn range(&self, e: &IndexExpr) -> Result<(i64, i64), VerifyError> {
        let mut lo = e.offset();
        let mut hi = e.offset();
        for (var, coef) in e.terms() {
            let extent = self
                .scope
                .iter()
                .rev()
                .find(|(v, _)| v == var)
                .map(|&(_, e)| e)
                .ok_or_else(|| self.err(format!("index uses unbound variable `{var}`")))?;
            let max_v = extent as i64 - 1;
            if coef >= 0 {
                hi += coef * max_v;
            } else {
                lo += coef * max_v;
            }
        }
        Ok((lo, hi))
    }

    /// Checks one buffer reference: declared, rank-correct, and with a
    /// flattened index provably inside the per-item extent.
    fn bufref(&self, r: &BufRef) -> Result<(), VerifyError> {
        let meta = self.meta(&r.buffer)?;
        if r.indices.len() != meta.rank {
            return Err(self.err(format!(
                "reference {r} has {} indices but `{}` has rank {}",
                r.indices.len(),
                r.buffer,
                meta.rank
            )));
        }
        let mut flat_lo = 0i64;
        let mut flat_hi = 0i64;
        for (idx, &stride) in r.indices.iter().zip(&meta.strides) {
            let (lo, hi) = self.range(idx)?;
            flat_lo += lo * stride as i64;
            flat_hi += hi * stride as i64;
        }
        if flat_lo < 0 || flat_hi >= meta.per_item as i64 {
            return Err(self.err(format!(
                "reference {r} ranges over [{flat_lo}, {flat_hi}] outside `{}` of {} elements",
                r.buffer, meta.per_item
            )));
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), VerifyError> {
        match s {
            Stmt::For(l) => {
                if l.extent == 0 {
                    self.path.push(format!("for {}", l.var));
                    return Err(self.err("loop has zero extent"));
                }
                if self.scope.iter().any(|(v, _)| *v == l.var) {
                    self.path.push(format!("for {}", l.var));
                    return Err(self.err(format!(
                        "loop variable `{}` shadows an enclosing loop",
                        l.var
                    )));
                }
                if let Some(t) = l.annot.tiled {
                    if t.tile_size == 0 || t.dep_distance == 0 {
                        self.path.push(format!("for {}", l.var));
                        return Err(self.err(format!(
                            "tile annotation is degenerate (size={}, dep={})",
                            t.tile_size, t.dep_distance
                        )));
                    }
                }
                if l.annot.parallel && l.annot.tiled.is_none() {
                    self.path.push(format!("for {}", l.var));
                    return Err(self.err("parallel marker on an untiled loop"));
                }
                self.path.push(format!("for {}", l.var));
                self.scope.push((l.var.clone(), l.extent));
                for b in &l.body {
                    self.stmt(b)?;
                }
                self.scope.pop();
                self.path.pop();
                Ok(())
            }
            Stmt::Assign(a) => {
                self.bufref(&a.dest)?;
                let mut first_err = None;
                a.value.visit_loads(&mut |r| {
                    if first_err.is_none() {
                        if let Err(e) = self.bufref(r) {
                            first_err = Some(e);
                        }
                    }
                });
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            Stmt::Gemm(g) => self.gemm(g),
            Stmt::Copy(c) => self.copy(c),
            Stmt::Gather(g) => self.gather(g),
            Stmt::Extern(e) => {
                for b in &e.buffers {
                    self.meta(b)?;
                }
                Ok(())
            }
            Stmt::Barrier => Ok(()),
        }
    }

    fn gemm(&self, g: &GemmStmt) -> Result<(), VerifyError> {
        if g.m == 0 || g.n == 0 || g.k == 0 {
            return Err(self.err(format!(
                "gemm has a degenerate dimension (m={}, n={}, k={})",
                g.m, g.n, g.k
            )));
        }
        for (name, off, need, operand) in [
            (&g.a, &g.a_off, g.m * g.k, "A"),
            (&g.b, &g.b_off, g.k * g.n, "B"),
            (&g.c, &g.c_off, g.m * g.n, "C"),
        ] {
            let meta = self.meta(name)?;
            let (lo, hi) = self.range(off)?;
            if lo < 0 || hi + need as i64 > meta.per_item as i64 {
                return Err(self.err(format!(
                    "gemm operand {operand} (`{name}`) spans [{lo}, {}] outside {} elements",
                    hi + need as i64,
                    meta.per_item
                )));
            }
        }
        Ok(())
    }

    fn copy(&self, c: &CopyStmt) -> Result<(), VerifyError> {
        let dmeta = self.meta(&c.dest)?;
        let smeta = self.meta(&c.src)?;
        let dest_total: usize = c.dest_shape.iter().product();
        if dest_total != dmeta.per_item {
            return Err(self.err(format!(
                "copy dest shape {:?} has {} elements but `{}` has {}",
                c.dest_shape, dest_total, c.dest, dmeta.per_item
            )));
        }
        let src_total: usize = c.src_shape.iter().product();
        if src_total != smeta.per_item {
            return Err(self.err(format!(
                "copy src shape {:?} has {} elements but `{}` has {}",
                c.src_shape, src_total, c.src, smeta.per_item
            )));
        }
        let ndd = c.dest_shape.len();
        if c.extents.len() != ndd || c.offsets.len() != ndd {
            return Err(self.err(format!(
                "copy iterates {} extents / {} offsets over a rank-{ndd} destination",
                c.extents.len(),
                c.offsets.len()
            )));
        }
        if c.map.len() != c.src_shape.len() {
            return Err(self.err(format!(
                "copy maps {} source indices over a rank-{} source",
                c.map.len(),
                c.src_shape.len()
            )));
        }
        // The map is written in the copy's own global-dest-index variables
        // d0..d{ndd-1}; anything else is dangling.
        for m in &c.map {
            for (var, _) in m.terms() {
                let ok = var
                    .strip_prefix('d')
                    .and_then(|v| v.parse::<usize>().ok())
                    .is_some_and(|d| d < ndd);
                if !ok {
                    return Err(self.err(format!("copy map uses unexpected variable `{var}`")));
                }
            }
        }
        for (d, (off, &extent)) in c.offsets.iter().zip(&c.extents).enumerate() {
            if extent == 0 {
                return Err(self.err(format!("copy dim {d} has zero extent")));
            }
            let (lo, hi) = self.range(off)?;
            if lo < 0 || hi + extent as i64 > c.dest_shape[d] as i64 {
                return Err(self.err(format!(
                    "copy dim {d} covers [{lo}, {}] outside extent {}",
                    hi + extent as i64,
                    c.dest_shape[d]
                )));
            }
        }
        Ok(())
    }

    fn gather(&self, g: &GatherStmt) -> Result<(), VerifyError> {
        let dmeta = self.meta(&g.dest)?;
        let smeta = self.meta(&g.src)?;
        if g.dest_len != dmeta.per_item {
            return Err(self.err(format!(
                "gather writes {} elements but `{}` has {}",
                g.dest_len, g.dest, dmeta.per_item
            )));
        }
        if g.table.len() != g.dest_len {
            return Err(self.err(format!(
                "gather table has {} entries for {} destination elements",
                g.table.len(),
                g.dest_len
            )));
        }
        for (i, &t) in g.table.iter().enumerate() {
            if t < -1 || t >= smeta.per_item as i64 {
                return Err(self.err(format!(
                    "gather table entry {i} is {t}, outside `{}` of {} elements",
                    g.src, smeta.per_item
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferKind;
    use crate::expr::Expr;

    fn decls() -> Vec<BufferDecl> {
        vec![
            BufferDecl::new("v", vec![4, 8], BufferKind::Value),
            BufferDecl::new("w", vec![8], BufferKind::Param),
        ]
    }

    fn check(stmts: &[Stmt]) -> Result<(), VerifyError> {
        verify_program(&decls(), [("g", stmts)])
    }

    #[test]
    fn well_formed_nest_passes() {
        let s = Stmt::for_loop(
            "i",
            4,
            vec![Stmt::for_loop(
                "j",
                8,
                vec![Stmt::assign(
                    BufRef::new("v", vec![IndexExpr::var("i"), IndexExpr::var("j")]),
                    Expr::load("w", vec![IndexExpr::var("j")]),
                )],
            )],
        );
        check(&[s]).unwrap();
    }

    #[test]
    fn unbound_variable_is_reported() {
        let s = Stmt::for_loop(
            "i",
            4,
            vec![Stmt::assign(
                BufRef::new("v", vec![IndexExpr::var("i"), IndexExpr::var("q")]),
                Expr::lit(0.0),
            )],
        );
        let e = check(&[s]).unwrap_err();
        assert!(e.detail.contains("unbound variable `q`"), "{e}");
        assert!(e.location.contains("for i"), "{e}");
    }

    #[test]
    fn out_of_bounds_reference_is_reported() {
        let s = Stmt::for_loop(
            "i",
            5, // one past the declared extent 4
            vec![Stmt::assign(
                BufRef::new("v", vec![IndexExpr::var("i"), IndexExpr::zero()]),
                Expr::lit(0.0),
            )],
        );
        let e = check(&[s]).unwrap_err();
        assert!(e.detail.contains("outside `v`"), "{e}");
    }

    #[test]
    fn rank_mismatch_is_reported() {
        let s = Stmt::assign(BufRef::new("v", vec![IndexExpr::zero()]), Expr::lit(0.0));
        let e = check(&[s]).unwrap_err();
        assert!(e.detail.contains("rank"), "{e}");
    }

    #[test]
    fn zero_extent_loop_is_reported() {
        let s = Stmt::for_loop("i", 0, vec![]);
        let e = check(&[s]).unwrap_err();
        assert!(e.detail.contains("zero extent"), "{e}");
    }

    #[test]
    fn parallel_marker_requires_tiling() {
        let mut l = crate::stmt::Loop::new("i", 4, vec![]);
        l.annot.parallel = true;
        let e = check(&[Stmt::For(l)]).unwrap_err();
        assert!(e.detail.contains("parallel marker"), "{e}");
    }

    #[test]
    fn dangling_buffer_reference_is_reported() {
        let s = Stmt::assign(
            BufRef::new("ghost", vec![IndexExpr::zero()]),
            Expr::lit(0.0),
        );
        let e = check(&[s]).unwrap_err();
        assert!(e.detail.contains("undeclared buffer `ghost`"), "{e}");
    }

    #[test]
    fn alias_ordering_is_checked() {
        let bad = vec![
            BufferDecl::alias("a", vec![4], BufferKind::Value, "b"),
            BufferDecl::new("b", vec![4], BufferKind::Value),
        ];
        let e = verify_buffers(&bad).unwrap_err();
        assert!(e.detail.contains("declared later"), "{e}");
    }

    #[test]
    fn alias_size_mismatch_is_checked() {
        let bad = vec![
            BufferDecl::new("b", vec![4], BufferKind::Value),
            BufferDecl::alias("a", vec![8], BufferKind::Value, "b"),
        ];
        let e = verify_buffers(&bad).unwrap_err();
        assert!(e.detail.contains("sizes differ"), "{e}");
    }
}
