//! # latte-ir
//!
//! The intermediate representation of the Latte compiler: affine index
//! expressions, scalar expression trees, loop-nest statements with tiling /
//! parallelism annotations, matched library-kernel nodes, and buffer
//! declarations.
//!
//! In the paper, Latte's IR is "a superset of the internal Julia AST" and
//! neuron bodies are obtained by macro introspection. Rust has no such
//! introspection, so this crate *is* the substitute: neuron bodies are
//! written directly against [`Expr`] / [`Stmt`] through builder APIs in
//! `latte-core`, and every compiler pass (shared-variable analysis, GEMM
//! pattern matching, tiling, cross-layer fusion, parallelization) is a
//! transformation over these types.
//!
//! # Examples
//!
//! ```
//! use latte_ir::{BufRef, Expr, IndexExpr, Stmt};
//!
//! // for n in 0..4 { for i in 0..3 { value[n] += inputs[i] * weights[i, n] } }
//! let nest = Stmt::for_loop("n", 4, vec![Stmt::for_loop("i", 3, vec![
//!     Stmt::accumulate(
//!         BufRef::new("value", vec![IndexExpr::var("n")]),
//!         Expr::load("inputs", vec![IndexExpr::var("i")])
//!             .mul(Expr::load("weights", vec![IndexExpr::var("i"), IndexExpr::var("n")])),
//!     ),
//! ])]);
//! assert!(nest.to_string().contains("value[n] += (inputs[i] * weights[i, n])"));
//! ```

#![warn(missing_docs)]

mod buffer;
mod expr;
mod stmt;
pub mod verify;

pub use buffer::{BufferDecl, BufferKind};
pub use verify::{verify_buffers, verify_program, VerifyError};
pub use expr::{BinOp, BufRef, Expr, IndexExpr, UnaryOp};
pub use stmt::{
    print_stmts, Assign, AssignOp, CopyStmt, ExternOp, GatherStmt, GemmDim, GemmStmt, GemmTiling,
    Loop, LoopAnnot, Stmt, TileInfo,
};
