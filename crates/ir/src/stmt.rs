//! Loop-nest statements: the IR the Latte compiler synthesizes, optimizes,
//! and hands to the runtime for lowering.
//!
//! The statement language mirrors the paper's synthesized pseudo-code
//! (Figures 9, 10, 12): counted loops with optional *tiling* and
//! *parallel* annotations, scalar assignments, matched library kernels
//! ([`GemmStmt`]), opaque array operations ([`ExternOp`]) for
//! normalization ensembles, and fusion-preventing barriers.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{BufRef, Expr, IndexExpr};

/// How an assignment combines with the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `dest = value`.
    Set,
    /// `dest += value`.
    Add,
    /// `dest = max(dest, value)`.
    Max,
}

impl AssignOp {
    /// Combines the previous destination value with the new value.
    pub fn apply(self, dest: f32, value: f32) -> f32 {
        match self {
            AssignOp::Set => value,
            AssignOp::Add => dest + value,
            AssignOp::Max => dest.max(value),
        }
    }
}

/// A scalar store `dest op= value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The destination element.
    pub dest: BufRef,
    /// How the value combines with the destination.
    pub op: AssignOp,
    /// The stored expression.
    pub value: Expr,
}

/// Tiling metadata attached to a loop by the tiling pass.
///
/// Carries the *input dependence distance* along the tiled dimension — the
/// piece of semantic information (derived from the connection structure)
/// that lets the fusion pass scale producer tiles across sub-sampling
/// boundaries instead of running a general dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileInfo {
    /// Iterations of this loop executed per tile.
    pub tile_size: usize,
    /// How many iterations of the *producer's* tiled dimension one
    /// iteration of this loop consumes (1 for elementwise, 2 for 2x2/2
    /// pooling, …).
    pub dep_distance: usize,
}

/// Annotations attached to a loop by the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LoopAnnot {
    /// Tiling metadata, when the tiling pass split this loop.
    pub tiled: Option<TileInfo>,
    /// Whether the parallelization pass marked this loop parallel
    /// (collapsed with any adjacent parallel loop, as with OpenMP
    /// `collapse`).
    pub parallel: bool,
    /// Whether the loop body is a unit-stride streaming loop the code
    /// generator should annotate for vectorization (`#pragma simd`).
    pub vectorize: bool,
}

/// A counted loop `for var in 0..extent { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// The loop variable, unique within its nest.
    pub var: String,
    /// The trip count (all extents are known at network-compile time).
    pub extent: usize,
    /// Optimizer annotations.
    pub annot: LoopAnnot,
    /// The loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// Creates an unannotated loop.
    pub fn new(var: impl Into<String>, extent: usize, body: Vec<Stmt>) -> Self {
        Loop {
            var: var.into(),
            extent,
            annot: LoopAnnot::default(),
            body,
        }
    }
}

/// Which logical GEMM dimension a tiled loop variable spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmDim {
    /// Output rows.
    M,
    /// Output columns.
    N,
    /// The reduction dimension (tiling it yields partial accumulations).
    K,
}

/// How a matched GEMM can be restricted to a tile of the group's
/// outermost dimension, recorded by the pattern matcher for the tiling
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmTiling {
    /// The GEMM dimension the group's dim-0 variable spans.
    pub dim: GemmDim,
    /// Elements of that dimension per dim-0 step.
    pub per_step: usize,
    /// Extent of the dim-0 variable.
    pub extent: usize,
    /// Flat-offset increment of A per dim-0 step.
    pub a_step: usize,
    /// Flat-offset increment of B per dim-0 step.
    pub b_step: usize,
    /// Flat-offset increment of C per dim-0 step.
    pub c_step: usize,
}

/// A matched library kernel call `C[c0..] += op(A[a0..]) * op(B[b0..])`.
///
/// Produced by the pattern-matching pass from a synthesized
/// multiply-accumulate loop nest; executed by the runtime through the
/// blocked GEMM in `latte-tensor` (the stand-in for MKL `sgemm`, see the
/// paper's Section 5.4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GemmStmt {
    /// Whether A is transposed (stored `k x m` instead of `m x k`).
    pub ta: bool,
    /// Whether B is transposed (stored `n x k` instead of `k x n`).
    pub tb: bool,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction extent.
    pub k: usize,
    /// Name of the A buffer.
    pub a: String,
    /// Flat element offset into A, affine in enclosing loop variables.
    pub a_off: IndexExpr,
    /// Name of the B buffer.
    pub b: String,
    /// Flat element offset into B.
    pub b_off: IndexExpr,
    /// Name of the C (accumulated) buffer.
    pub c: String,
    /// Flat element offset into C.
    pub c_off: IndexExpr,
    /// Tiling metadata over the group's dim-0 variable, when available.
    pub tiling: Option<GemmTiling>,
}

/// A synthesized data-movement nest (the paper's "data copy tasks").
///
/// For every connection whose inputs cannot be aliased directly, Latte
/// synthesizes a loop nest that gathers each sink neuron's inputs into a
/// staging buffer (the generic analogue of im2col), or — in the backward
/// pass — scatters staged input gradients back to the source ensemble.
/// Representing the whole nest as one node keeps its affine structure
/// available to tiling (which restricts the iterated extents) and lets the
/// runtime lower it to tight native loops with padding handled at the
/// boundary.
///
/// Semantics, with `g_d = offsets[d] + local_d` for `local_d` in
/// `0..extents[d]` and `s = map(g)` the affine source index:
///
/// * gather (`scatter == false`): `dest[g] = src[s]`, reading `0` when `s`
///   is out of bounds (zero padding);
/// * scatter (`scatter == true`): `src[s] += dest[g]`, skipping
///   out-of-bounds `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyStmt {
    /// The staging buffer (gather destination / scatter source of values).
    pub dest: String,
    /// Full shape of `dest`; `g` indexes it row-major.
    pub dest_shape: Vec<usize>,
    /// Iterated extent per destination dimension (`<= dest_shape[d]`).
    pub extents: Vec<usize>,
    /// Starting global index per destination dimension, affine in enclosing
    /// loop variables (all-zero when untiled).
    pub offsets: Vec<IndexExpr>,
    /// The connected ensemble's buffer.
    pub src: String,
    /// Full shape of `src`, used for padding bounds checks.
    pub src_shape: Vec<usize>,
    /// One affine index per source dimension in the variables
    /// `"d0".."dN"`, where `dI` is the global destination index `g_I`.
    pub map: Vec<IndexExpr>,
    /// `false` gathers into `dest`; `true` scatter-accumulates into `src`.
    pub scatter: bool,
}

impl CopyStmt {
    /// The canonical variable name of destination dimension `d`.
    pub fn dim_var(d: usize) -> String {
        format!("d{d}")
    }
}

/// A table-driven gather/scatter for irregular connections.
///
/// When shared-variable analysis cannot recover affine structure from a
/// mapping, the adjacency is materialized as a flat table of source
/// offsets: entry `i` is the per-item source offset feeding destination
/// element `i`, or `-1` for padding.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherStmt {
    /// The staging buffer.
    pub dest: String,
    /// Per-item flat length of `dest` (and of the table).
    pub dest_len: usize,
    /// The connected ensemble's buffer.
    pub src: String,
    /// Source offset per destination element; `-1` reads zero / absorbs
    /// nothing.
    pub table: std::sync::Arc<Vec<i64>>,
    /// `false`: `dest[i] = src[table[i]]`; `true`: `src[table[i]] +=
    /// dest[i]`.
    pub scatter: bool,
}

/// An opaque array operation dispatched by name at runtime.
///
/// Normalization ensembles (softmax, LRN, batch-norm, losses) operate on
/// whole value arrays and are explicitly *not* fused by the compiler; they
/// lower to one of these. The runtime keeps a registry from `op` name to
/// kernel, so user crates can add their own.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternOp {
    /// Registered kernel name, e.g. `"softmax_loss_forward"`.
    pub op: String,
    /// Buffer names passed to the kernel, in kernel-defined order.
    pub buffers: Vec<String>,
    /// Scalar attributes (window sizes, epsilons, …).
    pub attrs: BTreeMap<String, f64>,
}

/// A statement of the loop-nest IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A counted loop.
    For(Loop),
    /// A scalar store.
    Assign(Assign),
    /// A matched GEMM kernel.
    Gemm(GemmStmt),
    /// A synthesized data-movement nest.
    Copy(CopyStmt),
    /// A table-driven gather/scatter (irregular connections).
    Gather(GatherStmt),
    /// An opaque array kernel.
    Extern(ExternOp),
    /// A fusion-preventing barrier (emitted around unfusable ensembles).
    Barrier,
}

impl Stmt {
    /// Builds `for var in 0..extent { body }`.
    pub fn for_loop(var: impl Into<String>, extent: usize, body: Vec<Stmt>) -> Stmt {
        Stmt::For(Loop::new(var, extent, body))
    }

    /// Builds `dest = value`.
    pub fn assign(dest: BufRef, value: Expr) -> Stmt {
        Stmt::Assign(Assign {
            dest,
            op: AssignOp::Set,
            value,
        })
    }

    /// Builds `dest += value`.
    pub fn accumulate(dest: BufRef, value: Expr) -> Stmt {
        Stmt::Assign(Assign {
            dest,
            op: AssignOp::Add,
            value,
        })
    }

    /// Builds `dest = max(dest, value)`.
    pub fn max_assign(dest: BufRef, value: Expr) -> Stmt {
        Stmt::Assign(Assign {
            dest,
            op: AssignOp::Max,
            value,
        })
    }

    /// Visits this statement and all nested statements, outside-in.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        if let Stmt::For(l) = self {
            for s in &l.body {
                s.visit(f);
            }
        }
    }

    /// Counts statements of the nest matching a predicate.
    pub fn count_matching(&self, pred: &impl Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }

    /// Rewrites every buffer reference (loads and stores) with `f`.
    pub fn map_bufrefs(&self, f: &mut impl FnMut(&BufRef) -> BufRef) -> Stmt {
        match self {
            Stmt::For(l) => Stmt::For(Loop {
                var: l.var.clone(),
                extent: l.extent,
                annot: l.annot,
                body: l.body.iter().map(|s| s.map_bufrefs(f)).collect(),
            }),
            Stmt::Assign(a) => Stmt::Assign(Assign {
                dest: f(&a.dest),
                op: a.op,
                value: a.value.map_loads(f),
            }),
            other => other.clone(),
        }
    }

    /// Substitutes loop variable `var := replacement` in every index
    /// expression of the nest (used when tiling rewrites `y` as
    /// `y_tile * T + y_in`).
    pub fn subst_var(&self, var: &str, replacement: &IndexExpr) -> Stmt {
        match self {
            Stmt::For(l) => Stmt::For(Loop {
                var: l.var.clone(),
                extent: l.extent,
                annot: l.annot,
                body: l
                    .body
                    .iter()
                    .map(|s| s.subst_var(var, replacement))
                    .collect(),
            }),
            Stmt::Assign(a) => Stmt::Assign(Assign {
                dest: a.dest.map_indices(|i| i.subst(var, replacement)),
                op: a.op,
                value: a
                    .value
                    .map_loads(&mut |r| r.map_indices(|i| i.subst(var, replacement))),
            }),
            Stmt::Gemm(g) => {
                let mut g = g.clone();
                g.a_off = g.a_off.subst(var, replacement);
                g.b_off = g.b_off.subst(var, replacement);
                g.c_off = g.c_off.subst(var, replacement);
                Stmt::Gemm(g)
            }
            Stmt::Copy(c) => {
                let mut c = c.clone();
                // Only the enclosing-loop offsets may mention outer loop
                // variables; the map is in the copy's own `dI` variables.
                for off in &mut c.offsets {
                    *off = off.subst(var, replacement);
                }
                Stmt::Copy(c)
            }
            other => other.clone(),
        }
    }

    /// The buffers written by this nest.
    pub fn written_buffers(&self) -> Vec<String> {
        fn push_unique(out: &mut Vec<String>, name: &str) {
            if !out.iter().any(|b| b == name) {
                out.push(name.to_string());
            }
        }
        let mut out = Vec::new();
        self.visit(&mut |s| match s {
            Stmt::Assign(a) => push_unique(&mut out, &a.dest.buffer),
            Stmt::Gemm(g) => push_unique(&mut out, &g.c),
            Stmt::Copy(c) => push_unique(&mut out, if c.scatter { &c.src } else { &c.dest }),
            Stmt::Gather(g) => push_unique(&mut out, if g.scatter { &g.src } else { &g.dest }),
            Stmt::Extern(e) => {
                // Conservatively treat every extern buffer as written.
                for b in &e.buffers {
                    push_unique(&mut out, b);
                }
            }
            _ => {}
        });
        out
    }

    /// The buffers read by this nest.
    pub fn read_buffers(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |name: &str| {
            if !out.iter().any(|b| b == name) {
                out.push(name.to_string());
            }
        };
        self.visit(&mut |s| match s {
            Stmt::Assign(a) => a.value.visit_loads(&mut |r| push(&r.buffer)),
            Stmt::Gemm(g) => {
                push(&g.a);
                push(&g.b);
            }
            Stmt::Copy(c) => {
                push(if c.scatter { &c.dest } else { &c.src });
            }
            Stmt::Gather(g) => {
                push(if g.scatter { &g.dest } else { &g.src });
            }
            Stmt::Extern(e) => {
                for b in &e.buffers {
                    push(b);
                }
            }
            _ => {}
        });
        out
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(self, f, 0)
    }
}

fn fmt_stmt(stmt: &Stmt, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::For(l) => {
            let mut marks = String::new();
            if l.annot.parallel {
                marks.push_str(" @parallel");
            }
            if let Some(t) = l.annot.tiled {
                marks.push_str(&format!(
                    " @tiled(size={}, dep={})",
                    t.tile_size, t.dep_distance
                ));
            }
            if l.annot.vectorize {
                marks.push_str(" @simd");
            }
            writeln!(f, "{pad}for {} in 0..{}{} {{", l.var, l.extent, marks)?;
            for s in &l.body {
                fmt_stmt(s, f, indent + 1)?;
            }
            writeln!(f, "{pad}}}")
        }
        Stmt::Assign(a) => {
            let op = match a.op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Max => "max=",
            };
            writeln!(f, "{pad}{} {} {}", a.dest, op, a.value)
        }
        Stmt::Gemm(g) => writeln!(
            f,
            "{pad}gemm('{}', '{}', m={}, n={}, k={}, A={}[{}], B={}[{}], C={}[{}])",
            if g.ta { 'T' } else { 'N' },
            if g.tb { 'T' } else { 'N' },
            g.m,
            g.n,
            g.k,
            g.a,
            g.a_off,
            g.b,
            g.b_off,
            g.c,
            g.c_off
        ),
        Stmt::Copy(c) => {
            let exts: Vec<String> = c
                .extents
                .iter()
                .zip(&c.offsets)
                .map(|(e, o)| {
                    if o.is_constant() && o.offset() == 0 {
                        e.to_string()
                    } else {
                        format!("{o}+{e}")
                    }
                })
                .collect();
            let map: Vec<String> = c.map.iter().map(|m| m.to_string()).collect();
            if c.scatter {
                writeln!(
                    f,
                    "{pad}scatter {}[{}] += {}[{}]",
                    c.src,
                    map.join(", "),
                    c.dest,
                    exts.join(", ")
                )
            } else {
                writeln!(
                    f,
                    "{pad}copy {}[{}] = {}[{}]",
                    c.dest,
                    exts.join(", "),
                    c.src,
                    map.join(", ")
                )
            }
        }
        Stmt::Gather(g) => {
            if g.scatter {
                writeln!(f, "{pad}scatter {}[table] += {}[{}]", g.src, g.dest, g.dest_len)
            } else {
                writeln!(f, "{pad}gather {}[{}] = {}[table]", g.dest, g.dest_len, g.src)
            }
        }
        Stmt::Extern(e) => {
            let attrs: Vec<String> = e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(
                f,
                "{pad}extern {}({}){}",
                e.op,
                e.buffers.join(", "),
                if attrs.is_empty() {
                    String::new()
                } else {
                    format!(" {{{}}}", attrs.join(", "))
                }
            )
        }
        Stmt::Barrier => writeln!(f, "{pad}barrier"),
    }
}

/// Pretty-prints a sequence of statements as an indented block.
pub fn print_stmts(stmts: &[Stmt]) -> String {
    stmts.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_nest() -> Stmt {
        // for n { for i { value[n] += inputs[i] * weights[i, n] } }
        Stmt::for_loop(
            "n",
            4,
            vec![Stmt::for_loop(
                "i",
                3,
                vec![Stmt::accumulate(
                    BufRef::new("value", vec![IndexExpr::var("n")]),
                    Expr::load("inputs", vec![IndexExpr::var("i")]).mul(Expr::load(
                        "weights",
                        vec![IndexExpr::var("i"), IndexExpr::var("n")],
                    )),
                )],
            )],
        )
    }

    #[test]
    fn pretty_print_matches_paper_style() {
        let s = mac_nest().to_string();
        assert!(s.contains("for n in 0..4 {"));
        assert!(s.contains("value[n] += (inputs[i] * weights[i, n])"));
    }

    #[test]
    fn read_write_sets() {
        let nest = mac_nest();
        assert_eq!(nest.written_buffers(), vec!["value".to_string()]);
        let reads = nest.read_buffers();
        assert!(reads.contains(&"inputs".to_string()));
        assert!(reads.contains(&"weights".to_string()));
    }

    #[test]
    fn subst_var_rewrites_indices() {
        let nest = mac_nest();
        let repl = IndexExpr::var("t").scaled(2) + IndexExpr::var("n2");
        let out = nest.subst_var("n", &repl);
        let s = out.to_string();
        assert!(s.contains("value[n2 + 2*t]"), "{s}");
    }

    #[test]
    fn assign_op_semantics() {
        assert_eq!(AssignOp::Set.apply(1.0, 5.0), 5.0);
        assert_eq!(AssignOp::Add.apply(1.0, 5.0), 6.0);
        assert_eq!(AssignOp::Max.apply(1.0, 5.0), 5.0);
        assert_eq!(AssignOp::Max.apply(7.0, 5.0), 7.0);
    }

    #[test]
    fn count_matching_counts_loops() {
        let nest = mac_nest();
        let loops = nest.count_matching(&|s| matches!(s, Stmt::For(_)));
        assert_eq!(loops, 2);
    }

    #[test]
    fn gemm_stmt_prints() {
        let g = Stmt::Gemm(GemmStmt {
            ta: true,
            tb: false,
            m: 8,
            n: 16,
            k: 9,
            a: "conv1input".into(),
            a_off: IndexExpr::zero(),
            b: "conv1weights".into(),
            b_off: IndexExpr::zero(),
            c: "conv1".into(),
            c_off: IndexExpr::var("y_tile").scaled(16),
            tiling: None,
        });
        let s = g.to_string();
        assert!(s.contains("gemm('T', 'N'"), "{s}");
        assert!(s.contains("C=conv1[16*y_tile]"), "{s}");
    }

    #[test]
    fn extern_op_prints_attrs() {
        let e = Stmt::Extern(ExternOp {
            op: "softmax_forward".into(),
            buffers: vec!["ip2value".into(), "probvalue".into()],
            attrs: [("classes".to_string(), 10.0)].into_iter().collect(),
        });
        assert!(e.to_string().contains("extern softmax_forward(ip2value, probvalue) {classes=10}"));
    }
}
