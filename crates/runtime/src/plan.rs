//! Execution planning: buffer liveness analysis, the arena memory layout,
//! and the [`ExecutionPlan`] the executor drives.
//!
//! Lowering (`lower.rs`) turns the compiler's groups into kernels; this
//! module decides *where buffers live* and *when their storage may be
//! reused*. The liveness pass walks both phases' groups in execution
//! order, computes each alias class's first/last access, and packs
//! non-overlapping classes into shared arena slots — the batched
//! intermediate activations and gradients of a deep net rarely all need
//! to exist at once, so peak memory drops well below the sum of buffer
//! sizes.
//!
//! Safety properties the layout preserves:
//!
//! * two classes share a slot only when their live ranges are strictly
//!   disjoint (the earlier class's last access precedes the later's
//!   first), so no kernel ever observes a co-resident's bytes;
//! * every arena class is zeroed at its first-access group, making
//!   accumulating writes (`+=` gradients, scatter copies, bias-then-GEMM
//!   inits) start from the same state a freshly allocated buffer would;
//! * classes whose first touch is a pure read, stateful kinds
//!   (`State`/`SharedState`), parameters, input bindings, and loss
//!   buffers are *retained* — they keep private storage and the exact
//!   semantics of the non-arena store;
//! * classes no statement touches get no storage at all (*dead*), and a
//!   class evicted by a later slot occupant is *expired*; reading either
//!   through the store yields a structured
//!   [`RuntimeError::BufferRetired`](crate::error::RuntimeError) rather
//!   than stale data.

use std::collections::HashMap;

use latte_core::CompiledNet;
use latte_ir::BufferKind;

use crate::lower::{CGroup, Plan};
use crate::store::Visibility;

/// The arena memory layout for one compiled net: where every alias class
/// lives and what must be zeroed when.
#[derive(Debug, Clone)]
pub(crate) struct MemoryLayout {
    /// Per alias class (primary declarations in order): backing index.
    pub backing_of_class: Vec<usize>,
    /// Element count of each backing vector.
    pub backing_len: Vec<usize>,
    /// Whether each backing is a shared arena slot (skipped by the
    /// store's global gradient zeroing; zeroed per-group instead).
    pub backing_arena: Vec<bool>,
    /// Post-run visibility of each class.
    pub class_vis: Vec<Visibility>,
    /// `(global group position, backing, elements)` fills to run before
    /// the group at that position executes.
    pub zero_on_entry: Vec<(usize, usize, usize)>,
}

struct ClassInfo {
    total_len: usize,
    retained: bool,
    first: Option<usize>,
    last: usize,
    /// First top-level statement touching the class reads it without
    /// writing it.
    read_first: bool,
}

/// Computes the liveness-based arena layout for a compiled net.
pub(crate) fn liveness_layout(net: &CompiledNet) -> MemoryLayout {
    let batch = net.batch;

    // Alias classes: one per primary declaration; aliases resolve to
    // their (transitive) root's class.
    let mut class_of: HashMap<&str, usize> = HashMap::new();
    let mut classes: Vec<ClassInfo> = Vec::new();
    for decl in &net.buffers {
        // An alias joins its (transitive) root's class. A missing target
        // gets a private class here; the store rejects it with a proper
        // `BadAlias` during allocation.
        let root = decl
            .alias_of
            .as_ref()
            .and_then(|t| class_of.get(t.as_str()).copied());
        let class = match root {
            Some(c) => c,
            None => {
                let total = decl.len() * if decl.kind.is_batched() { batch } else { 1 };
                classes.push(ClassInfo {
                    total_len: total,
                    retained: false,
                    first: None,
                    last: 0,
                    read_first: false,
                });
                classes.len() - 1
            }
        };
        class_of.insert(&decl.name, class);
        // Stateful and externally-written kinds anywhere in the class pin
        // it to private storage.
        if matches!(
            decl.kind,
            BufferKind::Param | BufferKind::ParamGrad | BufferKind::State | BufferKind::SharedState
        ) {
            classes[class].retained = true;
        }
    }
    // Input bindings are written from outside any group (`set_input`),
    // loss buffers are read from outside (`loss()`).
    for name in net
        .inputs
        .iter()
        .map(|i| i.buffer.as_str())
        .chain(net.losses.iter().map(String::as_str))
    {
        if let Some(&c) = class_of.get(name) {
            classes[c].retained = true;
        }
    }

    // Access positions: forward groups first, then backward, matching
    // execution order of one training step.
    for (pos, group) in net.forward.iter().chain(&net.backward).enumerate() {
        for stmt in &group.stmts {
            let writes = stmt.written_buffers();
            for name in stmt.read_buffers() {
                let c = class_of[name.as_str()];
                let info = &mut classes[c];
                if info.first.is_none() && !writes.contains(&name) {
                    info.read_first = true;
                }
                info.first.get_or_insert(pos);
                info.last = pos;
            }
            for name in &writes {
                let c = class_of[name.as_str()];
                let info = &mut classes[c];
                info.first.get_or_insert(pos);
                info.last = pos;
            }
        }
    }

    // Greedy interval packing: arena-eligible classes in first-access
    // order, first slot whose previous occupant died strictly earlier.
    struct Slot {
        backing: usize,
        last: usize,
        occupant: usize,
    }
    let mut backing_len: Vec<usize> = Vec::new();
    let mut backing_arena: Vec<bool> = Vec::new();
    let mut backing_of_class = vec![usize::MAX; classes.len()];
    let mut class_vis = vec![Visibility::Retained; classes.len()];
    let mut zero_on_entry: Vec<(usize, usize, usize)> = Vec::new();

    // Retained and dead classes first (stable backing numbering), arena
    // classes collected for packing.
    let mut arena_classes: Vec<usize> = Vec::new();
    for (c, info) in classes.iter().enumerate() {
        if info.retained || (info.read_first && info.first.is_some()) {
            backing_of_class[c] = backing_len.len();
            backing_len.push(info.total_len);
            backing_arena.push(false);
            class_vis[c] = Visibility::Retained;
        } else if info.first.is_none() {
            // Never touched by any statement: no storage at all.
            backing_of_class[c] = backing_len.len();
            backing_len.push(0);
            backing_arena.push(false);
            class_vis[c] = Visibility::Dead;
        } else {
            arena_classes.push(c);
        }
    }
    arena_classes.sort_by_key(|&c| (classes[c].first.unwrap(), c));

    let mut slots: Vec<Slot> = Vec::new();
    for &c in &arena_classes {
        let first = classes[c].first.unwrap();
        let last = classes[c].last;
        let slot = slots.iter_mut().find(|s| s.last < first);
        let backing = match slot {
            Some(s) => {
                class_vis[s.occupant] = Visibility::Expired;
                s.last = last;
                s.occupant = c;
                backing_len[s.backing] = backing_len[s.backing].max(classes[c].total_len);
                s.backing
            }
            None => {
                let backing = backing_len.len();
                backing_len.push(classes[c].total_len);
                backing_arena.push(true);
                slots.push(Slot {
                    backing,
                    last,
                    occupant: c,
                });
                backing
            }
        };
        backing_of_class[c] = backing;
        class_vis[c] = Visibility::Final;
        zero_on_entry.push((first, backing, classes[c].total_len));
    }

    MemoryLayout {
        backing_of_class,
        backing_len,
        backing_arena,
        class_vis,
        zero_on_entry,
    }
}

/// The executor's whole program: the lowered kernel groups of both phases
/// plus the arena bookkeeping that must run between them. Built once per
/// [`Executor`](crate::Executor); the executor itself is a thin driver
/// over this plan.
#[derive(Debug)]
pub struct ExecutionPlan {
    pub(crate) lowered: Plan,
    /// Per forward group: `(backing, elements)` fills before the group.
    pub(crate) zero_fwd: Vec<Vec<(usize, usize)>>,
    /// Per backward group: `(backing, elements)` fills before the group.
    pub(crate) zero_bwd: Vec<Vec<(usize, usize)>>,
    arena: bool,
}

impl ExecutionPlan {
    pub(crate) fn new(lowered: Plan, layout: Option<&MemoryLayout>) -> Self {
        let n_fwd = lowered.forward.len();
        let n_bwd = lowered.backward.len();
        let mut zero_fwd = vec![Vec::new(); n_fwd];
        let mut zero_bwd = vec![Vec::new(); n_bwd];
        if let Some(layout) = layout {
            for &(pos, backing, len) in &layout.zero_on_entry {
                if pos < n_fwd {
                    zero_fwd[pos].push((backing, len));
                } else {
                    zero_bwd[pos - n_fwd].push((backing, len));
                }
            }
        }
        ExecutionPlan {
            lowered,
            zero_fwd,
            zero_bwd,
            arena: layout.is_some(),
        }
    }

    pub(crate) fn groups(&self, backward: bool) -> &[CGroup] {
        if backward {
            &self.lowered.backward
        } else {
            &self.lowered.forward
        }
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.lowered.n_slots
    }

    pub(crate) fn zeroes(&self, backward: bool) -> &[Vec<(usize, usize)>] {
        if backward {
            &self.zero_bwd
        } else {
            &self.zero_fwd
        }
    }

    /// Whether this plan packs buffers into a liveness arena.
    pub fn arena(&self) -> bool {
        self.arena
    }

    /// Number of lowered forward groups.
    pub fn forward_groups(&self) -> usize {
        self.lowered.forward.len()
    }

    /// Number of lowered backward groups.
    pub fn backward_groups(&self) -> usize {
        self.lowered.backward.len()
    }

    /// Groups (both phases) whose compiled body was reused from an
    /// earlier unrolled time step instead of being re-lowered — the
    /// lowering-side effect of the compiler's step-share pass.
    pub fn step_groups_reused(&self) -> usize {
        self.lowered.step_groups_reused
    }
}
