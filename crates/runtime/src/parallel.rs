//! Intra-node data-parallel training with synchronized or *lossy*
//! gradient accumulation (the paper's Section 3.1 / Project Adam mode and
//! the Figure-20 experiment).
//!
//! Each worker owns a full network replica processing a shard of the
//! global batch. After backward, worker gradients are combined into the
//! master copy either
//!
//! * **synchronized** — an exact sequential sum ("a normal synchronized
//!   reduction incurring a small performance overhead"), or
//! * **lossy** — every worker thread races read-modify-write updates into
//!   the shared master gradients through relaxed atomics, so concurrent
//!   updates can be lost, exactly the unsynchronized in-place updates the
//!   paper enables for `∇`-named fields.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

use latte_core::CompiledNet;

use crate::data::Batch;
use crate::error::RuntimeError;
use crate::exec::Executor;
use crate::pool::WorkerPool;

/// How worker gradients combine into the master copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradSync {
    /// Exact sequential summation.
    Synchronized,
    /// Racy relaxed-atomic accumulation with possible lost updates.
    Lossy,
}

/// Configuration of a [`DataParallelTrainer`].
#[derive(Debug, Clone, Copy)]
pub struct DataParallelConfig {
    /// Number of worker replicas.
    pub workers: usize,
    /// Gradient-combination mode.
    pub sync: GradSync,
    /// Learning rate of the built-in SGD update on the master weights.
    pub lr: f32,
    /// Momentum of the built-in SGD update.
    pub momentum: f32,
}

/// Trains replicas of one network over shards of a global batch.
pub struct DataParallelTrainer {
    cfg: DataParallelConfig,
    workers: Vec<Executor>,
    /// The persistent replica-driving team: one slot per replica, created
    /// once here and reused by every [`DataParallelTrainer::step`].
    pool: WorkerPool,
    /// Master parameter values, one vector per parameter binding.
    master: Vec<Vec<f32>>,
    velocity: Vec<Vec<f32>>,
    param_values: Vec<String>,
    param_grads: Vec<String>,
    lr_mults: Vec<f32>,
}

impl std::fmt::Debug for DataParallelTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataParallelTrainer")
            .field("workers", &self.workers.len())
            .field("sync", &self.cfg.sync)
            .finish_non_exhaustive()
    }
}

impl DataParallelTrainer {
    /// Builds `cfg.workers` replicas; `build` must return freshly
    /// compiled copies of the same network (the per-worker batch is the
    /// compiled batch size).
    ///
    /// # Errors
    ///
    /// Propagates executor-construction failures.
    pub fn new(
        build: impl Fn() -> CompiledNet,
        cfg: DataParallelConfig,
    ) -> Result<Self, RuntimeError> {
        assert!(cfg.workers >= 1, "need at least one worker");
        let workers: Vec<Executor> = (0..cfg.workers)
            .map(|_| Executor::new(build()))
            .collect::<Result<_, _>>()?;
        let bindings = workers[0].params().to_vec();
        let mut master = Vec::with_capacity(bindings.len());
        let mut velocity = Vec::with_capacity(bindings.len());
        let mut param_values = Vec::new();
        let mut param_grads = Vec::new();
        let mut lr_mults = Vec::new();
        for b in &bindings {
            let v = workers[0].read_buffer(&b.value)?;
            velocity.push(vec![0.0; v.len()]);
            master.push(v);
            param_values.push(b.value.clone());
            param_grads.push(b.grad.clone());
            lr_mults.push(b.lr_mult);
        }
        Ok(DataParallelTrainer {
            pool: WorkerPool::new(cfg.workers),
            cfg,
            workers,
            master,
            velocity,
            param_values,
            param_grads,
            lr_mults,
        })
    }

    /// The per-worker batch size.
    pub fn worker_batch(&self) -> usize {
        self.workers[0].batch()
    }

    /// The number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs one training step: broadcast master weights, forward/backward
    /// every worker on its shard (in parallel threads), combine gradients
    /// per the configured mode, and apply the SGD update to the master.
    /// Returns the mean worker loss.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Worker`] naming the failing worker when a shard's
    /// inputs do not match the network or a worker thread panics. A
    /// genuine NaN loss is *not* an error here — it flows through as the
    /// (NaN) mean loss for the caller's health monitor to judge.
    ///
    /// # Panics
    ///
    /// Panics when `shards.len()` differs from the worker count.
    pub fn step(&mut self, shards: &[Batch]) -> Result<f32, RuntimeError> {
        assert_eq!(shards.len(), self.workers.len(), "one shard per worker");
        // Broadcast.
        for w in &mut self.workers {
            for (name, values) in self.param_values.iter().zip(&self.master) {
                w.write_buffer(name, values)?;
            }
        }
        // Parallel forward/backward on the persistent pool: team worker
        // `tid` drives replicas tid, tid+T, … (static interleave). Each
        // replica's result slot is written only by its owner; panics are
        // caught *inside* the job so they surface as structured
        // per-worker results instead of poisoning the team.
        let n = self.workers.len();
        let nt = self.pool.threads();
        let mut results: Vec<Option<Result<f32, RuntimeError>>> = (0..n).map(|_| None).collect();
        {
            struct StepJob<'a> {
                workers: *mut Executor,
                results: *mut Option<Result<f32, RuntimeError>>,
                shards: &'a [Batch],
                n: usize,
                nt: usize,
            }
            // SAFETY: replica i and result slot i are touched only by team
            // worker i % nt — accesses are disjoint per worker.
            unsafe impl Sync for StepJob<'_> {}
            let job = StepJob {
                workers: self.workers.as_mut_ptr(),
                results: results.as_mut_ptr(),
                shards,
                n,
                nt,
            };
            self.pool.run(&|tid, _ctx| {
                let j = &job;
                let mut i = tid;
                while i < j.n {
                    // SAFETY: see StepJob — slot i is exclusively ours.
                    let w = unsafe { &mut *j.workers.add(i) };
                    let shard = &j.shards[i];
                    let res = catch_unwind(AssertUnwindSafe(|| -> Result<f32, RuntimeError> {
                        for (ensemble, values) in shard {
                            w.set_input(ensemble, values)?;
                        }
                        w.forward();
                        let loss = w.loss();
                        w.backward();
                        Ok(loss)
                    }))
                    .unwrap_or_else(|p| {
                        Err(RuntimeError::Interrupted {
                            detail: format!(
                                "worker thread panicked: {}",
                                crate::error::panic_message(p.as_ref())
                            ),
                        })
                    });
                    // SAFETY: see StepJob — slot i is exclusively ours.
                    unsafe { *j.results.add(i) = Some(res) };
                    i += j.nt;
                }
            });
        }
        let mut losses = Vec::with_capacity(results.len());
        for (worker, result) in results.into_iter().enumerate() {
            match result.expect("every replica slot is filled by its owner") {
                Ok(loss) => losses.push(loss),
                Err(e) => {
                    return Err(RuntimeError::Worker { worker, source: Box::new(e) });
                }
            }
        }

        // Gradient combination.
        let n_workers = self.workers.len() as f32;
        let mut combined: Vec<Vec<f32>> = self
            .master
            .iter()
            .map(|m| vec![0.0; m.len()])
            .collect();
        match self.cfg.sync {
            GradSync::Synchronized => {
                for w in &self.workers {
                    for (name, acc) in self.param_grads.iter().zip(combined.iter_mut()) {
                        let g = w.read_buffer(name)?;
                        for (a, x) in acc.iter_mut().zip(&g) {
                            *a += x;
                        }
                    }
                }
            }
            GradSync::Lossy => {
                // Every worker thread races relaxed read-modify-write
                // updates into the shared accumulators.
                let worker_grads: Vec<Vec<Vec<f32>>> = self
                    .workers
                    .iter()
                    .map(|w| {
                        self.param_grads
                            .iter()
                            .map(|name| w.read_buffer(name))
                            .collect::<Result<_, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                let views: Vec<&[AtomicU32]> =
                    combined.iter_mut().map(|c| atomic_view(c)).collect();
                let nt = self.pool.threads();
                self.pool.run(&|tid, _ctx| {
                    let mut i = tid;
                    while i < worker_grads.len() {
                        for (g, view) in worker_grads[i].iter().zip(views.iter()) {
                            for (x, cell) in g.iter().zip(view.iter()) {
                                // Non-atomic read-modify-write through
                                // atomic cells: lost updates possible.
                                let cur = f32::from_bits(cell.load(Ordering::Relaxed));
                                cell.store((cur + x).to_bits(), Ordering::Relaxed);
                            }
                        }
                        i += nt;
                    }
                });
            }
        }

        // SGD with momentum on the master weights, using the mean worker
        // gradient (each worker's loss is already batch-normalized).
        let lr = self.cfg.lr;
        let mom = self.cfg.momentum;
        for (((m, g), vel), &lr_mult) in self
            .master
            .iter_mut()
            .zip(&combined)
            .zip(self.velocity.iter_mut())
            .zip(&self.lr_mults)
        {
            for ((w, &grad), v) in m.iter_mut().zip(g).zip(vel.iter_mut()) {
                *v = mom * *v - lr * lr_mult * grad / n_workers;
                *w += *v;
            }
        }
        Ok(losses.iter().sum::<f32>() / n_workers)
    }

    /// Classifies items with worker 0 (broadcasting master weights
    /// first), returning top-1 accuracy. `output` is the prediction
    /// buffer (e.g. `"ip2.value"`).
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers/ensembles.
    pub fn accuracy(
        &mut self,
        input_ensemble: &str,
        output: &str,
        items: &[(Vec<f32>, f32)],
    ) -> Result<f32, RuntimeError> {
        for (name, values) in self.param_values.iter().zip(&self.master) {
            self.workers[0].write_buffer(name, values)?;
        }
        let batch = self.workers[0].batch();
        let mut correct = 0usize;
        let mut total = 0usize;
        for chunk in items.chunks(batch) {
            if chunk.len() < batch {
                break;
            }
            let mut inputs = Vec::with_capacity(batch * chunk[0].0.len());
            for (x, _) in chunk {
                inputs.extend_from_slice(x);
            }
            self.workers[0].set_input(input_ensemble, &inputs)?;
            // A label feed keeps loss ensembles well-defined but does not
            // affect the prediction buffer.
            let _ = self.workers[0].set_input("label", &vec![0.0; batch]);
            self.workers[0].forward();
            let out = self.workers[0].read_buffer(output)?;
            let classes = out.len() / batch;
            for (i, (_, label)) in chunk.iter().enumerate() {
                let row = &out[i * classes..(i + 1) * classes];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                if pred == *label as usize {
                    correct += 1;
                }
                total += 1;
            }
        }
        Ok(correct as f32 / total.max(1) as f32)
    }
}

/// Views a float slice as atomic cells. All access during the view's use
/// must go through the atomics (enforced by the exclusive borrow).
fn atomic_view(data: &mut [f32]) -> &[AtomicU32] {
    // SAFETY: f32 and AtomicU32 have identical size and alignment, and the
    // exclusive borrow guarantees no non-atomic access aliases the view.
    unsafe { &*(data as *mut [f32] as *const [AtomicU32]) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_view_roundtrips_bits() {
        let mut data = vec![1.5f32, -2.25];
        {
            let view = atomic_view(&mut data);
            let v = f32::from_bits(view[0].load(Ordering::Relaxed));
            assert_eq!(v, 1.5);
            view[1].store(4.0f32.to_bits(), Ordering::Relaxed);
        }
        assert_eq!(data[1], 4.0);
    }
}
