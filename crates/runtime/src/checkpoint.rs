//! Parameter checkpointing: a minimal self-describing binary format for
//! saving and restoring trained weights.
//!
//! Layout: magic `LATTEwts`, a little-endian u32 entry count, then per
//! entry a u32 name length, the UTF-8 buffer name, a u32 element count,
//! and the raw little-endian f32 data.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::RuntimeError;
use crate::exec::Executor;

const MAGIC: &[u8; 8] = b"LATTEwts";

/// Serializes every learnable parameter of the executor.
///
/// # Errors
///
/// Propagates I/O failures as [`RuntimeError::Malformed`].
pub fn save_params(exec: &Executor, path: impl AsRef<Path>) -> Result<(), RuntimeError> {
    let names: Vec<String> = exec.params().iter().map(|p| p.value.clone()).collect();
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(MAGIC).map_err(io_err)?;
    file.write_all(&(names.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for name in &names {
        let data = exec.read_buffer(name)?;
        file.write_all(&(name.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        file.write_all(name.as_bytes()).map_err(io_err)?;
        file.write_all(&(data.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in &data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&bytes).map_err(io_err)?;
    }
    Ok(())
}

/// Restores parameters saved by [`save_params`] into a (structurally
/// compatible) executor. Buffers present in the file but absent from the
/// executor are an error; executor parameters missing from the file are
/// left untouched.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, or mismatched buffer sizes.
pub fn load_params(exec: &mut Executor, path: impl AsRef<Path>) -> Result<(), RuntimeError> {
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(RuntimeError::Malformed {
            detail: "not a latte checkpoint (bad magic)".to_string(),
        });
    }
    let count = read_u32(&mut file)? as usize;
    for _ in 0..count {
        let name_len = read_u32(&mut file)? as usize;
        let mut name = vec![0u8; name_len];
        file.read_exact(&mut name).map_err(io_err)?;
        let name = String::from_utf8(name).map_err(|_| RuntimeError::Malformed {
            detail: "checkpoint contains a non-UTF-8 buffer name".to_string(),
        })?;
        let len = read_u32(&mut file)? as usize;
        let mut bytes = vec![0u8; len * 4];
        file.read_exact(&mut bytes).map_err(io_err)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        exec.write_buffer(&name, &data)?;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, RuntimeError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn io_err(e: std::io::Error) -> RuntimeError {
    RuntimeError::Malformed {
        detail: format!("checkpoint i/o: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};
    use latte_nn::models::{mlp, ModelConfig};

    fn build() -> Executor {
        let cfg = ModelConfig {
            batch: 2,
            input_size: 6,
            channel_div: 1,
            classes: 3,
            with_loss: true,
            seed: 7,
        };
        Executor::new(compile(&mlp(&cfg, &[4]).net, &OptLevel::full()).unwrap()).unwrap()
    }

    #[test]
    fn save_load_roundtrip_restores_weights() {
        let dir = std::env::temp_dir().join("latte_ckpt_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("w.bin");
        let mut a = build();
        // Perturb, save, rebuild, load, compare.
        let w0 = a.read_buffer("ip1.weights").unwrap();
        let perturbed: Vec<f32> = w0.iter().map(|x| x + 1.5).collect();
        a.write_buffer("ip1.weights", &perturbed).unwrap();
        save_params(&a, &path).unwrap();
        let mut b = build();
        assert_ne!(b.read_buffer("ip1.weights").unwrap(), perturbed);
        load_params(&mut b, &path).unwrap();
        assert_eq!(b.read_buffer("ip1.weights").unwrap(), perturbed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("latte_ckpt_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut e = build();
        assert!(load_params(&mut e, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
