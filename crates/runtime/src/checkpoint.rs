//! Parameter checkpointing: a minimal self-describing binary format for
//! saving and restoring trained weights, hardened for crash-safety.
//!
//! Layout (version 2): magic `LATTEwt2`, a little-endian u32 flags word
//! (bit 0: training metadata present; bit 1: solver state present),
//! optional metadata (epoch u64, global iteration u64,
//! iteration-within-epoch u64, last loss f32), a u32 entry count, then
//! per entry a u32 name length, the UTF-8 buffer name, a u32 element
//! count, and the raw little-endian f32 data; when bit 1 is set, a
//! solver-state section (u32 kind length + UTF-8 kind tag, iteration
//! u64, u32 group count, per group a u32 name length + UTF-8 name, a
//! u32 vector count, and per vector a u32 element count + raw
//! little-endian f32 data); finally a CRC32 (IEEE) of everything after
//! the magic. The solver section trails the weight entries, so readers
//! that only want weights ([`load_checkpoint`]) skip it for free.
//!
//! Writes are **atomic**: the payload is serialized to a sibling
//! temporary file, synced, and `rename`d into place, so a crash
//! mid-write leaves the previous checkpoint intact (at worst a stale
//! `*.tmp` sibling that readers never look at). Reads verify the CRC
//! before any byte is interpreted, so truncated or bit-flipped files are
//! rejected with a clear error instead of restoring garbage weights.

use std::path::Path;

use crate::error::RuntimeError;
use crate::exec::Executor;
use crate::solver::SolverState;

const MAGIC: &[u8; 8] = b"LATTEwt2";
const MAGIC_V1: &[u8; 8] = b"LATTEwts";
const FLAG_HAS_META: u32 = 1;
const FLAG_HAS_SOLVER: u32 = 2;

/// Training-progress metadata stored alongside the weights, used by the
/// supervisor to resume mid-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Epoch the checkpoint was taken in.
    pub epoch: u64,
    /// Global iteration count at the checkpoint.
    pub iteration: u64,
    /// Iterations completed within the current epoch.
    pub epoch_iter: u64,
    /// Training loss at the checkpointed iteration.
    pub loss: f32,
}

/// CRC32 (IEEE 802.3, reflected) — the integrity check appended to every
/// checkpoint.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serializes every learnable parameter of the executor (no training
/// metadata). See [`save_checkpoint`].
///
/// # Errors
///
/// Propagates I/O failures as [`RuntimeError::Io`].
pub fn save_params(exec: &Executor, path: impl AsRef<Path>) -> Result<(), RuntimeError> {
    save_checkpoint(exec, None, path)
}

/// Serializes every learnable parameter, plus optional training
/// metadata, atomically: the bytes land in a sibling `*.tmp` file that
/// is synced and renamed over `path`, and a CRC32 trailer lets
/// [`load_checkpoint`] verify integrity.
///
/// # Errors
///
/// Propagates I/O failures as [`RuntimeError::Io`] and unreadable
/// parameter buffers as their underlying error.
pub fn save_checkpoint(
    exec: &Executor,
    meta: Option<&CheckpointMeta>,
    path: impl AsRef<Path>,
) -> Result<(), RuntimeError> {
    save_checkpoint_full(exec, meta, None, path)
}

/// Serializes parameters, optional training metadata, and optional
/// solver state (momentum/accumulator buffers from
/// [`crate::solver::Solver::export_state`]) in one atomic checkpoint.
///
/// With the solver state restored via [`load_checkpoint_full`] +
/// [`crate::solver::Solver::import_state`], a stateful solver resumes on
/// the *bit-exact* update trajectory it would have followed without the
/// interruption.
///
/// # Errors
///
/// See [`save_checkpoint`].
pub fn save_checkpoint_full(
    exec: &Executor,
    meta: Option<&CheckpointMeta>,
    solver: Option<&SolverState>,
    path: impl AsRef<Path>,
) -> Result<(), RuntimeError> {
    let path = path.as_ref();
    let mut flags = 0u32;
    if meta.is_some() {
        flags |= FLAG_HAS_META;
    }
    if solver.is_some() {
        flags |= FLAG_HAS_SOLVER;
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&flags.to_le_bytes());
    if let Some(m) = meta {
        payload.extend_from_slice(&m.epoch.to_le_bytes());
        payload.extend_from_slice(&m.iteration.to_le_bytes());
        payload.extend_from_slice(&m.epoch_iter.to_le_bytes());
        payload.extend_from_slice(&m.loss.to_le_bytes());
    }
    let names: Vec<String> = exec.params().iter().map(|p| p.value.clone()).collect();
    payload.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in &names {
        let data = exec.read_buffer(name)?;
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
        for v in &data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    if let Some(s) = solver {
        payload.extend_from_slice(&(s.kind.len() as u32).to_le_bytes());
        payload.extend_from_slice(s.kind.as_bytes());
        payload.extend_from_slice(&s.iter.to_le_bytes());
        payload.extend_from_slice(&(s.groups.len() as u32).to_le_bytes());
        for (group, vecs) in &s.groups {
            payload.extend_from_slice(&(group.len() as u32).to_le_bytes());
            payload.extend_from_slice(group.as_bytes());
            payload.extend_from_slice(&(vecs.len() as u32).to_le_bytes());
            for v in vecs {
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    payload.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
    }
    let crc = crc32(&payload);

    let tmp = tmp_path(path);
    let write = |dst: &Path| -> std::io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::File::create(dst)?;
        file.write_all(MAGIC)?;
        file.write_all(&payload)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_all()
    };
    write(&tmp).map_err(|e| RuntimeError::io(format!("writing checkpoint `{}`", tmp.display()), e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        RuntimeError::io(
            format!("committing checkpoint `{}` into place", path.display()),
            e,
        )
    })?;
    Ok(())
}

/// Restores parameters saved by [`save_params`]/[`save_checkpoint`] into
/// a (structurally compatible) executor. See [`load_checkpoint`].
///
/// # Errors
///
/// Fails on I/O errors, bad magic, checksum mismatches, or mismatched
/// buffer sizes.
pub fn load_params(exec: &mut Executor, path: impl AsRef<Path>) -> Result<(), RuntimeError> {
    load_checkpoint(exec, path).map(|_| ())
}

/// Restores parameters and returns the training metadata, when present.
/// The CRC32 trailer is verified before any byte of the payload is
/// interpreted, so truncated or corrupted files are rejected whole.
/// Buffers present in the file but absent from the executor are an
/// error; executor parameters missing from the file are left untouched.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, checksum mismatches, or mismatched
/// buffer sizes.
pub fn load_checkpoint(
    exec: &mut Executor,
    path: impl AsRef<Path>,
) -> Result<Option<CheckpointMeta>, RuntimeError> {
    load_checkpoint_full(exec, path).map(|(meta, _)| meta)
}

/// Restores parameters and returns both the training metadata and the
/// solver state, when present. Pass the state to
/// [`crate::solver::Solver::import_state`] to resume a stateful solver
/// bit-exactly.
///
/// # Errors
///
/// See [`load_checkpoint`].
pub fn load_checkpoint_full(
    exec: &mut Executor,
    path: impl AsRef<Path>,
) -> Result<(Option<CheckpointMeta>, Option<SolverState>), RuntimeError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| RuntimeError::io(format!("reading checkpoint `{}`", path.display()), e))?;
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(RuntimeError::Malformed {
            detail: format!(
                "checkpoint `{}` is truncated ({} bytes — too short for header and checksum)",
                path.display(),
                bytes.len()
            ),
        });
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        let detail = if magic == MAGIC_V1 {
            format!(
                "checkpoint `{}` uses the legacy un-checksummed v1 format; re-save it with this version",
                path.display()
            )
        } else {
            format!("`{}` is not a latte checkpoint (bad magic)", path.display())
        };
        return Err(RuntimeError::Malformed { detail });
    }
    let (payload, crc_bytes) = rest.split_at(rest.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(RuntimeError::Malformed {
            detail: format!(
                "checkpoint `{}` failed its integrity check \
                 (stored crc32 {stored:#010x}, computed {computed:#010x}); \
                 the file is truncated or corrupted",
                path.display()
            ),
        });
    }

    let mut cur = Cursor::new(payload);
    let flags = cur.u32()?;
    let meta = if flags & FLAG_HAS_META != 0 {
        Some(CheckpointMeta {
            epoch: cur.u64()?,
            iteration: cur.u64()?,
            epoch_iter: cur.u64()?,
            loss: cur.f32()?,
        })
    } else {
        None
    };
    let count = cur.u32()? as usize;
    for _ in 0..count {
        let name_len = cur.u32()? as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec()).map_err(|_| {
            RuntimeError::Malformed {
                detail: "checkpoint contains a non-UTF-8 buffer name".to_string(),
            }
        })?;
        let len = cur.u32()? as usize;
        let raw = cur.take(len * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        exec.write_buffer(&name, &data)?;
    }
    let solver = if flags & FLAG_HAS_SOLVER != 0 {
        let kind_len = cur.u32()? as usize;
        let kind = String::from_utf8(cur.take(kind_len)?.to_vec()).map_err(|_| {
            RuntimeError::Malformed {
                detail: "checkpoint contains a non-UTF-8 solver kind".to_string(),
            }
        })?;
        let iter = cur.u64()?;
        let group_count = cur.u32()? as usize;
        let mut groups = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            let name_len = cur.u32()? as usize;
            let name = String::from_utf8(cur.take(name_len)?.to_vec()).map_err(|_| {
                RuntimeError::Malformed {
                    detail: "checkpoint contains a non-UTF-8 solver group name".to_string(),
                }
            })?;
            let vec_count = cur.u32()? as usize;
            let mut vecs = Vec::with_capacity(vec_count);
            for _ in 0..vec_count {
                let len = cur.u32()? as usize;
                let raw = cur.take(len * 4)?;
                vecs.push(
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                );
            }
            groups.push((name, vecs));
        }
        Some(SolverState { kind, iter, groups })
    } else {
        None
    };
    Ok((meta, solver))
}

/// Sibling temporary path used by the atomic write. Exposed for tests
/// that simulate a crash mid-write.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Bounds-checked little-endian reader over the verified payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.pos + n > self.data.len() {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "checkpoint payload ends early (wanted {n} bytes at offset {}, have {})",
                    self.pos,
                    self.data.len() - self.pos
                ),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RuntimeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, RuntimeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};
    use latte_nn::models::{mlp, ModelConfig};

    fn build() -> Executor {
        let cfg = ModelConfig {
            batch: 2,
            input_size: 6,
            channel_div: 1,
            classes: 3,
            with_loss: true,
            seed: 7,
        };
        Executor::new(compile(&mlp(&cfg, &[4]).net, &OptLevel::full()).unwrap()).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("latte_ckpt_{tag}"));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_restores_weights() {
        let path = temp_dir("roundtrip").join("w.bin");
        let mut a = build();
        // Perturb, save, rebuild, load, compare.
        let w0 = a.read_buffer("ip1.weights").unwrap();
        let perturbed: Vec<f32> = w0.iter().map(|x| x + 1.5).collect();
        a.write_buffer("ip1.weights", &perturbed).unwrap();
        save_params(&a, &path).unwrap();
        let mut b = build();
        assert_ne!(b.read_buffer("ip1.weights").unwrap(), perturbed);
        load_params(&mut b, &path).unwrap();
        assert_eq!(b.read_buffer("ip1.weights").unwrap(), perturbed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn meta_roundtrips() {
        let path = temp_dir("meta").join("m.bin");
        let exec = build();
        let meta = CheckpointMeta {
            epoch: 3,
            iteration: 123,
            epoch_iter: 7,
            loss: 0.625,
        };
        save_checkpoint(&exec, Some(&meta), &path).unwrap();
        let mut b = build();
        let restored = load_checkpoint(&mut b, &path).unwrap();
        assert_eq!(restored, Some(meta));
        // Plain param saves restore no metadata.
        save_params(&exec, &path).unwrap();
        assert_eq!(load_checkpoint(&mut b, &path).unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_dir("magic").join("junk.bin");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let mut e = build();
        let err = load_params(&mut e, &path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_magic_gets_specific_error() {
        let path = temp_dir("v1").join("old.bin");
        let mut bytes = b"LATTEwts".to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &bytes).unwrap();
        let mut e = build();
        let err = load_params(&mut e, &path).unwrap_err();
        assert!(err.to_string().contains("legacy"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_rejected() {
        let path = temp_dir("trunc").join("w.bin");
        let exec = build();
        save_params(&exec, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [5usize, 13, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut e = build();
            let err = load_params(&mut e, &path).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("integrity"),
                "cut at {cut}: {msg}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_byte_fails_integrity_check() {
        let path = temp_dir("flip").join("w.bin");
        let exec = build();
        save_params(&exec, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one payload byte and separately one CRC byte.
        for idx in [good.len() / 2, good.len() - 2] {
            let mut bad = good.clone();
            bad[idx] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let mut e = build();
            let err = load_params(&mut e, &path).unwrap_err();
            assert!(err.to_string().contains("integrity"), "byte {idx}: {err}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_write_leaves_previous_checkpoint_valid() {
        let dir = temp_dir("crash");
        let path = dir.join("w.bin");
        let mut exec = build();
        let w0 = exec.read_buffer("ip1.weights").unwrap();
        save_params(&exec, &path).unwrap();

        // Simulate dying mid-write of the *next* checkpoint: a partial
        // temp file appears next to the good checkpoint and is never
        // renamed into place.
        let perturbed: Vec<f32> = w0.iter().map(|x| x + 9.0).collect();
        exec.write_buffer("ip1.weights", &perturbed).unwrap();
        std::fs::write(tmp_path(&path), b"LATTEwt2 partial garbage").unwrap();

        // The good checkpoint still loads the original weights.
        let mut fresh = build();
        load_params(&mut fresh, &path).unwrap();
        assert_eq!(fresh.read_buffer("ip1.weights").unwrap(), w0);

        // A subsequent successful save replaces the temp file and the
        // checkpoint atomically.
        save_params(&exec, &path).unwrap();
        assert!(!tmp_path(&path).exists(), "temp file must be renamed away");
        let mut newer = build();
        load_params(&mut newer, &path).unwrap();
        assert_eq!(newer.read_buffer("ip1.weights").unwrap(), perturbed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error_with_source() {
        use std::error::Error;
        let mut e = build();
        let err = load_params(&mut e, temp_dir("missing").join("nope.bin")).unwrap_err();
        match &err {
            RuntimeError::Io { source, .. } => {
                assert!(source.is_some());
                assert!(err.source().is_some(), "source chain must be exposed");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn solver_state_roundtrips() {
        let path = temp_dir("solver").join("s.bin");
        let exec = build();
        let state = SolverState {
            kind: "sgd".into(),
            iter: 42,
            groups: vec![("velocity".into(), vec![vec![0.5, -0.25], vec![], vec![1.0]])],
        };
        let meta = CheckpointMeta {
            epoch: 1,
            iteration: 42,
            epoch_iter: 2,
            loss: 0.125,
        };
        save_checkpoint_full(&exec, Some(&meta), Some(&state), &path).unwrap();

        let mut b = build();
        let (restored_meta, restored_state) = load_checkpoint_full(&mut b, &path).unwrap();
        assert_eq!(restored_meta, Some(meta));
        assert_eq!(restored_state, Some(state));

        // Weight-only readers skip the trailing solver section.
        let mut c = build();
        assert_eq!(load_checkpoint(&mut c, &path).unwrap(), Some(meta));

        // A checkpoint without solver state restores None.
        save_checkpoint(&exec, Some(&meta), &path).unwrap();
        let (_, none_state) = load_checkpoint_full(&mut b, &path).unwrap();
        assert_eq!(none_state, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
