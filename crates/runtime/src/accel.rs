//! Intra-node heterogeneous scheduling with simulated coprocessors
//! (the paper's Section 6.1 and Figure 17).
//!
//! No Xeon Phi exists in this environment, so the coprocessor is a
//! *device model*: a relative compute speed plus a PCIe-like transfer
//! channel (latency + bandwidth). The scheduler itself — input double
//! buffering, host/accelerator batch chunking, and the one-time linear
//! search for the chunk size that balances accelerator and host time —
//! runs unmodified against the model, which is the mechanism Figure 17
//! evaluates ("each Xeon Phi card adds an additional 50% throughput",
//! limited by transferring gradients back per chunk).

/// A modeled accelerator card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorSpec {
    /// Compute throughput relative to the host (1.0 = same speed).
    pub relative_speed: f64,
    /// Interconnect bandwidth in bytes per second (PCIe-like).
    pub bandwidth: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

impl AcceleratorSpec {
    /// A Xeon-Phi-like card, calibrated so the tuned steady state
    /// reproduces the paper's observed behaviour ("each Xeon Phi card
    /// adds an additional 50% throughput", limited by returning gradients
    /// per chunk): noticeably below host throughput on this workload,
    /// PCIe-2-era interconnect.
    pub fn phi_like() -> Self {
        AcceleratorSpec {
            relative_speed: 0.55,
            bandwidth: 6e9,
            latency: 20e-6,
        }
    }

    /// Time to move `bytes` across the interconnect.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// Workload description for the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadModel {
    /// Host seconds to process one input item (forward + backward).
    pub host_seconds_per_item: f64,
    /// Bytes of input data per item (hidden by double buffering after
    /// the first iteration).
    pub input_bytes_per_item: f64,
    /// Bytes of gradients returned per chunk (model-sized; *not*
    /// overlapped — the paper names this the throughput limiter).
    pub gradient_bytes: f64,
}

/// The host + accelerators chunk scheduler.
#[derive(Debug, Clone)]
pub struct HeterogeneousScheduler {
    workload: WorkloadModel,
    accels: Vec<AcceleratorSpec>,
    chunks: Vec<usize>,
}

/// Initial accelerator chunk size of the linear search (the paper begins
/// at 16).
const INITIAL_CHUNK: usize = 16;

impl HeterogeneousScheduler {
    /// Creates a scheduler; chunk sizes start at the paper's initial
    /// value and are tuned by [`HeterogeneousScheduler::tune`].
    pub fn new(workload: WorkloadModel, accels: Vec<AcceleratorSpec>) -> Self {
        let chunks = vec![INITIAL_CHUNK; accels.len()];
        HeterogeneousScheduler {
            workload,
            accels,
            chunks,
        }
    }

    /// The current per-accelerator chunk sizes.
    pub fn chunks(&self) -> &[usize] {
        &self.chunks
    }

    /// Accelerator time to process a chunk and return its gradients.
    fn accel_time(&self, a: &AcceleratorSpec, chunk: usize) -> f64 {
        chunk as f64 * self.workload.host_seconds_per_item / a.relative_speed
            + a.transfer_time(self.workload.gradient_bytes)
    }

    /// Host time for its share of the batch.
    fn host_time(&self, items: usize) -> f64 {
        items as f64 * self.workload.host_seconds_per_item
    }

    /// Steady-state time for one batch with the current chunk split
    /// (input transfers hidden by double buffering).
    pub fn iteration_time(&self, batch: usize) -> f64 {
        let offloaded: usize = self.chunks.iter().sum();
        let host_items = batch.saturating_sub(offloaded);
        let mut t = self.host_time(host_items);
        for (a, &chunk) in self.accels.iter().zip(&self.chunks) {
            t = t.max(self.accel_time(a, chunk.min(batch)));
        }
        t
    }

    /// The cold-start time of the first iteration, which additionally
    /// pays the un-hidden input transfer.
    pub fn first_iteration_time(&self, batch: usize) -> f64 {
        let extra: f64 = self
            .accels
            .iter()
            .zip(&self.chunks)
            .map(|(a, &c)| a.transfer_time(c as f64 * self.workload.input_bytes_per_item))
            .sum();
        self.iteration_time(batch) + extra
    }

    /// The paper's one-time linear search: grow each accelerator's chunk
    /// until its processing time matches the host's share.
    pub fn tune(&mut self, batch: usize) {
        for i in 0..self.accels.len() {
            self.chunks[i] = INITIAL_CHUNK.min(batch);
        }
        loop {
            let offloaded: usize = self.chunks.iter().sum();
            if offloaded >= batch {
                break;
            }
            let host_items = batch - offloaded;
            let host_t = self.host_time(host_items);
            // Grow the accelerator that is furthest below the host time.
            let mut best: Option<(usize, f64)> = None;
            for (i, (a, &chunk)) in self.accels.iter().zip(&self.chunks).enumerate() {
                let t = self.accel_time(a, chunk);
                if t < host_t && best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
            match best {
                Some((i, _)) => self.chunks[i] += 1,
                None => break,
            }
        }
    }

    /// Steady-state throughput (items per second) after tuning.
    pub fn throughput(&mut self, batch: usize) -> f64 {
        self.tune(batch);
        batch as f64 / self.iteration_time(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> WorkloadModel {
        WorkloadModel {
            host_seconds_per_item: 1e-3,
            input_bytes_per_item: 224.0 * 224.0 * 3.0 * 4.0,
            gradient_bytes: 60e6 * 4.0 / 100.0, // scaled model
        }
    }

    #[test]
    fn each_card_adds_meaningful_throughput() {
        let batch = 256;
        let t0 = HeterogeneousScheduler::new(workload(), vec![]).throughput(batch);
        let t1 = HeterogeneousScheduler::new(workload(), vec![AcceleratorSpec::phi_like()])
            .throughput(batch);
        let t2 = HeterogeneousScheduler::new(
            workload(),
            vec![AcceleratorSpec::phi_like(), AcceleratorSpec::phi_like()],
        )
        .throughput(batch);
        assert!(t1 > t0 * 1.2, "one card: {t0} -> {t1}");
        assert!(t2 > t1 * 1.1, "two cards: {t1} -> {t2}");
        // Shape of Figure 17: roughly +50% per card (generous bounds).
        let gain1 = t1 / t0;
        assert!((1.2..2.1).contains(&gain1), "gain1 = {gain1}");
    }

    #[test]
    fn tuning_balances_host_and_accelerator() {
        let mut s = HeterogeneousScheduler::new(workload(), vec![AcceleratorSpec::phi_like()]);
        s.tune(256);
        let chunk = s.chunks()[0];
        assert!(chunk > INITIAL_CHUNK, "search grew the chunk: {chunk}");
        let host_items = 256 - chunk;
        let host_t = s.host_time(host_items);
        let accel_t = s.accel_time(&AcceleratorSpec::phi_like(), chunk);
        let imbalance = (host_t - accel_t).abs() / host_t;
        assert!(imbalance < 0.1, "imbalance {imbalance}");
    }

    #[test]
    fn first_iteration_pays_input_transfer() {
        let mut s = HeterogeneousScheduler::new(workload(), vec![AcceleratorSpec::phi_like()]);
        s.tune(128);
        assert!(s.first_iteration_time(128) > s.iteration_time(128));
    }

    #[test]
    fn zero_accelerators_is_pure_host() {
        let s = HeterogeneousScheduler::new(workload(), vec![]);
        let t = s.iteration_time(100);
        assert!((t - 0.1).abs() < 1e-9);
    }
}
