//! Persistent worker pool: the threaded execution backbone.
//!
//! The paper's generated code runs its collapsed batch×tile loops on
//! OpenMP's *persistent* thread team with `schedule(static, 1)` — threads
//! are created once per process and every parallel region reuses them.
//! This module is that backbone for the Rust runtime: a [`WorkerPool`] is
//! created **once per [`Executor`](crate::Executor)** (or once per
//! [`DataParallelTrainer`](crate::parallel::DataParallelTrainer)) and
//! every parallel group, batched GEMM, and replica step of every
//! iteration broadcasts work to the same long-lived workers. Nothing on
//! the per-iteration path spawns a thread or allocates a scratch buffer.
//!
//! Three kinds of state ride along with the workers:
//!
//! * **Per-worker contexts** ([`WorkerCtx`]) — each worker owns a
//!   [`Gemm`] engine whose packing buffers grow once and are reused, so
//!   engines stop being re-grown when work migrates threads (the old
//!   `thread_local!` arrangement) and need no `RefCell`.
//! * **Lane scratch arenas** — parameter-gradient scratch for the
//!   synchronized reduction, keyed by *lane* (see below), allocated once
//!   and zeroed (never reallocated) per parallel group.
//! * **A global spawn counter** — [`total_threads_spawned`] lets tests
//!   assert that workers are created exactly once per pool.
//!
//! # Determinism: gradient lanes
//!
//! Under the paper's synchronized reduction each batch item's
//! parameter-gradient contribution is accumulated into private scratch
//! and reduced afterwards. Floating-point addition does not reassociate,
//! so *which* contributions share an accumulator — and the order the
//! accumulators are reduced in — must not depend on the thread count, or
//! `threads=4` would (slightly) diverge from `threads=1`. The pool
//! therefore fixes a thread-count-independent structure of
//! [`GRAD_LANES`] **lanes**: item `i` always accumulates into lane
//! `i % lanes`, lanes are distributed statically across however many
//! workers exist (worker `t` owns lanes `t, t+T, ...` — the
//! `schedule(static, 1)` shape), and the final reduction folds lanes into
//! the master buffer in lane order on the caller. Every sum therefore has
//! the same association for any thread count, making threaded execution
//! **bit-identical** to `threads=1`.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use latte_tensor::gemm::{BlockingError, Gemm, GemmPool};

/// Number of parameter-gradient accumulation lanes.
///
/// Fixed independently of the worker count so the reduction tree — and
/// therefore every floating-point result — is identical for any
/// `threads`. Also the useful upper bound on workers for groups that
/// accumulate parameter gradients.
pub const GRAD_LANES: usize = 8;

/// OS threads spawned by all pools over the process lifetime.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total worker OS threads ever spawned by [`WorkerPool`]s in this
/// process. A pool of `t` threads spawns exactly `t - 1` (the caller is
/// worker 0); the count never moves during steady-state execution — the
/// regression test for "no per-iteration thread spawning".
pub fn total_threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// Mutable per-worker state, exclusive to one worker during a job.
#[derive(Debug)]
pub struct WorkerCtx {
    /// The worker's GEMM engine. Packing buffers grow to the largest
    /// shape seen and are reused across iterations.
    pub gemm: Gemm,
}

/// Type-erased job pointer broadcast to workers. The pointed-to closure
/// outlives the broadcast because [`WorkerPool::run`] does not return
/// until every worker finished it.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize, &mut WorkerCtx) + Sync + 'static));
// SAFETY: the closure is Sync and the pointer is only dereferenced while
// `run` keeps the referent alive.
unsafe impl Send for JobPtr {}

struct State {
    /// Bumped per broadcast; workers run a job exactly once per bump.
    seq: u64,
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// Panic messages collected from workers for the current job.
    panics: Vec<String>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

/// One worker's context slot. Each slot is accessed mutably only by its
/// owning worker (the caller for slot 0) while a job runs.
struct CtxCell(UnsafeCell<WorkerCtx>);
// SAFETY: the job protocol hands each slot to exactly one thread.
unsafe impl Sync for CtxCell {}

/// A persistent team of worker threads with per-worker GEMM engines and
/// pool-owned gradient-lane scratch. See the module docs for the
/// determinism and lifecycle story.
///
/// Pools are shareable (`Arc<WorkerPool>`): a serving replica keeps one
/// pool and hands it to every warm per-batch-shape
/// [`Executor`](crate::Executor) it instantiates, so plan-cache hits
/// never spawn threads. Sharing does not relax the exclusive-run
/// protocol — at most one executor may drive a given pool at a time.
pub struct WorkerPool {
    shared: Arc<Shared>,
    ctxs: Arc<Vec<CtxCell>>,
    /// Gradient-lane arenas, one `Vec<f32>` per lane. Behind a mutex so
    /// `lane_scratch` works through a shared reference; the mutex guards
    /// arena *growth* only — workers touch lane contents through raw
    /// spans under the exclusive-run protocol.
    lanes: Mutex<Vec<Vec<f32>>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool driving `threads` workers (clamped to at least 1).
    ///
    /// Worker 0 is the calling thread; `threads - 1` OS threads are
    /// spawned *now* and live until the pool drops — no further spawning
    /// ever happens. A single-threaded pool spawns nothing and
    /// [`WorkerPool::run`] degenerates to a plain call.
    pub fn new(threads: usize) -> Self {
        Self::with_engine(threads, Gemm::new())
    }

    /// [`WorkerPool::new`] with every worker's GEMM engine configured to
    /// the given `(kc, nc, mc)` blocking (`None` = the default). The
    /// [`GemmPool`] contract requires all engines to share one blocking,
    /// so the pool clones a single prototype into every slot.
    ///
    /// # Errors
    ///
    /// Returns the [`BlockingError`] for zero or panel-unaligned blocks.
    pub fn with_blocking(
        threads: usize,
        blocking: Option<(usize, usize, usize)>,
    ) -> Result<Self, BlockingError> {
        Ok(Self::with_engine(threads, proto_engine(blocking)?))
    }

    /// Replaces every worker's GEMM engine with one of the given blocking
    /// (`None` = the default), broadcast through the normal job protocol
    /// so each slot is rewritten by its owning worker. The autotuner uses
    /// this to sweep blocking candidates on **one** long-lived pool
    /// instead of spawning a fresh team per candidate.
    ///
    /// Packing buffers restart empty and re-grow on first use; steady
    /// state is unaffected once a final blocking is installed.
    ///
    /// # Errors
    ///
    /// Returns the [`BlockingError`] for zero or panel-unaligned blocks;
    /// the pool's engines are untouched on error.
    pub fn reconfigure_gemm(
        &self,
        blocking: Option<(usize, usize, usize)>,
    ) -> Result<(), BlockingError> {
        let proto = proto_engine(blocking)?;
        self.run(&move |_tid, ctx| {
            ctx.gemm = proto.clone();
        });
        Ok(())
    }

    /// The `(kc, nc, mc)` blocking the pool's engines currently share.
    pub fn gemm_blocking(&self) -> (usize, usize, usize) {
        self.with_caller_ctx(|ctx| ctx.gemm.blocking())
    }

    fn with_engine(threads: usize, proto: Gemm) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                seq: 0,
                job: None,
                remaining: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let ctxs: Arc<Vec<CtxCell>> = Arc::new(
            (0..threads)
                .map(|_| CtxCell(UnsafeCell::new(WorkerCtx { gemm: proto.clone() })))
                .collect(),
        );
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for tid in 1..threads {
            let shared = Arc::clone(&shared);
            let ctxs = Arc::clone(&ctxs);
            let handle = std::thread::Builder::new()
                .name(format!("latte-worker-{tid}"))
                .spawn(move || worker_loop(tid, &shared, &ctxs))
                .expect("spawn pool worker");
            THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            handles.push(handle);
        }
        WorkerPool {
            shared,
            ctxs,
            lanes: Mutex::new(Vec::new()),
            handles,
            threads,
        }
    }

    /// The worker count (including the caller as worker 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Broadcasts `job` to every worker and returns when all have
    /// finished. The caller participates as worker 0, so a
    /// single-threaded pool runs the job inline with zero synchronization.
    ///
    /// Jobs partition work by `tid` (static interleaving); each
    /// invocation gets exclusive access to its worker's [`WorkerCtx`].
    /// Runs are exclusive: the pool must not be re-entered from inside a
    /// job (executor and trainer drive it behind `&mut self`, which
    /// guarantees this).
    ///
    /// # Panics
    ///
    /// Re-raises the caller's panic, or panics with the collected
    /// messages when worker threads panicked.
    pub fn run(&self, job: &(dyn Fn(usize, &mut WorkerCtx) + Sync)) {
        if self.threads == 1 {
            // SAFETY: exclusive run (no job in flight), slot 0 is ours.
            let ctx = unsafe { &mut *self.ctxs[0].0.get() };
            job(0, ctx);
            return;
        }
        // SAFETY: erasing the closure's lifetime; `run` blocks until all
        // workers finished the job, so the referent outlives every use.
        let erased: JobPtr = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, &mut WorkerCtx) + Sync),
                JobPtr,
            >(job as *const (dyn Fn(usize, &mut WorkerCtx) + Sync))
        };
        {
            let mut st = self.shared.state.lock().expect("pool state");
            debug_assert!(st.job.is_none(), "pool re-entered while a job is in flight");
            st.job = Some(erased);
            st.seq += 1;
            st.remaining = self.threads - 1;
            st.panics.clear();
        }
        self.shared.work.notify_all();
        // Caller is worker 0. Catch its panic so worker completion is
        // still awaited (the job must not outlive this frame).
        let caller = {
            // SAFETY: slot 0 belongs to the caller during the job.
            let ctx = unsafe { &mut *self.ctxs[0].0.get() };
            catch_unwind(AssertUnwindSafe(|| job(0, ctx)))
        };
        let worker_panics = {
            let mut st = self.shared.state.lock().expect("pool state");
            while st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool done wait");
            }
            st.job = None;
            std::mem::take(&mut st.panics)
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(
            worker_panics.is_empty(),
            "worker pool job panicked: {}",
            worker_panics.join("; ")
        );
    }

    /// Runs `f` with worker 0's context on the calling thread, without
    /// waking the team — the serial path for non-parallel groups, using
    /// the same persistent GEMM engine.
    pub(crate) fn with_caller_ctx<R>(&self, f: impl FnOnce(&mut WorkerCtx) -> R) -> R {
        // SAFETY: no job is in flight (runs are exclusive), so slot 0 is
        // exclusively the caller's.
        let ctx = unsafe { &mut *self.ctxs[0].0.get() };
        f(ctx)
    }

    /// Prepares `lanes` zeroed scratch areas, each holding one buffer per
    /// entry of `sizes`, and returns their raw spans (lane-major). The
    /// backing arenas are pool-owned: they grow monotonically to the
    /// largest request and are *zeroed*, never reallocated, on reuse.
    ///
    /// The returned pointers stay valid until the next `lane_scratch`
    /// call (which may grow — and thereby reallocate — an arena); each
    /// lane's spans must be written by at most one worker at a time (the
    /// lane-ownership schedule guarantees this), and the exclusive-run
    /// protocol forbids a second executor from calling in while the
    /// spans are live.
    pub(crate) fn lane_scratch(&self, lanes: usize, sizes: &[usize]) -> Vec<Vec<(*mut f32, usize)>> {
        let total: usize = sizes.iter().sum();
        let mut arenas = self.lanes.lock().expect("pool lane arenas");
        while arenas.len() < lanes {
            arenas.push(Vec::new());
        }
        let mut out = Vec::with_capacity(lanes);
        for arena in arenas.iter_mut().take(lanes) {
            if arena.len() < total {
                arena.resize(total, 0.0);
            }
            arena[..total].fill(0.0);
            let mut spans = Vec::with_capacity(sizes.len());
            let mut off = 0usize;
            let base = arena.as_mut_ptr();
            for &len in sizes {
                // SAFETY: `off + len <= total <= arena.len()`.
                spans.push((unsafe { base.add(off) }, len));
                off += len;
            }
            out.push(spans);
        }
        out
    }
}

impl GemmPool for WorkerPool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn run_gemm(&self, job: &(dyn Fn(usize, &mut Gemm) + Sync)) {
        self.run(&|tid, ctx| job(tid, &mut ctx.gemm));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builds the prototype engine a pool clones into every worker slot.
fn proto_engine(blocking: Option<(usize, usize, usize)>) -> Result<Gemm, BlockingError> {
    match blocking {
        Some((kc, nc, mc)) => Gemm::with_blocking(kc, nc, mc),
        None => Ok(Gemm::new()),
    }
}

fn worker_loop(tid: usize, shared: &Shared, ctxs: &[CtxCell]) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    if let Some(job) = st.job {
                        last_seq = st.seq;
                        break job;
                    }
                }
                st = shared.work.wait(st).expect("pool work wait");
            }
        };
        // SAFETY: slot `tid` is exclusively this worker's during the job;
        // the job pointer is kept alive by the broadcasting `run` frame.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let ctx = unsafe { &mut *ctxs[tid].0.get() };
            unsafe { (*job.0)(tid, ctx) }
        }));
        let mut st = shared.state.lock().expect("pool state");
        if let Err(payload) = result {
            st.panics.push(crate::error::panic_message(payload.as_ref()).to_string());
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_invokes_every_worker_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..10 {
            pool.run(&|tid, _ctx| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (tid, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 10, "worker {tid}");
        }
    }

    #[test]
    fn workers_are_spawned_once_per_pool() {
        let before = total_threads_spawned();
        let pool = WorkerPool::new(3);
        assert_eq!(total_threads_spawned(), before + 2);
        for _ in 0..50 {
            pool.run(&|_tid, _ctx| {});
        }
        assert_eq!(
            total_threads_spawned(),
            before + 2,
            "steady-state runs must not spawn threads"
        );
    }

    #[test]
    fn single_threaded_pool_spawns_nothing_and_runs_inline() {
        let before = total_threads_spawned();
        let pool = WorkerPool::new(1);
        assert_eq!(total_threads_spawned(), before);
        let caller = std::thread::current().id();
        pool.run(&|tid, _ctx| {
            assert_eq!(tid, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn worker_panic_propagates_with_message() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|tid, _ctx| {
                if tid == 1 {
                    panic!("lane blew up");
                }
            });
        }));
        let err = result.expect_err("worker panic must propagate");
        let msg = crate::error::panic_message(err.as_ref());
        assert!(msg.contains("lane blew up"), "got: {msg}");
        // The pool survives a panicked job.
        pool.run(&|_tid, _ctx| {});
    }

    #[test]
    fn lane_scratch_is_zeroed_and_reused() {
        let pool = WorkerPool::new(1);
        let spans = pool.lane_scratch(2, &[3, 5]);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].len(), 2);
        // Dirty lane 0's first buffer.
        let p0 = spans[0][0].0;
        unsafe { *p0 = 42.0 };
        let again = pool.lane_scratch(2, &[3, 5]);
        // Same backing storage (no reallocation), content re-zeroed.
        assert_eq!(again[0][0].0, spans[0][0].0);
        assert_eq!(unsafe { *again[0][0].0 }, 0.0);
    }

    #[test]
    fn reconfigure_gemm_replaces_every_engine_without_spawning() {
        let before = total_threads_spawned();
        let pool = WorkerPool::with_blocking(3, Some((128, 256, 32))).expect("valid blocking");
        assert_eq!(pool.gemm_blocking(), (128, 256, 32));
        pool.run(&|_tid, ctx| assert_eq!(ctx.gemm.blocking(), (128, 256, 32)));
        pool.reconfigure_gemm(Some((256, 512, 64))).expect("valid blocking");
        pool.run(&|_tid, ctx| assert_eq!(ctx.gemm.blocking(), (256, 512, 64)));
        // Invalid blocking is rejected and leaves the engines untouched.
        assert!(pool.reconfigure_gemm(Some((256, 511, 64))).is_err());
        assert_eq!(pool.gemm_blocking(), (256, 512, 64));
        pool.reconfigure_gemm(None).expect("default blocking");
        assert_eq!(pool.gemm_blocking(), Gemm::new().blocking());
        assert_eq!(total_threads_spawned(), before + 2, "reconfigure must not spawn");
    }

    #[test]
    fn gemm_pool_runs_with_per_worker_engines() {
        use latte_tensor::gemm::{Gemm, Transpose};
        let pool = WorkerPool::new(3);
        let (m, n, k) = (70, 130, 40);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut c_par = vec![0.0f32; m * n];
        Gemm::compute_parallel(&pool, Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c_par);
        let mut c_ser = vec![0.0f32; m * n];
        Gemm::new().compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c_ser);
        for (i, (x, y)) in c_ser.iter().zip(&c_par).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "elem {i}");
        }
    }
}
