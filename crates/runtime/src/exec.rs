//! The execution engine: runs lowered kernel plans over the buffer store.
//!
//! Execution is batch-item-major: each group's per-item segments run for
//! every batch item (in parallel across a worker pool when the program was
//! compiled with parallelization — the paper's collapsed batch×tile loop
//! with a static interleaved schedule), while hoisted whole-batch GEMMs
//! and whole-batch extern kernels run once.
//!
//! Parameter gradients are shared across batch items; for parallel
//! groups each of [`GRAD_LANES`] fixed *lanes* accumulates a private
//! scratch copy which is reduced afterwards in lane order — the paper's
//! synchronized-reduction mode ("a small performance overhead during
//! back-propagation"), structured so results are **bit-identical for any
//! thread count** (see [`crate::pool`]). The *lossy* mode of Section 3.1
//! is exercised at the data-parallel-training level in
//! [`crate::parallel`].
//!
//! All threaded work — parallel per-item groups and partitioned batched
//! GEMMs — runs on one persistent [`WorkerPool`] created with the
//! executor; nothing on the per-iteration path spawns threads or
//! allocates scratch.
//!
//! # Safety architecture
//!
//! Kernels run over raw per-item buffer views ([`RawBuf`]) derived from a
//! single `*mut Vec<f32>` base pointer obtained from `&mut BufferStore`.
//! Soundness rests on three invariants, each asserted where established:
//! batched buffers are written only through the current item's disjoint
//! slice; unbatched parameter buffers are only read; unbatched gradient
//! buffers are either executed single-threaded or redirected to
//! thread-private scratch. Lowering additionally proves every compiled
//! index in-bounds for all loop values, so the hot path uses
//! `debug_assert`-checked accesses.

use std::sync::Arc;

use latte_core::{CompiledNet, ParamBinding};
use latte_ir::{AssignOp, BinOp, UnaryOp};
use latte_tensor::gemm::{Gemm, Transpose};

use crate::error::RuntimeError;
use crate::health::{scan_slice, BufferAnomaly, SentinelMode};
use crate::lower::{
    BatchedGemm, CCopy, CExpr, CExtern, CGather, CGemm, CGroup, CRef, FastKind, InnerLoop,
    Kernel, Segment,
};
use crate::plan::ExecutionPlan;
use crate::pool::{WorkerPool, GRAD_LANES};
use crate::registry::{ExternInvocation, KernelRegistry};
use crate::store::BufferStore;

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads for batch-parallel groups and partitioned batched
    /// GEMMs. `1` disables threading. The default comes from the
    /// `LATTE_THREADS` environment variable ([`ExecConfig::env_threads`]).
    pub threads: usize,
    /// Pack transient buffers into a liveness-planned arena: buffers
    /// whose live ranges never overlap share storage, shrinking
    /// [`Executor::allocated_elements`]. Off by default; results are
    /// bit-identical either way, but reading a buffer the arena retired
    /// returns [`RuntimeError::BufferRetired`] instead of data.
    pub arena: bool,
    /// `(kc, nc, mc)` blocking for the worker pool's GEMM engines; `None`
    /// uses the engine default. Typically installed by the autotuner (see
    /// `latte_runtime::tune`); blocking changes tile partitioning only —
    /// `kc` association is what determines bits, and tuned schedules pin
    /// it — so results stay bit-identical across valid blockings.
    pub gemm_blocking: Option<(usize, usize, usize)>,
}

impl ExecConfig {
    /// The worker-thread count requested by the `LATTE_THREADS`
    /// environment variable; `1` when unset, unparsable, or zero.
    pub fn env_threads() -> usize {
        std::env::var("LATTE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: Self::env_threads(),
            arena: false,
            gemm_blocking: None,
        }
    }
}

/// One communicator bucket: the parameters whose gradients are final
/// once backward group [`GradBucket::group`] has run (see
/// [`Executor::grad_buckets`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradBucket {
    /// Backward-group index, as passed to the
    /// [`Executor::backward_hooked`] callback.
    pub group: usize,
    /// The lowered group's name (diagnostics and bucket labelling).
    pub name: String,
    /// Indices into [`Executor::params`], ascending.
    pub params: Vec<usize>,
}

/// A raw view of one buffer for the current batch item.
#[derive(Clone, Copy)]
struct RawBuf {
    ptr: *mut f32,
    len: usize,
}

impl RawBuf {
    #[inline]
    fn read(&self, i: i64) -> f32 {
        debug_assert!(i >= 0 && (i as usize) < self.len, "read {i} of {}", self.len);
        unsafe { *self.ptr.add(i as usize) }
    }

    #[inline]
    fn write(&self, i: i64, op: AssignOp, v: f32) {
        debug_assert!(i >= 0 && (i as usize) < self.len, "write {i} of {}", self.len);
        unsafe {
            let p = self.ptr.add(i as usize);
            *p = op.apply(*p, v);
        }
    }

    #[inline]
    fn slice(&self, start: i64, len: usize) -> &[f32] {
        debug_assert!(start >= 0 && start as usize + len <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(start as usize), len) }
    }

    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn slice_mut(&self, start: i64, len: usize) -> &mut [f32] {
        debug_assert!(start >= 0 && start as usize + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start as usize), len) }
    }
}

/// Per-item frame: one [`RawBuf`] per group buffer.
struct Frame {
    bufs: Vec<RawBuf>,
}

/// Parallel-worker buffer redirection: storage indices to replace, and
/// their replacement `(pointer, length)` pairs.
type RedirectTable<'a> = (&'a [usize], &'a [(*mut f32, usize)]);

/// Builds the per-item frame from the store's base pointer.
///
/// # Safety
///
/// `base` must point at `n_storages` live `Vec<f32>` storages with no
/// other active borrows; the caller must guarantee the disjointness
/// invariants described in the module docs.
unsafe fn build_frame(
    base: *mut Vec<f32>,
    g: &CGroup,
    item: usize,
    redirect: Option<RedirectTable<'_>>,
) -> Frame {
    let bufs = g
        .bufs
        .iter()
        .map(|b| {
            let (ptr, len) = match &redirect {
                Some((storages, scratch)) if b.param_grad => {
                    let pos = storages
                        .iter()
                        .position(|&s| s == b.storage)
                        .expect("redirected storage present");
                    scratch[pos]
                }
                _ => {
                    let s = &mut *base.add(b.storage);
                    (s.as_mut_ptr(), s.len())
                }
            };
            if b.batched {
                RawBuf {
                    ptr: ptr.add(item * b.per_item),
                    len: b.per_item,
                }
            } else {
                RawBuf { ptr, len }
            }
        })
        .collect();
    Frame { bufs }
}

/// A per-group callback invoked after each compute group of a phase
/// (group index, executor) — how [`Executor::backward_hooked`] streams
/// finished gradient buckets to the distributed comm thread.
pub type GroupHook<'a> = &'a mut dyn FnMut(usize, &Executor);

/// A lowered, executor-independent program: the compiled net, its
/// [`ExecutionPlan`], and the arena layout the plan was built against.
///
/// This is the unit a plan cache stores (keyed by
/// `(CompiledNet::fingerprint(), batch)` in `latte-serve`): lowering —
/// kernel selection, bounds verification, liveness planning — happens
/// once in [`CompiledProgram::lower`], and every
/// [`CompiledProgram::instantiate`] afterwards only allocates a fresh
/// [`BufferStore`] and initializes parameters. Buffer storage indices
/// are assigned deterministically from the declaration list, so a store
/// built at instantiation time matches the one the plan was lowered
/// against.
pub struct CompiledProgram {
    net: CompiledNet,
    plan: Arc<ExecutionPlan>,
    layout: Option<crate::plan::MemoryLayout>,
    cfg: ExecConfig,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("batch", &self.net.batch)
            .field("forward_groups", &self.plan.forward_groups())
            .field("backward_groups", &self.plan.backward_groups())
            .finish_non_exhaustive()
    }
}

impl CompiledProgram {
    /// Lowers a compiled network into a shareable execution plan without
    /// allocating runtime buffers.
    ///
    /// # Errors
    ///
    /// See [`Executor::with_registry`] — the same lowering runs here.
    pub fn lower(
        net: CompiledNet,
        registry: &KernelRegistry,
        cfg: ExecConfig,
    ) -> Result<Self, RuntimeError> {
        let layout = cfg.arena.then(|| crate::plan::liveness_layout(&net));
        // A scratch store resolves buffer names to storage indices for
        // lowering; `instantiate` rebuilds an identical one per executor.
        let store = BufferStore::with_layout(&net.buffers, net.batch, layout.as_ref())?;
        let lowered = crate::lower::lower(&net, &store, registry, net.vectorize)?;
        let plan = Arc::new(ExecutionPlan::new(lowered, layout.as_ref()));
        Ok(CompiledProgram { net, plan, layout, cfg })
    }

    /// The batch size the program was compiled for.
    pub fn batch(&self) -> usize {
        self.net.batch
    }

    /// The compiled network this program was lowered from.
    pub fn compiled(&self) -> &CompiledNet {
        &self.net
    }

    /// Builds a warm executor on `pool`, sharing this program's plan:
    /// allocates a fresh buffer store and writes initial parameter
    /// values, but performs no compilation or lowering. The executor's
    /// thread count is the pool's.
    ///
    /// # Errors
    ///
    /// Propagates buffer-store allocation failures.
    pub fn instantiate(&self, pool: Arc<WorkerPool>) -> Result<Executor, RuntimeError> {
        let store = BufferStore::with_layout(&self.net.buffers, self.net.batch, self.layout.as_ref())?;
        let mut exec = Executor {
            net: self.net.clone(),
            plan: Arc::clone(&self.plan),
            store,
            cfg: ExecConfig { threads: pool.threads(), ..self.cfg },
            pool,
        };
        exec.reset_params()?;
        Ok(exec)
    }
}

/// The executor: a compiled network, its buffers, and the lowered plan.
///
/// This is the runtime counterpart of the paper's `init(net)`: buffers
/// are allocated according to the compiler's plan (aliases shared), the
/// program is lowered to native kernels, and [`Executor::forward`] /
/// [`Executor::backward`] execute it for one batch.
pub struct Executor {
    net: CompiledNet,
    /// Shared with the [`CompiledProgram`] this executor was instantiated
    /// from (plan-cache replicas) or exclusive when built directly.
    plan: Arc<ExecutionPlan>,
    store: BufferStore,
    cfg: ExecConfig,
    /// The persistent worker team (and its per-worker GEMM engines and
    /// lane scratch), shared across the warm executors of one serving
    /// replica; runs are exclusive — one executor drives it at a time.
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("batch", &self.net.batch)
            .field("forward_groups", &self.plan.forward_groups())
            .field("backward_groups", &self.plan.backward_groups())
            .field("arena", &self.plan.arena())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Lowers and allocates a compiled network with the default registry
    /// and configuration.
    ///
    /// # Errors
    ///
    /// Fails when the plan references unknown buffers or kernels, or when
    /// static bounds verification rejects a statement.
    pub fn new(net: CompiledNet) -> Result<Self, RuntimeError> {
        Self::with_registry(net, &KernelRegistry::with_builtins(), ExecConfig::default())
    }

    /// Lowers with an explicit kernel registry and configuration.
    ///
    /// # Errors
    ///
    /// See [`Executor::new`].
    pub fn with_registry(
        net: CompiledNet,
        registry: &KernelRegistry,
        cfg: ExecConfig,
    ) -> Result<Self, RuntimeError> {
        let program = CompiledProgram::lower(net, registry, cfg)?;
        let pool = WorkerPool::with_blocking(cfg.threads, cfg.gemm_blocking)
            .map_err(|e| RuntimeError::InvalidConfig { detail: e.to_string() })?;
        program.instantiate(Arc::new(pool))
    }

    /// The worker-thread count this executor runs with.
    pub fn threads(&self) -> usize {
        self.cfg.threads.max(1)
    }

    /// The execution plan driving this executor.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Re-initializes every parameter buffer from its declared initial
    /// values.
    ///
    /// # Errors
    ///
    /// Propagates buffer-lookup failures.
    pub fn reset_params(&mut self) -> Result<(), RuntimeError> {
        let inits = std::mem::take(&mut self.net.param_inits);
        for (name, init) in &inits {
            self.store.write(name, init)?;
        }
        self.net.param_inits = inits;
        Ok(())
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.net.batch
    }

    /// The compiled network.
    pub fn compiled(&self) -> &CompiledNet {
        &self.net
    }

    /// The learnable parameters.
    pub fn params(&self) -> &[ParamBinding] {
        &self.net.params
    }

    /// Total floats actually allocated (memory metric for ablations).
    /// Under [`ExecConfig::arena`] this reports the packed arena
    /// footprint, which is smaller than the sum of buffer sizes.
    pub fn allocated_elements(&self) -> usize {
        self.store.total_elements()
    }

    /// Writes a data ensemble's batch: `data` holds `batch * per_item`
    /// values, item-major.
    ///
    /// # Errors
    ///
    /// Fails for unknown ensembles or wrong lengths.
    pub fn set_input(&mut self, ensemble: &str, data: &[f32]) -> Result<(), RuntimeError> {
        let buffer = self
            .net
            .inputs
            .iter()
            .find(|i| i.ensemble == ensemble)
            .map(|i| i.buffer.clone())
            .ok_or_else(|| RuntimeError::UnknownBuffer {
                name: format!("{ensemble} (data ensemble)"),
            })?;
        self.store.write(&buffer, data)
    }

    /// Writes one batch item's slice of a data ensemble: `data` holds
    /// `per_item` values for batch position `item`. This is the serving
    /// path — coalesced single-sample requests land in their micro-batch
    /// slots without staging a whole-batch buffer first.
    ///
    /// # Errors
    ///
    /// Fails for unknown ensembles, wrong per-item lengths, or an item
    /// index outside the batch.
    pub fn set_input_item(
        &mut self,
        ensemble: &str,
        item: usize,
        data: &[f32],
    ) -> Result<(), RuntimeError> {
        let buffer = self
            .net
            .inputs
            .iter()
            .find(|i| i.ensemble == ensemble)
            .map(|i| i.buffer.clone())
            .ok_or_else(|| RuntimeError::UnknownBuffer {
                name: format!("{ensemble} (data ensemble)"),
            })?;
        self.store.write_item(&buffer, item, data)
    }

    /// Reads a buffer's full storage.
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers.
    pub fn read_buffer(&self, name: &str) -> Result<Vec<f32>, RuntimeError> {
        self.store.read(name)
    }

    /// Reads one batch item of a buffer.
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers.
    pub fn read_item(&self, name: &str, item: usize) -> Result<Vec<f32>, RuntimeError> {
        self.store.read_item(name, item)
    }

    /// Overwrites a buffer's full storage (test/diagnostic hook).
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers or wrong lengths.
    pub fn write_buffer(&mut self, name: &str, data: &[f32]) -> Result<(), RuntimeError> {
        self.store.write(name, data)
    }

    /// The single plan-execution path behind every public entry point:
    /// runs one phase's groups in order, performing the plan's per-group
    /// arena zero-fills, with optional per-group timing and optional
    /// per-group sentinel scanning layered on as instrumentation.
    ///
    /// # Errors
    ///
    /// Only with `sentinel`: the first [`BufferAnomaly`] found after a
    /// group; remaining groups are skipped.
    fn run_phase(
        &mut self,
        backward: bool,
        mut timing: Option<&mut Vec<(String, f64)>>,
        sentinel: Option<usize>,
        mut after_group: Option<GroupHook<'_>>,
    ) -> Result<(), BufferAnomaly> {
        if backward {
            self.store.zero_grads();
            self.store.zero_param_grads();
        }
        // The plan is behind an `Arc` (shared with sibling executors of
        // the same `CompiledProgram`), so cloning the handle detaches the
        // group iteration from `&mut self`.
        let plan = Arc::clone(&self.plan);
        let batch = self.net.batch;
        let mut trip = None;
        'groups: for (gi, g) in plan.groups(backward).iter().enumerate() {
            // A buffer entering its live range reuses whatever bytes its
            // slot's previous occupant left; zeroing here restores the
            // freshly-allocated semantics every kernel was written for.
            for &(backing, len) in &plan.zeroes(backward)[gi] {
                self.store.storages[backing][..len].fill(0.0);
            }
            let t0 = timing.is_some().then(std::time::Instant::now);
            self.run_group(g, plan.n_slots());
            if let (Some(out), Some(t0)) = (timing.as_deref_mut(), t0) {
                out.push((g.name.clone(), t0.elapsed().as_secs_f64() * 1e3));
            }
            if let Some(hook) = after_group.as_deref_mut() {
                // The group's gradient-lane fold ran inside `run_group`,
                // so every parameter gradient this group produces is
                // final here even while later groups are still pending.
                hook(gi, self);
            }
            if let Some(stride) = sentinel {
                let mut seen = std::collections::HashSet::new();
                for (bi, b) in g.bufs.iter().enumerate() {
                    if !seen.insert(b.storage) {
                        continue;
                    }
                    // Scan only the binding's own span: an arena slot may
                    // be larger than its current occupant.
                    let len = b.per_item * if b.batched { batch } else { 1 };
                    let view = &self.store.storages[b.storage][..len];
                    if let Some((index, class)) = scan_slice(view, stride) {
                        trip = Some(BufferAnomaly {
                            buffer: format!("{}#{bi}", g.name),
                            index,
                            class,
                        });
                        break 'groups;
                    }
                }
            }
        }
        match trip {
            Some(a) => Err(a),
            None => Ok(()),
        }
    }

    /// Runs forward propagation for the current batch.
    pub fn forward(&mut self) {
        let _ = self.run_phase(false, None, None, None);
    }

    /// Runs backward propagation (zeroing activation and parameter
    /// gradients first).
    pub fn backward(&mut self) {
        let _ = self.run_phase(true, None, None, None);
    }

    /// Runs backward propagation like [`Executor::backward`], invoking
    /// `hook(group_index, &self)` after each backward group completes.
    /// Because the gradient-lane fold happens inside the group, the
    /// parameter gradients owned by that group (see
    /// [`Executor::grad_buckets`]) are final when the hook fires — this
    /// is the seam that lets a communicator overlap ring all-reduce with
    /// the remaining backward passes.
    pub fn backward_hooked(&mut self, hook: GroupHook<'_>) {
        let _ = self.run_phase(true, None, None, Some(hook));
    }

    /// Runs forward propagation, returning per-group wall-clock
    /// milliseconds — the per-layer profile used by the Figure-15
    /// breakdown and the cluster simulator.
    pub fn forward_timed(&mut self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let _ = self.run_phase(false, Some(&mut out), None, None);
        out
    }

    /// Runs backward propagation, returning per-group wall-clock
    /// milliseconds.
    pub fn backward_timed(&mut self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let _ = self.run_phase(true, Some(&mut out), None, None);
        out
    }

    /// Groups the learnable parameters into communicator buckets, one
    /// per backward group: each parameter is assigned to the **last**
    /// backward group whose bindings write its gradient storage (last,
    /// so weight-shared parameters — e.g. an unrolled recurrent cell —
    /// are shipped only once their final accumulation has run). Buckets
    /// come back ordered by group index, i.e. in the order
    /// [`Executor::backward_hooked`] fires; parameters whose gradient no
    /// group writes (their gradient stays zero) ride in the last bucket.
    pub fn grad_buckets(&self) -> Vec<GradBucket> {
        let groups = self.plan.groups(true);
        if groups.is_empty() {
            return Vec::new();
        }
        let mut by_group: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (pi, p) in self.net.params.iter().enumerate() {
            let gs = self
                .store
                .info(&p.grad)
                .expect("param grad buffer exists")
                .storage;
            let mut last = groups.len() - 1;
            for (gi, g) in groups.iter().enumerate() {
                if g.bufs.iter().any(|b| b.param_grad && b.storage == gs) {
                    last = gi;
                }
            }
            by_group.entry(last).or_default().push(pi);
        }
        by_group
            .into_iter()
            .map(|(gi, params)| GradBucket {
                group: gi,
                name: groups[gi].name.clone(),
                params,
            })
            .collect()
    }

    /// The mean loss across batch items and loss ensembles after a
    /// forward pass.
    pub fn loss(&self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for name in &self.net.losses {
            if let Ok(values) = self.store.read(name) {
                total += values.iter().sum::<f32>();
                count += self.net.batch;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }

    /// Applies `f` to each `(value, grad, lr_mult)` parameter pair.
    ///
    /// This is the solvers' access path; gradients are those accumulated
    /// by the last backward pass (summed over the batch).
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut [f32], &[f32], f32)) {
        for i in 0..self.net.params.len() {
            let p = self.net.params[i].clone();
            let vi = self.store.info(&p.value).expect("param buffer").storage;
            let gi = self.store.info(&p.grad).expect("param grad buffer").storage;
            assert_ne!(vi, gi, "parameter aliases its own gradient");
            let base = self.store.storages.as_mut_ptr();
            // SAFETY: vi != gi index distinct vector elements of a live,
            // exclusively borrowed Vec.
            let (vs, gs) = unsafe { ((*base.add(vi)).as_mut_slice(), (*base.add(gi)).as_slice()) };
            f(vs, gs, p.lr_mult);
        }
    }

    /// Applies `f` to each parameter's `(grad buffer name, gradient)`
    /// pair, mutably — the gradient-hygiene (clipping / finite-check)
    /// access path, run between `backward` and `Solver::step`.
    pub fn for_each_param_grad_mut(&mut self, mut f: impl FnMut(&str, &mut [f32])) {
        for i in 0..self.net.params.len() {
            let grad = self.net.params[i].grad.clone();
            let gi = self.store.info(&grad).expect("param grad buffer").storage;
            f(&grad, self.store.storages[gi].as_mut_slice());
        }
    }

    /// Scans the buffers selected by `kinds` for non-finite values and
    /// returns the first hit per buffer. Buffer names and kinds come
    /// from the compiled net's sentinel hook
    /// (`CompiledNet::sentinel_buffers`); aliased storages are scanned
    /// once. `SentinelMode::Off` scans nothing.
    pub fn scan_numerics(
        &self,
        mode: SentinelMode,
        kinds: impl Fn(latte_ir::BufferKind) -> bool,
    ) -> Vec<BufferAnomaly> {
        let Some(stride) = mode.stride() else {
            return Vec::new();
        };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (name, kind) in self.net.sentinel_buffers() {
            if !kinds(kind) {
                continue;
            }
            // Arena-retired buffers have no contents of their own to
            // scan; `scan_view` yields each visible buffer's logical
            // span, never a slot co-resident's bytes.
            let Some(view) = self.store.scan_view(name) else {
                continue;
            };
            let storage = self.store.info(name).expect("visible buffer").storage;
            if !seen.insert(storage) {
                continue;
            }
            if let Some((index, class)) = scan_slice(view, stride) {
                out.push(BufferAnomaly { buffer: name.to_string(), index, class });
            }
        }
        out
    }

    /// Runs forward propagation with a sentinel scan after every group,
    /// stopping at the first group that produces a non-finite value —
    /// the layer-boundary debug mode, pinning a trip to the layer that
    /// caused it. Lowered groups bind storages, not names, so the
    /// anomaly is reported as `<group>#<binding>`.
    ///
    /// # Errors
    ///
    /// [`BufferAnomaly`] naming the tripping group; downstream groups
    /// have not run, so buffer contents are mixed-iteration and the
    /// caller should treat the pass (and its loss) as poisoned.
    pub fn forward_guarded(&mut self, mode: SentinelMode) -> Result<(), BufferAnomaly> {
        self.run_phase(false, None, mode.stride(), None)
    }

    fn run_group(&mut self, g: &CGroup, n_slots: usize) {
        let batch = self.net.batch;
        for seg in &g.segments {
            match seg {
                Segment::Batched(b) => self.run_batched_gemm(b),
                Segment::ExternWhole(e) => self.run_extern_whole(g, e),
                Segment::PerItem(kernels) => {
                    if g.parallel {
                        // Parallel groups take the lane-scratch path at
                        // EVERY thread count (including 1): the lane
                        // structure fixes the gradient summation order,
                        // which is what makes threads=4 bit-identical to
                        // threads=1.
                        self.run_items_parallel(g, kernels, n_slots);
                    } else {
                        let base = self.store.storages.as_mut_ptr();
                        self.pool.with_caller_ctx(|ctx| {
                            let mut env = vec![0i64; n_slots.max(1)];
                            for item in 0..batch {
                                // SAFETY: single-threaded exclusive access
                                // through `&mut self`.
                                let frame = unsafe { build_frame(base, g, item, None) };
                                for k in kernels {
                                    exec_kernel(k, &mut env, &frame, batch, g, item, &mut ctx.gemm);
                                }
                            }
                        });
                    }
                }
            }
        }
    }

    /// Static interleaved schedule across the persistent pool, with
    /// fixed-lane parameter-gradient scratch reduced afterwards in lane
    /// order (see [`crate::pool`] for the determinism argument). Lane
    /// scratch is pool-owned: zeroed per group, never reallocated.
    fn run_items_parallel(&mut self, g: &CGroup, kernels: &[Kernel], n_slots: usize) {
        let batch = self.net.batch;
        let pg_storages: Vec<usize> = {
            let mut v: Vec<usize> = g
                .bufs
                .iter()
                .filter(|b| b.param_grad)
                .map(|b| b.storage)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let sizes: Vec<usize> = pg_storages
            .iter()
            .map(|&s| self.store.storages[s].len())
            .collect();
        // Lane count is capped by the batch (tail lanes would be empty)
        // but NEVER depends on the thread count.
        let n_lanes = GRAD_LANES.min(batch.max(1));
        let lane_scratch = self.pool.lane_scratch(n_lanes, &sizes);

        /// Everything the item job needs, bundled so one `unsafe impl
        /// Sync` covers the raw pointers (base storage + lane spans).
        struct ItemJob<'a> {
            base: *mut Vec<f32>,
            g: &'a CGroup,
            kernels: &'a [Kernel],
            pg: &'a [usize],
            lanes: &'a [Vec<(*mut f32, usize)>],
            batch: usize,
            n_lanes: usize,
            n_slots: usize,
            nt: usize,
        }
        // SAFETY: workers access disjoint batched slices; shared
        // (unbatched) storages are read-only or redirected to lane
        // scratch, and each lane is owned by exactly one worker.
        unsafe impl Sync for ItemJob<'_> {}

        let job = ItemJob {
            base: self.store.storages.as_mut_ptr(),
            g,
            kernels,
            pg: &pg_storages,
            lanes: &lane_scratch,
            batch,
            n_lanes,
            n_slots,
            nt: self.pool.threads(),
        };
        // schedule(static, 1) over lanes: the driving worker owns lanes
        // first, first+step, …; lane `l` owns items l, l+L, … — an
        // item→accumulator mapping independent of the worker count, so
        // any `(first, step)` coverage of the lanes produces the same
        // bits.
        fn run_lanes(j: &ItemJob<'_>, ctx: &mut crate::pool::WorkerCtx, first: usize, step: usize) {
            let mut env = vec![0i64; j.n_slots.max(1)];
            let mut lane = first;
            while lane < j.n_lanes {
                let scratch = &j.lanes[lane];
                let mut item = lane;
                while item < j.batch {
                    // SAFETY: see module docs; this lane's scratch
                    // pointers are exclusive to this worker.
                    let frame =
                        unsafe { build_frame(j.base, j.g, item, Some((j.pg, scratch))) };
                    for k in j.kernels {
                        exec_kernel(k, &mut env, &frame, j.batch, j.g, item, &mut ctx.gemm);
                    }
                    item += j.n_lanes;
                }
                lane += step;
            }
        }
        if g.serial_hint {
            // Tuned serial: same lane structure, all lanes on the
            // caller, no pool broadcast (no worker wake-ups).
            self.pool.with_caller_ctx(|ctx| run_lanes(&job, ctx, 0, 1));
        } else {
            self.pool.run(&|tid, ctx| run_lanes(&job, ctx, tid, job.nt));
        }

        // Synchronized reduction, folding lanes in lane order — the same
        // association for every thread count.
        for (si, &storage) in pg_storages.iter().enumerate() {
            let main = &mut self.store.storages[storage];
            for lane in &lane_scratch {
                let (ptr, len) = lane[si];
                // SAFETY: the job finished; the caller again has exclusive
                // access to every lane span.
                let s = unsafe { std::slice::from_raw_parts(ptr, len) };
                for (m, v) in main.iter_mut().zip(s) {
                    *m += v;
                }
            }
        }
    }

    fn run_batched_gemm(&mut self, b: &BatchedGemm) {
        assert!(b.c != b.a && b.c != b.b, "batched gemm aliasing");
        let base = self.store.storages.as_mut_ptr();
        // SAFETY: a, b, c are distinct storage indices (asserted); a and b
        // are only read.
        let (a, bb, c) = unsafe {
            let av: &Vec<f32> = &*base.add(b.a);
            let bv: &Vec<f32> = &*base.add(b.b);
            let cv: &mut Vec<f32> = &mut *base.add(b.c);
            (&av[b.a_base..], &bv[b.b_base..], &mut cv[b.c_base..])
        };
        let ta = if b.ta { Transpose::Yes } else { Transpose::No };
        let tb = if b.tb { Transpose::Yes } else { Transpose::No };
        // Whole-batch GEMMs are the FLOP majority for FC layers: partition
        // macro-tiles across the pool (bit-identical for any worker count).
        Gemm::compute_parallel(self.pool.as_ref(), ta, tb, b.m, b.n, b.k, a, bb, c);
    }

    fn run_extern_whole(&mut self, g: &CGroup, e: &CExtern) {
        let batch = self.net.batch;
        let per_item: Vec<usize> = e.bufs.iter().map(|&i| g.bufs[i].per_item).collect();
        let batched: Vec<bool> = e.bufs.iter().map(|&i| g.bufs[i].batched).collect();
        let base = self.store.storages.as_mut_ptr();
        let mut views: Vec<&mut [f32]> = Vec::with_capacity(e.bufs.len());
        for &i in &e.bufs {
            let b = &g.bufs[i];
            // Clamp each view to the binding's logical span — an arena
            // slot may be larger than its current occupant.
            let len = b.per_item * if b.batched { batch } else { 1 };
            // SAFETY: lowering rejects duplicate storages per extern, so
            // these views are disjoint.
            views.push(unsafe { &mut (*base.add(b.storage)).as_mut_slice()[..len] });
        }
        let mut inv = ExternInvocation {
            attrs: &e.attrs,
            batch,
            item: None,
            per_item,
            batched,
            bufs: views,
        };
        (e.f)(&mut inv).expect("extern kernel failed");
    }
}

/// Executes one kernel for one batch item. `gemm` is the executing
/// worker's persistent engine (its packing buffers are reused across
/// items and iterations).
fn exec_kernel(
    k: &Kernel,
    env: &mut [i64],
    frame: &Frame,
    batch: usize,
    g: &CGroup,
    item: usize,
    gemm: &mut Gemm,
) {
    match k {
        Kernel::Loop { slot, extent, body } => {
            for v in 0..*extent {
                env[*slot] = v as i64;
                for k in body {
                    exec_kernel(k, env, frame, batch, g, item, gemm);
                }
            }
        }
        Kernel::Inner(inner) => exec_inner(inner, env, frame),
        Kernel::Assign(a) => {
            let v = eval_expr(&a.expr, &a.loads, env, frame);
            let d = &frame.bufs[a.dest.buf];
            d.write(a.dest.idx.eval(env), a.op, v);
        }
        Kernel::Gemm(gm) => exec_gemm(gm, env, frame, gemm),
        Kernel::Copy(c) => exec_copy(c, env, frame),
        Kernel::Gather(ga) => exec_gather(ga, frame),
        Kernel::Extern(e) => {
            let per_item: Vec<usize> = e.bufs.iter().map(|&i| g.bufs[i].per_item).collect();
            let batched: Vec<bool> = e.bufs.iter().map(|&i| g.bufs[i].batched).collect();
            let mut views: Vec<&mut [f32]> = Vec::with_capacity(e.bufs.len());
            for &i in &e.bufs {
                let b = &frame.bufs[i];
                views.push(b.slice_mut(0, b.len));
            }
            let mut inv = ExternInvocation {
                attrs: &e.attrs,
                batch,
                item: Some(item),
                per_item,
                batched,
                bufs: views,
            };
            (e.f)(&mut inv).expect("extern kernel failed");
        }
    }
}

#[inline]
fn eval_expr(e: &CExpr, loads: &[CRef], env: &[i64], frame: &Frame) -> f32 {
    match e {
        CExpr::Const(c) => *c,
        CExpr::Load(i) => {
            let r = &loads[*i];
            frame.bufs[r.buf].read(r.idx.eval(env))
        }
        CExpr::Un(op, x) => op.apply(eval_expr(x, loads, env, frame)),
        CExpr::Bin(op, a, b) => op.apply(
            eval_expr(a, loads, env, frame),
            eval_expr(b, loads, env, frame),
        ),
    }
}

/// Evaluates an expression with per-load element offsets (the hoisted
/// inner-loop form).
#[inline]
fn eval_expr_off(e: &CExpr, loads: &[CRef], offs: &[i64], frame: &Frame) -> f32 {
    match e {
        CExpr::Const(c) => *c,
        CExpr::Load(i) => frame.bufs[loads[*i].buf].read(offs[*i]),
        CExpr::Un(op, x) => op.apply(eval_expr_off(x, loads, offs, frame)),
        CExpr::Bin(op, a, b) => op.apply(
            eval_expr_off(a, loads, offs, frame),
            eval_expr_off(b, loads, offs, frame),
        ),
    }
}

fn exec_inner(inner: &InnerLoop, env: &mut [i64], frame: &Frame) {
    let a = &inner.assign;
    let slot = inner.slot;
    let n = inner.extent;
    env[slot] = 0;
    match inner.fast {
        FastKind::Dot => {
            if let CExpr::Bin(BinOp::Mul, l, r) = &a.expr {
                if let (CExpr::Load(i), CExpr::Load(j)) = (l.as_ref(), r.as_ref()) {
                    let ra = &a.loads[*i];
                    let rb = &a.loads[*j];
                    let xa = frame.bufs[ra.buf].slice(ra.idx.eval(env), n);
                    let xb = frame.bufs[rb.buf].slice(rb.idx.eval(env), n);
                    let mut acc = 0.0f32;
                    for (p, q) in xa.iter().zip(xb) {
                        acc += p * q;
                    }
                    let d = &frame.bufs[a.dest.buf];
                    d.write(a.dest.idx.eval(env), AssignOp::Add, acc);
                    return;
                }
            }
            unreachable!("Dot classification implies mul-of-loads");
        }
        FastKind::MaxReduce => {
            if let CExpr::Load(i) = &a.expr {
                let r = &a.loads[*i];
                let s = frame.bufs[r.buf].slice(r.idx.eval(env), n);
                let m = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let d = &frame.bufs[a.dest.buf];
                d.write(a.dest.idx.eval(env), AssignOp::Max, m);
                return;
            }
            unreachable!("MaxReduce classification implies a load");
        }
        FastKind::UnitMap if run_unit_fast(inner, env, frame) => {}
        FastKind::UnitMap | FastKind::Generic => {
            // Stack-allocated offset tables: this runs once per inner
            // loop, so a heap allocation here would dominate small loops.
            const MAX_LOADS: usize = 12;
            let nl = a.loads.len();
            debug_assert!(nl <= MAX_LOADS, "expression with {nl} loads");
            let mut offs = [0i64; MAX_LOADS];
            let mut steps = [0i64; MAX_LOADS];
            for (i, l) in a.loads.iter().enumerate().take(MAX_LOADS) {
                offs[i] = l.idx.eval(env);
                steps[i] = l.idx.coef(slot);
            }
            let mut doff = a.dest.idx.eval(env);
            let dstep = a.dest.idx.coef(slot);
            let d = &frame.bufs[a.dest.buf];
            for _ in 0..n {
                let v = eval_expr_off(&a.expr, &a.loads, &offs[..nl], frame);
                d.write(doff, a.op, v);
                doff += dstep;
                for (o, s) in offs.iter_mut().zip(&steps).take(nl) {
                    *o += *s;
                }
            }
        }
    }
    env[slot] = 0;
}

/// Specialized loops for the element-wise shapes that dominate network
/// execution (the runtime analogue of the generated code's `#pragma simd`
/// loops). Returns `false` when the expression does not match a known
/// shape, falling back to the hoisted interpreter.
fn run_unit_fast(inner: &InnerLoop, env: &[i64], frame: &Frame) -> bool {
    let a = &inner.assign;
    let slot = inner.slot;
    let n = inner.extent;
    let load = |i: &usize| &a.loads[*i];
    let unit = |i: &usize| load(i).idx.coef(slot) == 1;
    let dest = &frame.bufs[a.dest.buf];
    let d0 = a.dest.idx.eval(env);
    let set = a.op == AssignOp::Set;
    match &a.expr {
        // dest[i] = max(src[i], k): ReLU.
        CExpr::Bin(BinOp::Max, l, r) if set => {
            if let (CExpr::Load(i), CExpr::Const(k)) = (l.as_ref(), r.as_ref()) {
                if unit(i) {
                    let s = frame.bufs[load(i).buf].slice(load(i).idx.eval(env), n);
                    let d = dest.slice_mut(d0, n);
                    let k = *k;
                    for (dv, sv) in d.iter_mut().zip(s) {
                        *dv = sv.max(k);
                    }
                    return true;
                }
            }
            false
        }
        // dest[i] (op)= src[i]: copy / accumulate.
        CExpr::Load(i) if unit(i) => {
            let s = frame.bufs[load(i).buf].slice(load(i).idx.eval(env), n);
            let d = dest.slice_mut(d0, n);
            if set {
                d.copy_from_slice(s);
            } else if a.op == AssignOp::Add {
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv += sv;
                }
            } else {
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv = dv.max(*sv);
                }
            }
            true
        }
        // dest[i] = k: fill (max-neuron -inf init).
        CExpr::Const(k) if set => {
            dest.slice_mut(d0, n).fill(*k);
            true
        }
        // dest[i] += g * eq(in[i], v): max-pooling gradient routing.
        CExpr::Bin(BinOp::Mul, l, r) if a.op == AssignOp::Add => {
            let (g_load, eq) = match (l.as_ref(), r.as_ref()) {
                (CExpr::Load(g), CExpr::Bin(BinOp::EqIndicator, x, v)) => (g, (x, v)),
                _ => return run_unit_fast_binary(inner, env, frame),
            };
            if load(g_load).idx.coef(slot) != 0 {
                return run_unit_fast_binary(inner, env, frame);
            }
            if let (CExpr::Load(x), CExpr::Load(v)) = (eq.0.as_ref(), eq.1.as_ref()) {
                if unit(x) && load(v).idx.coef(slot) == 0 {
                    let gval = frame.bufs[load(g_load).buf].read(load(g_load).idx.eval(env));
                    let vval = frame.bufs[load(v).buf].read(load(v).idx.eval(env));
                    let xs = frame.bufs[load(x).buf].slice(load(x).idx.eval(env), n);
                    let d = dest.slice_mut(d0, n);
                    for (dv, xv) in d.iter_mut().zip(xs) {
                        if *xv == vval {
                            *dv += gval;
                        }
                    }
                    return true;
                }
            }
            run_unit_fast_binary(inner, env, frame)
        }
        // dest[i] (op)= x[i] * y[i] / x[i] + y[i], including the in-place
        // ReLU gradient g[i] * step(v[i]).
        CExpr::Bin(BinOp::Mul | BinOp::Add, _, _) => {
            run_unit_fast_binary(inner, env, frame)
        }
        _ => false,
    }
}

/// The binary element-wise fast paths (`x op y`, `x op const`,
/// `g * step(v)`), split out so the pooling-gradient arm can fall through
/// to them.
fn run_unit_fast_binary(inner: &InnerLoop, env: &[i64], frame: &Frame) -> bool {
    let a = &inner.assign;
    let slot = inner.slot;
    let n = inner.extent;
    let load = |i: &usize| &a.loads[*i];
    let unit = |i: &usize| load(i).idx.coef(slot) == 1;
    let dest = &frame.bufs[a.dest.buf];
    let d0 = a.dest.idx.eval(env);
    let set = a.op == AssignOp::Set;
    match &a.expr {
        CExpr::Bin(op @ (BinOp::Mul | BinOp::Add), l, r) => {
            let (i, rhs) = match l.as_ref() {
                CExpr::Load(i) if unit(i) => (i, r.as_ref()),
                _ => return false,
            };
            match rhs {
                CExpr::Load(j) if unit(j) => {
                    let s1 = frame.bufs[load(i).buf].slice(load(i).idx.eval(env), n);
                    let s2 = frame.bufs[load(j).buf].slice(load(j).idx.eval(env), n);
                    let d = dest.slice_mut(d0, n);
                    let mul = *op == BinOp::Mul;
                    if set {
                        for ((dv, x), y) in d.iter_mut().zip(s1).zip(s2) {
                            *dv = if mul { x * y } else { x + y };
                        }
                    } else if a.op == AssignOp::Add {
                        for ((dv, x), y) in d.iter_mut().zip(s1).zip(s2) {
                            *dv += if mul { x * y } else { x + y };
                        }
                    } else {
                        return false;
                    }
                    true
                }
                CExpr::Un(UnaryOp::Step, x) if *op == BinOp::Mul => {
                    if let CExpr::Load(j) = x.as_ref() {
                        if unit(j) && set {
                            let s1 =
                                frame.bufs[load(i).buf].slice(load(i).idx.eval(env), n);
                            let s2 =
                                frame.bufs[load(j).buf].slice(load(j).idx.eval(env), n);
                            let d = dest.slice_mut(d0, n);
                            for ((dv, g), v) in d.iter_mut().zip(s1).zip(s2) {
                                *dv = if *v > 0.0 { *g } else { 0.0 };
                            }
                            return true;
                        }
                    }
                    false
                }
                CExpr::Const(k) => {
                    let s1 = frame.bufs[load(i).buf].slice(load(i).idx.eval(env), n);
                    let d = dest.slice_mut(d0, n);
                    let (k, mul) = (*k, *op == BinOp::Mul);
                    if set {
                        for (dv, x) in d.iter_mut().zip(s1) {
                            *dv = if mul { x * k } else { x + k };
                        }
                    } else if a.op == AssignOp::Add {
                        for (dv, x) in d.iter_mut().zip(s1) {
                            *dv += if mul { x * k } else { x + k };
                        }
                    } else {
                        return false;
                    }
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

fn exec_gemm(g: &CGemm, env: &[i64], frame: &Frame, engine: &mut Gemm) {
    // Operand sizes are transpose-invariant (k*m == m*k).
    let a_need = g.m * g.k;
    let b_need = g.k * g.n;
    let a = frame.bufs[g.a.buf].slice(g.a.idx.eval(env), a_need);
    let b = frame.bufs[g.b.buf].slice(g.b.idx.eval(env), b_need);
    let c = frame.bufs[g.c.buf].slice_mut(g.c.idx.eval(env), g.m * g.n);
    let ta = if g.ta { Transpose::Yes } else { Transpose::No };
    let tb = if g.tb { Transpose::Yes } else { Transpose::No };
    engine.compute(ta, tb, g.m, g.n, g.k, a, b, c);
}

fn exec_copy(c: &CCopy, env: &[i64], frame: &Frame) {
    if let Some(table) = &c.programs {
        // Mixed-radix program lookup over the offset slots.
        let mut idx = 0usize;
        for (&slot, &ext) in table.slots.iter().zip(&table.extents) {
            idx = idx * ext + env[slot] as usize;
        }
        exec_copy_program(c, &table.programs[idx], frame);
        return;
    }
    let offsets: Vec<i64> = c.offsets.iter().map(|o| o.eval(env)).collect();
    if c.never_oob {
        exec_copy_fast(c, &offsets, frame);
        return;
    }
    exec_copy_clipped(c, &offsets, frame);
}

/// Executes a precompiled transfer program: the fastest path — every
/// clipping decision was made at lowering.
fn exec_copy_program(
    c: &CCopy,
    prog: &crate::lower::CopyProgram,
    frame: &Frame,
) {
    let dest = &frame.bufs[c.dest];
    let src = &frame.bufs[c.src];
    let contiguous = prog.s_step == 1 && prog.d_step == 1;
    if c.scatter {
        for r in &prog.runs {
            if r.len == 0 {
                continue;
            }
            let d0 = r.d_off + r.pre as i64 * prog.d_step;
            if contiguous {
                let d = dest.slice(d0, r.len as usize);
                let s = src.slice_mut(r.s_off, r.len as usize);
                for (sv, dv) in s.iter_mut().zip(d) {
                    *sv += dv;
                }
            } else {
                let (mut so, mut do_) = (r.s_off, d0);
                for _ in 0..r.len {
                    src.write(so, AssignOp::Add, dest.read(do_));
                    so += prog.s_step;
                    do_ += prog.d_step;
                }
            }
        }
    } else {
        for r in &prog.runs {
            let mut do_ = r.d_off;
            if prog.d_step == 1 {
                if r.pre > 0 {
                    dest.slice_mut(do_, r.pre as usize).fill(0.0);
                    do_ += r.pre as i64;
                }
                if r.len > 0 {
                    if prog.s_step == 1 {
                        let s = src.slice(r.s_off, r.len as usize);
                        dest.slice_mut(do_, r.len as usize).copy_from_slice(s);
                    } else {
                        let mut so = r.s_off;
                        let d = dest.slice_mut(do_, r.len as usize);
                        for dv in d {
                            *dv = src.read(so);
                            so += prog.s_step;
                        }
                    }
                    do_ += r.len as i64;
                }
                if r.post > 0 {
                    dest.slice_mut(do_, r.post as usize).fill(0.0);
                }
            } else {
                for _ in 0..r.pre {
                    dest.write(do_, AssignOp::Set, 0.0);
                    do_ += prog.d_step;
                }
                let mut so = r.s_off;
                for _ in 0..r.len {
                    dest.write(do_, AssignOp::Set, src.read(so));
                    so += prog.s_step;
                    do_ += prog.d_step;
                }
                for _ in 0..r.post {
                    dest.write(do_, AssignOp::Set, 0.0);
                    do_ += prog.d_step;
                }
            }
        }
    }
}

/// General copy with zero padding: an odometer over the outer dimensions
/// with incrementally maintained per-source-dimension indices; the
/// innermost dimension is clipped to its valid interval analytically
/// (every source index is affine in the inner counter).
#[allow(clippy::needless_range_loop)] // walks several parallel index arrays
fn exec_copy_clipped(c: &CCopy, offsets: &[i64], frame: &Frame) {
    let ndd = c.extents.len();
    let nsd = c.src_dims.len();
    let dest = &frame.bufs[c.dest];
    let src = &frame.bufs[c.src];
    let last = ndd - 1;
    let inner = c.extents[last] as i64;
    let d_step = c.dest_strides[last] as i64;
    let s_flat_step = c.flat_stride[last];

    // Per-source-dim index at the counter origin (g = offsets).
    let mut sidx = vec![0i64; nsd];
    for (s, si) in sidx.iter_mut().enumerate() {
        *si = c.src_base[s]
            + offsets
                .iter()
                .enumerate()
                .map(|(d, &o)| c.coefs[s][d] * o)
                .sum::<i64>();
    }
    let mut d_off: i64 = offsets
        .iter()
        .zip(&c.dest_strides)
        .map(|(&o, &st)| o * st as i64)
        .sum();
    // Maintain the flat source offset incrementally alongside sidx.
    let mut s_base: i64 = (0..nsd).map(|s| sidx[s] * c.src_strides[s] as i64).sum();

    let outer: usize = c.extents[..last].iter().product();
    let mut ctr = vec![0usize; last];
    for _ in 0..outer.max(1) {
        // Valid inner interval [lo, hi): intersect per-dimension
        // constraints 0 <= sidx[s] + coef*i < dims[s]. Coefficients are
        // almost always 0 or ±1, so divisions are the cold path.
        let mut lo = 0i64;
        let mut hi = inner;
        for s in 0..nsd {
            let coef = c.coefs[s][last];
            let v = sidx[s];
            let dim = c.src_dims[s] as i64;
            match coef {
                0 => {
                    if v < 0 || v >= dim {
                        hi = 0;
                        break;
                    }
                }
                1 => {
                    lo = lo.max(-v);
                    hi = hi.min(dim - v);
                }
                -1 => {
                    hi = hi.min(v + 1);
                    lo = lo.max(v - dim + 1);
                }
                coef if coef > 0 => {
                    lo = lo.max(div_ceil_i64(-v, coef));
                    hi = hi.min(div_ceil_i64(dim - v, coef));
                }
                coef => {
                    let nc = -coef;
                    hi = hi.min(v / nc + 1);
                    lo = lo.max(div_ceil_i64(v - dim + 1, nc));
                }
            }
        }
        let lo = lo.clamp(0, inner);
        let hi = hi.clamp(lo, inner);
        let s_off0: i64 = s_base;
        if c.scatter {
            if hi > lo {
                let (mut so, mut do_) = (s_off0 + lo * s_flat_step, d_off + lo * d_step);
                if s_flat_step == 1 && d_step == 1 {
                    let d = dest.slice(do_, (hi - lo) as usize);
                    let s = src.slice_mut(so, (hi - lo) as usize);
                    for (sv, dv) in s.iter_mut().zip(d) {
                        *sv += dv;
                    }
                } else {
                    for _ in lo..hi {
                        src.write(so, AssignOp::Add, dest.read(do_));
                        so += s_flat_step;
                        do_ += d_step;
                    }
                }
            }
        } else {
            // Pad, copy, pad.
            let mut do_ = d_off;
            for _ in 0..lo {
                dest.write(do_, AssignOp::Set, 0.0);
                do_ += d_step;
            }
            if hi > lo {
                if s_flat_step == 1 && d_step == 1 {
                    let s = src.slice(s_off0 + lo, (hi - lo) as usize);
                    dest.slice_mut(do_, (hi - lo) as usize).copy_from_slice(s);
                    do_ += hi - lo;
                } else {
                    let mut so = s_off0 + lo * s_flat_step;
                    for _ in lo..hi {
                        dest.write(do_, AssignOp::Set, src.read(so));
                        so += s_flat_step;
                        do_ += d_step;
                    }
                }
            }
            for _ in hi..inner {
                dest.write(do_, AssignOp::Set, 0.0);
                do_ += d_step;
            }
        }
        // Advance the outer odometer, updating sidx, s_base, and d_off.
        let mut d = last;
        while d > 0 {
            d -= 1;
            ctr[d] += 1;
            d_off += c.dest_strides[d] as i64;
            s_base += c.flat_stride[d];
            for s in 0..nsd {
                sidx[s] += c.coefs[s][d];
            }
            if ctr[d] < c.extents[d] {
                break;
            }
            ctr[d] = 0;
            d_off -= (c.dest_strides[d] * c.extents[d]) as i64;
            s_base -= c.flat_stride[d] * c.extents[d] as i64;
            for s in 0..nsd {
                sidx[s] -= c.coefs[s][d] * c.extents[d] as i64;
            }
        }
    }
}

#[inline]
fn div_ceil_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

/// Padding-free copy: walk destination and flat source offsets
/// incrementally with a mixed-radix counter; the innermost dimension is a
/// tight strided (or contiguous) run.
fn exec_copy_fast(c: &CCopy, offsets: &[i64], frame: &Frame) {
    let ndd = c.extents.len();
    let dest = &frame.bufs[c.dest];
    let src = &frame.bufs[c.src];
    let last = ndd - 1;
    let inner = c.extents[last];
    let s_step = c.flat_stride[last];
    let d_step = c.dest_strides[last] as i64;

    // Initial offsets at g = offsets (counter all-zero).
    let mut d_off: i64 = offsets
        .iter()
        .zip(&c.dest_strides)
        .map(|(&o, &s)| o * s as i64)
        .sum();
    let mut s_off: i64 = c.src_flat_base
        + offsets
            .iter()
            .zip(&c.flat_stride)
            .map(|(&o, &f)| o * f)
            .sum::<i64>();

    let outer: usize = c.extents[..last].iter().product();
    let mut ctr = vec![0usize; last];
    for _ in 0..outer.max(1) {
        // Innermost run.
        if c.scatter {
            if s_step == 1 && d_step == 1 {
                let d = dest.slice(d_off, inner);
                let s = src.slice_mut(s_off, inner);
                for (sv, dv) in s.iter_mut().zip(d) {
                    *sv += dv;
                }
            } else {
                let (mut so, mut do_) = (s_off, d_off);
                for _ in 0..inner {
                    src.write(so, AssignOp::Add, dest.read(do_));
                    so += s_step;
                    do_ += d_step;
                }
            }
        } else if s_step == 1 && d_step == 1 {
            let s = src.slice(s_off, inner);
            dest.slice_mut(d_off, inner).copy_from_slice(s);
        } else {
            let (mut so, mut do_) = (s_off, d_off);
            for _ in 0..inner {
                dest.write(do_, AssignOp::Set, src.read(so));
                so += s_step;
                do_ += d_step;
            }
        }
        // Advance the outer mixed-radix counter.
        let mut d = last;
        while d > 0 {
            d -= 1;
            ctr[d] += 1;
            s_off += c.flat_stride[d];
            d_off += c.dest_strides[d] as i64;
            if ctr[d] < c.extents[d] {
                break;
            }
            ctr[d] = 0;
            s_off -= c.flat_stride[d] * c.extents[d] as i64;
            d_off -= (c.dest_strides[d] * c.extents[d]) as i64;
        }
    }
}
fn exec_gather(g: &CGather, frame: &Frame) {
    let dest = &frame.bufs[g.dest];
    let src = &frame.bufs[g.src];
    if g.scatter {
        for (i, &t) in g.table.iter().enumerate() {
            if t >= 0 {
                src.write(t, AssignOp::Add, dest.read(i as i64));
            }
        }
    } else {
        for (i, &t) in g.table.iter().enumerate() {
            let v = if t >= 0 { src.read(t) } else { 0.0 };
            dest.write(i as i64, AssignOp::Set, v);
        }
    }
}
