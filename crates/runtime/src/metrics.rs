//! Evaluation helpers: classification over a trained executor.

use crate::error::RuntimeError;
use crate::exec::Executor;

/// Classifies `items` in batches through the executor and returns top-1
/// accuracy. `input` is the data ensemble name, `output` the prediction
/// buffer (e.g. `"fc8.value"`). When the network contains a loss layer
/// whose label ensemble is named `label`, dummy labels are fed so the
/// forward pass stays well defined; predictions do not depend on them.
///
/// Items that do not fill a final batch are skipped (as in Caffe's test
/// phase).
///
/// # Errors
///
/// Fails for unknown ensembles or buffers.
pub fn top1_accuracy(
    exec: &mut Executor,
    input: &str,
    output: &str,
    items: &[(Vec<f32>, f32)],
) -> Result<f32, RuntimeError> {
    let batch = exec.batch();
    let mut correct = 0usize;
    let mut total = 0usize;
    for chunk in items.chunks(batch) {
        if chunk.len() < batch {
            break;
        }
        let mut inputs = Vec::with_capacity(batch * chunk[0].0.len());
        for (x, _) in chunk {
            inputs.extend_from_slice(x);
        }
        exec.set_input(input, &inputs)?;
        let _ = exec.set_input("label", &vec![0.0; batch]);
        exec.forward();
        let out = exec.read_buffer(output)?;
        let classes = out.len() / batch;
        for (i, (_, label)) in chunk.iter().enumerate() {
            let row = &out[i * classes..(i + 1) * classes];
            let pred = argmax(row);
            if pred == *label as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    Ok(correct as f32 / total.max(1) as f32)
}

/// Index of the largest element (first on ties; 0 for empty input).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0, "first wins ties");
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }
}
