//! Evaluation helpers (classification over a trained executor) and the
//! fault-tolerance counter registry shared by the cluster simulation and
//! the training supervisor.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::RuntimeError;
use crate::exec::Executor;

/// Monotonic counters recording fault-tolerance events. Thread-safe;
/// share one instance (e.g. behind an `Arc`) between the supervisor,
/// the cluster simulation, and whoever reports the run.
#[derive(Debug, Default)]
pub struct FaultMetrics {
    /// Transfer retries after a timeout, drop, or corruption.
    pub retries: AtomicU64,
    /// Transfers that timed out or were dropped by fault injection.
    pub transfers_dropped: AtomicU64,
    /// Transfers whose payload failed its checksum (injected corruption).
    pub transfers_corrupted: AtomicU64,
    /// Nodes declared dead (crash or retry budget exhausted).
    pub nodes_failed: AtomicU64,
    /// Straggler detections (a node exceeding the rolling time estimate).
    pub stragglers_detected: AtomicU64,
    /// Iterations executed in the degraded (lossy, shrunken-ring) mode.
    pub degraded_iterations: AtomicU64,
    /// Checkpoints successfully written.
    pub checkpoints_saved: AtomicU64,
    /// Successful restores from a checkpoint.
    pub restores: AtomicU64,
    /// I/O errors observed (and survived) while checkpointing.
    pub io_errors: AtomicU64,
    /// Tensor-sentinel trips (a NaN/Inf found in a scanned buffer).
    pub sentinel_trips: AtomicU64,
    /// Iterations whose gradients were clipped (per-element or
    /// global-norm).
    pub grad_clips: AtomicU64,
    /// Iterations whose update was skipped because a parameter gradient
    /// was non-finite.
    pub grad_nonfinite_trips: AtomicU64,
    /// Loss anomalies classified by the health monitor (non-finite,
    /// spike, plateau).
    pub loss_anomalies: AtomicU64,
    /// Batches quarantined after producing a non-finite loss.
    pub batches_quarantined: AtomicU64,
    /// Rollbacks to the last good checkpoint triggered by a numerical
    /// anomaly (distinct from `restores` after process faults, though
    /// each rollback also performs a restore).
    pub rollbacks: AtomicU64,
    /// Learning-rate reductions applied by an anomaly policy.
    pub lr_reductions: AtomicU64,
    /// Per-node gradient contributions rejected by the all-reduce merge
    /// for being non-finite.
    pub gradients_rejected: AtomicU64,
    /// Transport frames re-sent (resend requests serviced after a drop,
    /// timeout, or CRC failure on the receiving side).
    pub send_retries: AtomicU64,
    /// Transport receives that exhausted their per-op deadline.
    pub timeouts: AtomicU64,
    /// Socket reconnect attempts after a broken connection.
    pub reconnects: AtomicU64,
    /// Peers evicted from the ring (retry budget exhausted, connection
    /// reset, or announced dead by another survivor).
    pub peers_evicted: AtomicU64,
    /// Training steps whose all-reduce ran in the lossy degraded mode.
    pub lossy_steps: AtomicU64,
    /// Gradient payload bytes folded by the ring reduce-scatter.
    pub bytes_reduced: AtomicU64,
}

/// A point-in-time copy of [`FaultMetrics`], comparable in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct FaultMetricsSnapshot {
    pub retries: u64,
    pub transfers_dropped: u64,
    pub transfers_corrupted: u64,
    pub nodes_failed: u64,
    pub stragglers_detected: u64,
    pub degraded_iterations: u64,
    pub checkpoints_saved: u64,
    pub restores: u64,
    pub io_errors: u64,
    pub sentinel_trips: u64,
    pub grad_clips: u64,
    pub grad_nonfinite_trips: u64,
    pub loss_anomalies: u64,
    pub batches_quarantined: u64,
    pub rollbacks: u64,
    pub lr_reductions: u64,
    pub gradients_rejected: u64,
    pub send_retries: u64,
    pub timeouts: u64,
    pub reconnects: u64,
    pub peers_evicted: u64,
    pub lossy_steps: u64,
    pub bytes_reduced: u64,
}

impl FaultMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to a counter (relaxed; counters are independent).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (for byte/amount counters).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> FaultMetricsSnapshot {
        FaultMetricsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            transfers_dropped: self.transfers_dropped.load(Ordering::Relaxed),
            transfers_corrupted: self.transfers_corrupted.load(Ordering::Relaxed),
            nodes_failed: self.nodes_failed.load(Ordering::Relaxed),
            stragglers_detected: self.stragglers_detected.load(Ordering::Relaxed),
            degraded_iterations: self.degraded_iterations.load(Ordering::Relaxed),
            checkpoints_saved: self.checkpoints_saved.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            sentinel_trips: self.sentinel_trips.load(Ordering::Relaxed),
            grad_clips: self.grad_clips.load(Ordering::Relaxed),
            grad_nonfinite_trips: self.grad_nonfinite_trips.load(Ordering::Relaxed),
            loss_anomalies: self.loss_anomalies.load(Ordering::Relaxed),
            batches_quarantined: self.batches_quarantined.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            lr_reductions: self.lr_reductions.load(Ordering::Relaxed),
            gradients_rejected: self.gradients_rejected.load(Ordering::Relaxed),
            send_retries: self.send_retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            peers_evicted: self.peers_evicted.load(Ordering::Relaxed),
            lossy_steps: self.lossy_steps.load(Ordering::Relaxed),
            bytes_reduced: self.bytes_reduced.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Display for FaultMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retries={} dropped={} corrupted={} nodes_failed={} stragglers={} \
             degraded_iters={} checkpoints={} restores={} io_errors={} \
             sentinel_trips={} grad_clips={} grad_nonfinite={} loss_anomalies={} \
             quarantined={} rollbacks={} lr_reductions={} grads_rejected={} \
             send_retries={} timeouts={} reconnects={} peers_evicted={} \
             lossy_steps={} bytes_reduced={}",
            self.retries,
            self.transfers_dropped,
            self.transfers_corrupted,
            self.nodes_failed,
            self.stragglers_detected,
            self.degraded_iterations,
            self.checkpoints_saved,
            self.restores,
            self.io_errors,
            self.sentinel_trips,
            self.grad_clips,
            self.grad_nonfinite_trips,
            self.loss_anomalies,
            self.batches_quarantined,
            self.rollbacks,
            self.lr_reductions,
            self.gradients_rejected,
            self.send_retries,
            self.timeouts,
            self.reconnects,
            self.peers_evicted,
            self.lossy_steps,
            self.bytes_reduced,
        )
    }
}

/// Classifies `items` in batches through the executor and returns top-1
/// accuracy. `input` is the data ensemble name, `output` the prediction
/// buffer (e.g. `"fc8.value"`). When the network contains a loss layer
/// whose label ensemble is named `label`, dummy labels are fed so the
/// forward pass stays well defined; predictions do not depend on them.
///
/// Items that do not fill a final batch are skipped (as in Caffe's test
/// phase).
///
/// # Errors
///
/// Fails for unknown ensembles or buffers.
pub fn top1_accuracy(
    exec: &mut Executor,
    input: &str,
    output: &str,
    items: &[(Vec<f32>, f32)],
) -> Result<f32, RuntimeError> {
    let batch = exec.batch();
    let mut correct = 0usize;
    let mut total = 0usize;
    for chunk in items.chunks(batch) {
        if chunk.len() < batch {
            break;
        }
        let mut inputs = Vec::with_capacity(batch * chunk[0].0.len());
        for (x, _) in chunk {
            inputs.extend_from_slice(x);
        }
        exec.set_input(input, &inputs)?;
        let _ = exec.set_input("label", &vec![0.0; batch]);
        exec.forward();
        let out = exec.read_buffer(output)?;
        let classes = out.len() / batch;
        for (i, (_, label)) in chunk.iter().enumerate() {
            let row = &out[i * classes..(i + 1) * classes];
            let pred = argmax(row);
            if pred == *label as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    Ok(correct as f32 / total.max(1) as f32)
}

/// Index of the largest element (first on ties; 0 for empty input).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_metrics_count_and_snapshot() {
        let m = FaultMetrics::new();
        FaultMetrics::bump(&m.retries);
        FaultMetrics::bump(&m.retries);
        FaultMetrics::bump(&m.nodes_failed);
        FaultMetrics::bump(&m.sentinel_trips);
        FaultMetrics::bump(&m.batches_quarantined);
        FaultMetrics::bump(&m.send_retries);
        FaultMetrics::bump(&m.peers_evicted);
        FaultMetrics::add(&m.bytes_reduced, 4096);
        let snap = m.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.nodes_failed, 1);
        assert_eq!(snap.transfers_dropped, 0);
        assert_eq!(snap.sentinel_trips, 1);
        assert_eq!(snap.batches_quarantined, 1);
        assert_eq!(snap.gradients_rejected, 0);
        assert_eq!(snap.send_retries, 1);
        assert_eq!(snap.timeouts, 0);
        assert_eq!(snap.peers_evicted, 1);
        assert_eq!(snap.bytes_reduced, 4096);
        let text = snap.to_string();
        assert!(text.contains("retries=2") && text.contains("nodes_failed=1"));
        assert!(text.contains("sentinel_trips=1") && text.contains("quarantined=1"));
        assert!(text.contains("peers_evicted=1") && text.contains("bytes_reduced=4096"));
    }

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0, "first wins ties");
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }
}
