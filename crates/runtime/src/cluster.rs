//! Cluster-level data parallelism as a discrete-event simulation
//! (the paper's Section 6 and Figures 18–19).
//!
//! No MPI cluster exists in this environment, so the *machines* are
//! modeled while the *algorithm* is reproduced exactly: gradient
//! summation over model replicas, with each layer's asynchronous
//! all-reduce (`MPI_Iallreduce`, modeled as a ring) initiated the moment
//! its backward completes and overlapped with the remaining
//! back-propagation — the mechanism the paper credits for its scaling
//! ("as soon as a gradient is computed, Latte initiates asynchronous
//! communication ... and then continues computing more gradients").
//!
//! Per-layer compute times come from *measured* single-node executor
//! profiles (see [`crate::exec::Executor::backward_timed`]); the network
//! is a latency/bandwidth model with a single NIC per node (transfers
//! serialize).
//!
//! [`simulate_run`] extends the fault-free [`simulate_iteration`] to a
//! multi-iteration simulation under an injected [`FaultPlan`]: transfers
//! time out and are retried with bounded exponential backoff, stragglers
//! are detected against a rolling per-layer time estimate, and when a
//! node is declared dead the run degrades from synchronized all-reduce
//! to the paper's lossy unsynchronized mode over the surviving nodes.

use crate::error::RuntimeError;
use crate::fault::{FaultPlan, TransferFault};
use crate::health::scan_slice;
use crate::metrics::FaultMetrics;

/// Merges per-node gradient contributions into their mean, **rejecting**
/// any contribution containing a non-finite value — the containment half
/// of the degraded all-reduce. Summing one NaN into the ring would
/// poison every replica within a single iteration, so a poisoned
/// contribution is dropped entirely (and counted in
/// [`FaultMetrics::gradients_rejected`]) rather than merged.
///
/// Returns the element-wise mean over the **accepted** contributions and
/// the indices of the rejected ones. When every contribution is rejected
/// the merged gradient is all zeros: a skipped update is the only safe
/// aggregate of exclusively-poisoned inputs.
///
/// # Errors
///
/// [`RuntimeError::InvalidConfig`] when `contributions` is empty or the
/// contributions disagree on length.
pub fn merge_finite_gradients(
    contributions: &[&[f32]],
    metrics: &FaultMetrics,
) -> Result<(Vec<f32>, Vec<usize>), RuntimeError> {
    let first = contributions.first().ok_or_else(|| RuntimeError::InvalidConfig {
        detail: "all-reduce needs at least one gradient contribution".into(),
    })?;
    let len = first.len();
    let mut accepted = Vec::with_capacity(contributions.len());
    let mut rejected = Vec::new();
    for (node, c) in contributions.iter().enumerate() {
        if c.len() != len {
            return Err(RuntimeError::InvalidConfig {
                detail: format!(
                    "all-reduce contribution from node {node} has {} elements, \
                     the ring agreed on {len}",
                    c.len()
                ),
            });
        }
        // Exhaustive scan: a single hidden NaN is enough to poison the
        // merge, so sampling is not an option here.
        if scan_slice(c, 1).is_some() {
            rejected.push(node);
            FaultMetrics::bump(&metrics.gradients_rejected);
        } else {
            accepted.push(node);
        }
    }
    let mut merged = vec![0.0f32; len];
    if accepted.is_empty() {
        return Ok((merged, rejected));
    }
    for &node in &accepted {
        for (m, &g) in merged.iter_mut().zip(contributions[node]) {
            *m += g;
        }
    }
    let scale = 1.0 / accepted.len() as f32;
    for m in &mut merged {
        *m *= scale;
    }
    Ok((merged, rejected))
}

/// A network fabric model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Per-node injection bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Cray-Aries-like ("dragonfly") parameters for the Cori evaluation.
    pub fn aries_like() -> Self {
        NetworkModel {
            latency: 1.5e-6,
            bandwidth: 8e9,
        }
    }

    /// FDR-InfiniBand-like parameters for the commodity cluster.
    pub fn infiniband_like() -> Self {
        NetworkModel {
            latency: 3e-6,
            bandwidth: 6e9,
        }
    }

    /// Ring all-reduce time for `bytes` across `nodes`:
    /// `2(N-1)` steps of `bytes/N` plus per-step latency.
    pub fn allreduce_time(&self, bytes: f64, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        2.0 * (n - 1.0) * (self.latency + bytes / n / self.bandwidth)
    }
}

/// One layer's contribution to an iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Group name (diagnostic).
    pub name: String,
    /// Forward milliseconds per *item* on one node.
    pub fwd_ms_per_item: f64,
    /// Backward milliseconds per item on one node.
    pub bwd_ms_per_item: f64,
    /// Fixed per-batch overhead milliseconds (copies, kernel setup) —
    /// this is what makes small per-node batches less efficient, the
    /// effect behind the Figure-18 efficiency droop.
    pub fixed_ms: f64,
    /// Gradient bytes this layer contributes to the all-reduce.
    pub grad_bytes: f64,
}

/// The cluster being simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Fabric model.
    pub network: NetworkModel,
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Pure compute milliseconds (forward + backward on one node).
    pub compute_ms: f64,
    /// Total communication milliseconds (all layers' all-reduces).
    pub comm_ms: f64,
    /// Communication *not* hidden behind backward compute.
    pub exposed_comm_ms: f64,
    /// End-to-end iteration milliseconds.
    pub total_ms: f64,
}

impl IterationReport {
    /// Images per second for a global batch.
    pub fn throughput(&self, global_batch: usize) -> f64 {
        global_batch as f64 / (self.total_ms / 1e3)
    }
}

/// Simulates one data-parallel iteration.
///
/// `layers` are in *forward* order; backward runs them in reverse, and
/// each layer's gradient all-reduce is enqueued on the NIC the moment its
/// backward finishes.
pub fn simulate_iteration(
    spec: &ClusterSpec,
    layers: &[LayerProfile],
    per_node_batch: usize,
) -> IterationReport {
    let items = per_node_batch as f64;
    let fwd_ms: f64 = layers
        .iter()
        .map(|l| l.fixed_ms + l.fwd_ms_per_item * items)
        .sum();
    // Backward with overlapped communication: single NIC, FIFO.
    let mut t = fwd_ms;
    let mut nic_free = fwd_ms;
    let mut comm_ms = 0.0;
    for l in layers.iter().rev() {
        t += l.fixed_ms + l.bwd_ms_per_item * items;
        let ar = spec
            .network
            .allreduce_time(l.grad_bytes, spec.nodes)
            * 1e3;
        comm_ms += ar;
        let start = t.max(nic_free);
        nic_free = start + ar;
    }
    let total = t.max(nic_free);
    IterationReport {
        compute_ms: fwd_ms + (t - fwd_ms),
        comm_ms,
        exposed_comm_ms: (nic_free - t).max(0.0),
        total_ms: total,
    }
}

/// Recovery policy for the fault-aware simulation ([`simulate_run`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Milliseconds a receiver waits for a transfer before declaring it
    /// dropped and requesting a retransmit.
    pub transfer_timeout_ms: f64,
    /// Retransmits allowed per transfer before the sender is declared
    /// dead.
    pub max_retries: u32,
    /// First-retry backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: f64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: f64,
    /// A node is flagged as a straggler when one of its per-layer times
    /// exceeds the rolling estimate by this factor (> 1).
    pub straggler_threshold: f64,
    /// Iterations observed before straggler detection arms (the rolling
    /// estimate needs history).
    pub straggler_grace_iters: usize,
    /// EWMA weight of the newest observation in the rolling per-layer
    /// estimate, in `(0, 1]`.
    pub ewma_alpha: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            transfer_timeout_ms: 5.0,
            max_retries: 3,
            backoff_base_ms: 1.0,
            backoff_cap_ms: 50.0,
            straggler_threshold: 2.0,
            straggler_grace_iters: 2,
            ewma_alpha: 0.3,
        }
    }
}

impl FaultPolicy {
    /// Rejects self-contradictory policies.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] when a bound is degenerate.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let bad = |detail: &str| {
            Err(RuntimeError::InvalidConfig {
                detail: detail.to_string(),
            })
        };
        if self.transfer_timeout_ms <= 0.0 {
            return bad("fault policy: transfer timeout must be positive");
        }
        if self.max_retries == 0 {
            return bad("fault policy: at least one retry is required");
        }
        if self.backoff_base_ms < 0.0 || self.backoff_cap_ms < self.backoff_base_ms {
            return bad("fault policy: backoff cap must be >= base >= 0");
        }
        if self.straggler_threshold <= 1.0 {
            return bad("fault policy: straggler threshold must exceed 1");
        }
        if self.ewma_alpha.is_nan() || self.ewma_alpha <= 0.0 || self.ewma_alpha > 1.0 {
            return bad("fault policy: EWMA weight must be in (0, 1]");
        }
        Ok(())
    }

    /// Backoff before retry `attempt` (0-based): base doubled per
    /// attempt, clamped to the cap.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        let exp = attempt.min(52);
        (self.backoff_base_ms * (1u64 << exp) as f64).min(self.backoff_cap_ms)
    }
}

/// All-reduce synchronization mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Every live node contributes to every gradient sum; the slowest
    /// node gates the iteration.
    Synchronized,
    /// The paper's lossy unsynchronized mode over a shrunken participant
    /// set: nodes proceed without a barrier, so stragglers and dead
    /// nodes no longer gate progress (at the cost of stale gradients).
    LossyDegraded,
}

/// What happened during one simulated iteration of a faulty run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyIterationReport {
    /// Iteration index.
    pub iter: usize,
    /// End-to-end iteration milliseconds.
    pub total_ms: f64,
    /// Pure all-reduce milliseconds (excluding retry penalties).
    pub comm_ms: f64,
    /// Communication (and retry penalty) not hidden behind compute.
    pub exposed_comm_ms: f64,
    /// Milliseconds lost to timeouts and backoff this iteration.
    pub retry_penalty_ms: f64,
    /// Synchronization mode the iteration ran in.
    pub mode: SyncMode,
    /// Nodes participating in the all-reduce ring.
    pub live_nodes: usize,
    /// Nodes declared dead during this iteration (crash or exhausted
    /// retry budget); they leave the ring at the next iteration.
    pub newly_dead: Vec<usize>,
    /// Nodes currently flagged as stragglers.
    pub stragglers: Vec<usize>,
}

/// Result of a multi-iteration fault-aware simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRunReport {
    /// Per-iteration traces, in order.
    pub iterations: Vec<FaultyIterationReport>,
    /// Nodes still alive at the end.
    pub live_nodes: usize,
    /// Mode the run finished in.
    pub final_mode: SyncMode,
}

impl ClusterRunReport {
    /// Wall-clock milliseconds across every iteration.
    pub fn total_ms(&self) -> f64 {
        self.iterations.iter().map(|r| r.total_ms).sum()
    }
}

/// Simulates `iters` data-parallel iterations under an injected
/// [`FaultPlan`], applying `policy` for recovery and recording event
/// counts into `metrics`.
///
/// Failure semantics:
///
/// - A [`crate::fault::Fault::NodeCrash`] removes the node at the start
///   of its iteration; the run degrades to [`SyncMode::LossyDegraded`]
///   over the surviving ring.
/// - Dropped/corrupted transfers cost a timeout (drops only — corruption
///   is detected on arrival) plus exponential backoff per retry; a
///   transfer exceeding `policy.max_retries` marks its sender dead at
///   the end of the iteration.
/// - A [`crate::fault::Fault::GradPoison`] makes a node's gradient
///   contribution non-finite: the all-reduce rejects the contribution
///   (counted in [`FaultMetrics::gradients_rejected`], see
///   [`merge_finite_gradients`]) and evicts the sender at the end of
///   the iteration.
/// - Straggler detection compares each node's per-layer compute time
///   against a rolling EWMA estimate; flagged nodes are reported (and
///   counted once per slow phase) but keep participating — in
///   synchronized mode they gate the iteration, in degraded mode they
///   do not.
///
/// # Errors
///
/// [`RuntimeError::InvalidConfig`] for an invalid policy, an empty
/// cluster, or an empty layer list.
pub fn simulate_run(
    spec: &ClusterSpec,
    layers: &[LayerProfile],
    per_node_batch: usize,
    iters: usize,
    plan: &FaultPlan,
    policy: &FaultPolicy,
    metrics: &FaultMetrics,
) -> Result<ClusterRunReport, RuntimeError> {
    policy.validate()?;
    if spec.nodes == 0 {
        return Err(RuntimeError::InvalidConfig {
            detail: "cluster must have at least one node".into(),
        });
    }
    if layers.is_empty() {
        return Err(RuntimeError::InvalidConfig {
            detail: "cluster simulation needs at least one layer".into(),
        });
    }
    let items = per_node_batch as f64;
    let mut alive = vec![true; spec.nodes];
    let mut straggling = vec![false; spec.nodes];
    let mut mode = SyncMode::Synchronized;
    // Rolling per-layer estimate of a healthy node's fwd+bwd time.
    let mut layer_est: Vec<Option<f64>> = vec![None; layers.len()];
    let mut reports = Vec::with_capacity(iters);

    for iter in 0..iters {
        let mut newly_dead = Vec::new();
        for (node, up) in alive.iter_mut().enumerate() {
            if *up && plan.crashed_by(node, iter) {
                *up = false;
                newly_dead.push(node);
                FaultMetrics::bump(&metrics.nodes_failed);
            }
        }
        let live: Vec<usize> = (0..spec.nodes).filter(|&n| alive[n]).collect();
        if live.is_empty() {
            // Every node is gone; nothing further can execute.
            break;
        }
        if live.len() < spec.nodes {
            mode = SyncMode::LossyDegraded;
        }

        // Per-live-node, per-layer compute (fwd + bwd) with straggler
        // slowdown applied.
        let node_layer_ms: Vec<Vec<f64>> = live
            .iter()
            .map(|&n| {
                let factor = plan.straggle_factor(n, iter);
                layers
                    .iter()
                    .map(|l| {
                        (2.0 * l.fixed_ms + (l.fwd_ms_per_item + l.bwd_ms_per_item) * items)
                            * factor
                    })
                    .collect()
            })
            .collect();

        // Straggler detection against the rolling per-layer estimate.
        let mut stragglers = Vec::new();
        if iter >= policy.straggler_grace_iters {
            for (li, &n) in live.iter().enumerate() {
                let slow = layer_est.iter().enumerate().any(|(l, est)| {
                    est.map(|e| node_layer_ms[li][l] > policy.straggler_threshold * e)
                        .unwrap_or(false)
                });
                if slow {
                    if !straggling[n] {
                        straggling[n] = true;
                        FaultMetrics::bump(&metrics.stragglers_detected);
                    }
                    stragglers.push(n);
                } else {
                    straggling[n] = false;
                }
            }
        }

        // Retry penalties from injected transfer faults, per layer.
        // A node whose faults exceed the retry budget is declared dead at
        // the end of the iteration (the ring shrinks from the next one).
        let ring = live.len();
        let mut layer_penalty_ms = vec![0.0; layers.len()];
        let mut retry_penalty_ms = 0.0;
        for (l, _) in layers.iter().enumerate() {
            for &n in &live {
                let faults = plan.transfer_faults(n, iter, l);
                if faults.is_empty() {
                    continue;
                }
                if faults.len() as u32 > policy.max_retries {
                    // Budget exhausted: give up on this sender.
                    if !newly_dead.contains(&n) {
                        alive[n] = false;
                        newly_dead.push(n);
                        FaultMetrics::bump(&metrics.nodes_failed);
                    }
                }
                for (attempt, fault) in faults.iter().enumerate() {
                    if attempt as u32 >= policy.max_retries {
                        break;
                    }
                    let detect_ms = match fault {
                        TransferFault::Dropped => {
                            FaultMetrics::bump(&metrics.transfers_dropped);
                            policy.transfer_timeout_ms
                        }
                        TransferFault::Corrupted => {
                            FaultMetrics::bump(&metrics.transfers_corrupted);
                            0.0
                        }
                    };
                    FaultMetrics::bump(&metrics.retries);
                    let penalty = detect_ms + policy.backoff_ms(attempt as u32);
                    layer_penalty_ms[l] += penalty;
                    retry_penalty_ms += penalty;
                }
            }
        }

        // Non-finite gradient contributions (injected numerical poison)
        // are rejected by the all-reduce instead of merged — see
        // [`merge_finite_gradients`] — and the sender is evicted like
        // any other faulty node: a replica producing NaNs once cannot
        // be trusted to stop.
        for &n in &live {
            if plan.grad_poisoned(n, iter) {
                FaultMetrics::bump(&metrics.gradients_rejected);
                if !newly_dead.contains(&n) {
                    alive[n] = false;
                    newly_dead.push(n);
                    FaultMetrics::bump(&metrics.nodes_failed);
                }
            }
        }

        // Timing. Synchronized: the slowest live node gates every layer,
        // NIC FIFO overlap as in `simulate_iteration`. Degraded (lossy,
        // unsynchronized): no barrier, so the iteration advances at the
        // *mean* live-node pace and communication overlaps fully except
        // for NIC saturation.
        let comm_per_layer: Vec<f64> = layers
            .iter()
            .map(|l| spec.network.allreduce_time(l.grad_bytes, ring) * 1e3)
            .collect();
        let comm_ms: f64 = comm_per_layer.iter().sum();
        let report = match mode {
            SyncMode::Synchronized => {
                let max_layer = |l: usize| {
                    (0..live.len())
                        .map(|li| node_layer_ms[li][l])
                        .fold(0.0f64, f64::max)
                };
                // Forward is modeled as a fixed share of each layer's
                // combined time; the NIC schedule only depends on the
                // backward suffix, so split by the profile's fwd share.
                let mut t = 0.0;
                for (l, layer) in layers.iter().enumerate() {
                    t += max_layer(l) * fwd_share(layer, items);
                }
                let mut nic_free = t;
                for l in (0..layers.len()).rev() {
                    let share = 1.0 - fwd_share(&layers[l], items);
                    t += max_layer(l) * share;
                    let start = t.max(nic_free);
                    nic_free = start + comm_per_layer[l] + layer_penalty_ms[l];
                }
                FaultyIterationReport {
                    iter,
                    total_ms: t.max(nic_free),
                    comm_ms,
                    exposed_comm_ms: (nic_free - t).max(0.0),
                    retry_penalty_ms,
                    mode,
                    live_nodes: ring,
                    newly_dead: newly_dead.clone(),
                    stragglers: stragglers.clone(),
                }
            }
            SyncMode::LossyDegraded => {
                FaultMetrics::bump(&metrics.degraded_iterations);
                let mean_compute: f64 = node_layer_ms
                    .iter()
                    .map(|ls| ls.iter().sum::<f64>())
                    .sum::<f64>()
                    / live.len() as f64;
                let nic_busy = comm_ms + retry_penalty_ms;
                FaultyIterationReport {
                    iter,
                    total_ms: mean_compute.max(nic_busy),
                    comm_ms,
                    exposed_comm_ms: (nic_busy - mean_compute).max(0.0),
                    retry_penalty_ms,
                    mode,
                    live_nodes: ring,
                    newly_dead: newly_dead.clone(),
                    stragglers: stragglers.clone(),
                }
            }
        };

        // Fold healthy observations into the rolling estimate: the
        // *median* live node, so stragglers do not poison the baseline.
        for (l, est) in layer_est.iter_mut().enumerate() {
            let mut obs: Vec<f64> = (0..live.len()).map(|li| node_layer_ms[li][l]).collect();
            obs.sort_by(|a, b| a.total_cmp(b));
            let median = obs[obs.len() / 2];
            *est = Some(match est {
                Some(e) => policy.ewma_alpha * median + (1.0 - policy.ewma_alpha) * *e,
                None => median,
            });
        }
        if !newly_dead.is_empty() {
            mode = SyncMode::LossyDegraded;
        }
        reports.push(report);
    }

    Ok(ClusterRunReport {
        live_nodes: alive.iter().filter(|a| **a).count(),
        final_mode: mode,
        iterations: reports,
    })
}

/// Fraction of a layer's combined (fwd + bwd) time spent in forward.
fn fwd_share(l: &LayerProfile, items: f64) -> f64 {
    let fwd = l.fixed_ms + l.fwd_ms_per_item * items;
    let both = 2.0 * l.fixed_ms + (l.fwd_ms_per_item + l.bwd_ms_per_item) * items;
    if both <= 0.0 {
        0.5
    } else {
        fwd / both
    }
}

/// A strong-scaling sweep (fixed global batch split across nodes; the
/// Figure-18 Cori experiment). Returns `(nodes, throughput, efficiency)`
/// rows; efficiency is relative to perfect linear scaling of the
/// single-node throughput.
pub fn strong_scaling(
    network: NetworkModel,
    layers: &[LayerProfile],
    global_batch: usize,
    node_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    let base = simulate_iteration(
        &ClusterSpec { nodes: 1, network },
        layers,
        global_batch,
    )
    .throughput(global_batch);
    node_counts
        .iter()
        .map(|&n| {
            let per_node = (global_batch / n).max(1);
            let rep = simulate_iteration(&ClusterSpec { nodes: n, network }, layers, per_node);
            let thr = rep.throughput(per_node * n);
            (n, thr, thr / (base * n as f64))
        })
        .collect()
}

/// A weak-scaling sweep (fixed per-node batch; the Figure-19 commodity
/// cluster experiment). Returns `(nodes, throughput, efficiency)` rows.
pub fn weak_scaling(
    network: NetworkModel,
    layers: &[LayerProfile],
    per_node_batch: usize,
    node_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    let base = simulate_iteration(
        &ClusterSpec { nodes: 1, network },
        layers,
        per_node_batch,
    )
    .throughput(per_node_batch);
    node_counts
        .iter()
        .map(|&n| {
            let rep =
                simulate_iteration(&ClusterSpec { nodes: n, network }, layers, per_node_batch);
            let thr = rep.throughput(per_node_batch * n);
            (n, thr, thr / (base * n as f64))
        })
        .collect()
}

/// Builds *analytic* layer profiles at the paper's published model scale:
/// per-layer times from floating-point operation counts at an assumed
/// effective node throughput, gradient bytes from exact parameter counts.
/// Used to project cluster behaviour in the regime the paper measured
/// (full-width models, where communication is substantial) without
/// needing hours of single-core measurement.
///
/// Each entry of `layers` is `(name, fwd_flops_per_item, param_count)`.
///
/// `serial_items` models the many-core node's loss of parallel
/// efficiency at small batches (the paper attributes the Figure-18 droop
/// to "a reduction in the amount of available parallelism"): each layer
/// pass carries a fixed cost equivalent to processing `serial_items`
/// additional items, so per-node efficiency is roughly
/// `items / (items + serial_items)`.
pub fn analytic_profiles(
    layers: &[(String, f64, f64)],
    node_gflops: f64,
    serial_items: f64,
) -> Vec<LayerProfile> {
    layers
        .iter()
        .map(|(name, flops, params)| {
            let fwd = flops / (node_gflops * 1e9) * 1e3;
            LayerProfile {
                name: name.clone(),
                fwd_ms_per_item: fwd,
                // Backward is roughly 2x forward (two GEMMs per layer).
                bwd_ms_per_item: 2.0 * fwd,
                // Split across the two phases (simulate adds it twice).
                fixed_ms: serial_items * 1.5 * fwd,
                grad_bytes: params * 4.0,
            }
        })
        .collect()
}

/// Builds layer profiles from measured per-group forward/backward times
/// (see `Executor::forward_timed`), distributing gradient bytes by the
/// ensembles named in each backward group.
pub fn profiles_from_measurements(
    fwd: &[(String, f64)],
    bwd: &[(String, f64)],
    batch: usize,
    grad_bytes_by_group: impl Fn(&str) -> f64,
    fixed_fraction: f64,
) -> Vec<LayerProfile> {
    // Pair forward groups with backward groups by position from the ends
    // (backward runs in reverse order and may have fewer groups — e.g.
    // data layers have no backward).
    let items = batch as f64;
    fwd.iter()
        .enumerate()
        .map(|(i, (name, f_ms))| {
            let b_ms = bwd
                .iter()
                .rev()
                .nth(i)
                .map(|(_, m)| *m)
                .unwrap_or(0.0);
            LayerProfile {
                name: name.clone(),
                fwd_ms_per_item: f_ms * (1.0 - fixed_fraction) / items,
                bwd_ms_per_item: b_ms * (1.0 - fixed_fraction) / items,
                fixed_ms: (f_ms + b_ms) * fixed_fraction,
                grad_bytes: grad_bytes_by_group(name),
            }
        })
        .collect()
}

/// Serial reference for synchronized data-parallel training: trains
/// `shards.len()`-many steps on one executor, evaluating every replica's
/// shard from the same master weights, merging each gradient bucket with
/// [`crate::ring::reference_allreduce`] (the exact association the real
/// ring uses), and applying one solver step to the merged gradients.
///
/// This is the numeric oracle for [`crate::dist::DistTrainer`]: a
/// synchronized distributed run over `k` ranks must produce
/// **bit-identical** parameters to this loop over `k` replicas, because
/// both fold contributions in rotated ring order and scale by the same
/// `1/k` multiplication.
///
/// `shards[step][replica]` is the batch replica `replica` consumes at
/// `step`. Returns per-step, per-replica losses. The executor is left
/// holding the final merged parameters.
///
/// # Errors
///
/// [`RuntimeError::InvalidConfig`] when a step has no replicas, plus any
/// executor input/buffer errors.
pub fn train_replicated(
    exec: &mut crate::exec::Executor,
    solver: &mut dyn crate::solver::Solver,
    shards: &[Vec<crate::data::Batch>],
) -> Result<Vec<Vec<f32>>, RuntimeError> {
    let buckets = exec.grad_buckets();
    let grad_names: Vec<Vec<String>> = buckets
        .iter()
        .map(|b| {
            b.params
                .iter()
                .map(|&pi| exec.params()[pi].grad.clone())
                .collect()
        })
        .collect();
    let param_values: Vec<String> = exec.params().iter().map(|p| p.value.clone()).collect();
    let read_params = |exec: &crate::exec::Executor| -> Result<Vec<Vec<f32>>, RuntimeError> {
        param_values.iter().map(|n| exec.read_buffer(n)).collect()
    };
    let mut master = read_params(exec)?;
    let mut losses = Vec::with_capacity(shards.len());
    for replicas in shards {
        if replicas.is_empty() {
            return Err(RuntimeError::InvalidConfig {
                detail: "train_replicated: a step needs at least one replica shard".into(),
            });
        }
        let mut contribs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); buckets.len()];
        let mut step_losses = Vec::with_capacity(replicas.len());
        for batch in replicas {
            for (name, value) in param_values.iter().zip(&master) {
                exec.write_buffer(name, value)?;
            }
            for (ensemble, data) in batch {
                exec.set_input(ensemble, data)?;
            }
            exec.forward();
            step_losses.push(exec.loss());
            exec.backward();
            for (bi, names) in grad_names.iter().enumerate() {
                let mut flat = Vec::new();
                for n in names {
                    flat.extend(exec.read_buffer(n)?);
                }
                contribs[bi].push(flat);
            }
        }
        // Restore master weights (the last replica's forward may have
        // touched nothing, but be explicit), install the merged
        // gradients, and take one optimizer step.
        for (name, value) in param_values.iter().zip(&master) {
            exec.write_buffer(name, value)?;
        }
        for (bi, names) in grad_names.iter().enumerate() {
            let merged = crate::ring::reference_allreduce(&contribs[bi]);
            let mut at = 0;
            for n in names {
                let len = exec.read_buffer(n)?.len();
                exec.write_buffer(n, &merged[at..at + len])?;
                at += len;
            }
        }
        solver.step(exec);
        master = read_params(exec)?;
        losses.push(step_losses);
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_like_layers() -> Vec<LayerProfile> {
        // Coarse VGG-ish: heavy convs with small gradients, light FCs
        // with huge gradients.
        let mut layers = Vec::new();
        for (i, (fwd, bwd, mb)) in [
            (4.0, 8.0, 0.15),
            (3.0, 6.0, 0.3),
            (2.5, 5.0, 2.3),
            (2.0, 4.0, 9.4),
            (1.0, 2.0, 9.4),
            (0.6, 1.2, 400.0),
            (0.2, 0.4, 64.0),
            (0.1, 0.2, 16.0),
        ]
        .into_iter()
        .enumerate()
        {
            layers.push(LayerProfile {
                name: format!("layer{i}"),
                fwd_ms_per_item: fwd / 10.0,
                bwd_ms_per_item: bwd / 10.0,
                fixed_ms: 0.4,
                grad_bytes: mb * 1e6,
            });
        }
        layers
    }

    #[test]
    fn single_node_has_no_communication() {
        let rep = simulate_iteration(
            &ClusterSpec {
                nodes: 1,
                network: NetworkModel::aries_like(),
            },
            &vgg_like_layers(),
            64,
        );
        assert_eq!(rep.comm_ms, 0.0);
        assert_eq!(rep.exposed_comm_ms, 0.0);
    }

    #[test]
    fn weak_scaling_is_near_linear() {
        // Figure 19's claim: constant communication cost as nodes grow,
        // ~84% efficiency at 32 nodes.
        let rows = weak_scaling(
            NetworkModel::infiniband_like(),
            &vgg_like_layers(),
            64,
            &[1, 2, 4, 8, 16, 32],
        );
        let eff32 = rows.last().unwrap().2;
        assert!(eff32 > 0.7, "weak-scaling efficiency at 32 nodes: {eff32}");
        // Efficiency roughly flat: ring all-reduce cost saturates.
        let eff2 = rows[1].2;
        assert!((eff2 - eff32).abs() < 0.25, "{eff2} vs {eff32}");
    }

    #[test]
    fn strong_scaling_droops_at_small_batches() {
        // Figure 18's claim: efficiency drops as per-node batch shrinks.
        let rows = strong_scaling(
            NetworkModel::aries_like(),
            &vgg_like_layers(),
            512,
            &[1, 2, 4, 8, 16, 32, 64],
        );
        let eff: Vec<f64> = rows.iter().map(|r| r.2).collect();
        assert!(eff[0] > 0.99);
        assert!(
            eff.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "monotone droop: {eff:?}"
        );
        assert!(eff[6] < 0.9, "64-node efficiency must droop: {}", eff[6]);
        assert!(eff[6] > 0.1, "but not collapse entirely: {}", eff[6]);
        // At moderate node counts the droop is mild (the paper's curve
        // stays near-linear through 8 nodes).
        assert!(eff[3] > 0.6, "8-node efficiency: {}", eff[3]);
    }

    #[test]
    fn overlap_hides_most_communication() {
        let spec = ClusterSpec {
            nodes: 16,
            network: NetworkModel::infiniband_like(),
        };
        let rep = simulate_iteration(&spec, &vgg_like_layers(), 64);
        assert!(
            rep.exposed_comm_ms < rep.comm_ms * 0.6,
            "exposed {} of {}",
            rep.exposed_comm_ms,
            rep.comm_ms
        );
    }

    #[test]
    fn fault_free_run_matches_single_iteration_model() {
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let layers = vgg_like_layers();
        let metrics = FaultMetrics::new();
        let run = simulate_run(
            &spec,
            &layers,
            64,
            5,
            &FaultPlan::none(),
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        let one = simulate_iteration(&spec, &layers, 64);
        assert_eq!(run.iterations.len(), 5);
        assert_eq!(run.final_mode, SyncMode::Synchronized);
        assert_eq!(run.live_nodes, 4);
        for r in &run.iterations {
            assert!(
                (r.total_ms - one.total_ms).abs() < 1e-6,
                "faulty sim must reduce to the fault-free model: {} vs {}",
                r.total_ms,
                one.total_ms
            );
            assert!(r.stragglers.is_empty() && r.newly_dead.is_empty());
        }
        assert_eq!(metrics.snapshot(), Default::default());
    }

    #[test]
    fn node_crash_degrades_to_lossy_over_survivors() {
        use crate::fault::Fault;
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let metrics = FaultMetrics::new();
        let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 2, iter: 3 }]);
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            8,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        assert_eq!(run.iterations[2].mode, SyncMode::Synchronized);
        assert_eq!(run.iterations[2].live_nodes, 4);
        assert_eq!(run.iterations[3].newly_dead, vec![2]);
        assert_eq!(run.iterations[3].mode, SyncMode::LossyDegraded);
        assert_eq!(run.iterations[3].live_nodes, 3, "ring excludes the dead node");
        assert_eq!(run.iterations[7].live_nodes, 3);
        assert_eq!(run.live_nodes, 3);
        assert_eq!(run.final_mode, SyncMode::LossyDegraded);
        let snap = metrics.snapshot();
        assert_eq!(snap.nodes_failed, 1);
        assert_eq!(snap.degraded_iterations, 5);
    }

    #[test]
    fn straggler_is_detected_and_gates_only_synchronized_mode() {
        use crate::fault::Fault;
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let metrics = FaultMetrics::new();
        let plan = FaultPlan::new(vec![Fault::Straggler {
            node: 1,
            from_iter: 4,
            to_iter: 7,
            factor: 4.0,
        }]);
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            10,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        assert!(run.iterations[3].stragglers.is_empty());
        assert_eq!(run.iterations[4].stragglers, vec![1]);
        assert_eq!(run.iterations[6].stragglers, vec![1]);
        assert!(run.iterations[7].stragglers.is_empty(), "recovers after phase");
        // One detection per contiguous slow phase, not per iteration.
        assert_eq!(metrics.snapshot().stragglers_detected, 1);
        // In synchronized mode the straggler gates everyone.
        let healthy = run.iterations[2].total_ms;
        assert!(
            run.iterations[5].total_ms > 2.0 * healthy,
            "straggler must slow the synchronized iteration: {} vs {}",
            run.iterations[5].total_ms,
            healthy
        );
        assert_eq!(run.final_mode, SyncMode::Synchronized);
    }

    #[test]
    fn single_node_ring_straggles_without_communication() {
        use crate::fault::Fault;
        // With one node the "ring" is trivial: no communication ever, and
        // the median observation used for the rolling estimate IS the
        // straggling node, so the estimate self-poisons after a couple of
        // slow iterations and detection drops out mid-phase.
        let spec = ClusterSpec {
            nodes: 1,
            network: NetworkModel::infiniband_like(),
        };
        let metrics = FaultMetrics::new();
        let plan = FaultPlan::new(vec![Fault::Straggler {
            node: 0,
            from_iter: 3,
            to_iter: 6,
            factor: 4.0,
        }]);
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            8,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        assert_eq!(run.iterations.len(), 8);
        assert_eq!(run.live_nodes, 1);
        assert_eq!(run.final_mode, SyncMode::Synchronized);
        for r in &run.iterations {
            assert_eq!(r.comm_ms, 0.0, "one node has nobody to reduce with");
            assert_eq!(r.exposed_comm_ms, 0.0);
            assert_eq!(r.live_nodes, 1);
        }
        // Detection fires against the healthy history (est = h, observed
        // 4h > 2h)...
        assert_eq!(run.iterations[3].stragglers, vec![0]);
        // ...survives one EWMA fold (est = 1.9h, 4h > 3.8h)...
        assert_eq!(run.iterations[4].stragglers, vec![0]);
        // ...then the straggled medians have dragged the estimate past
        // the threshold (est = 2.53h, 4h < 5.06h): still slow, no longer
        // flagged. One detection for the whole phase.
        assert!(run.iterations[5].stragglers.is_empty());
        assert!(run.iterations[6].stragglers.is_empty(), "healthy again");
        assert_eq!(metrics.snapshot().stragglers_detected, 1);
        // The slowdown itself is real regardless of flagging.
        let healthy = run.iterations[1].total_ms;
        assert!(run.iterations[5].total_ms > 2.0 * healthy);
    }

    #[test]
    fn single_node_crash_ends_the_run() {
        use crate::fault::Fault;
        let spec = ClusterSpec {
            nodes: 1,
            network: NetworkModel::infiniband_like(),
        };
        let metrics = FaultMetrics::new();
        let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 0, iter: 2 }]);
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            5,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        // Nothing survives to run iteration 2; the trace truncates there.
        assert_eq!(run.iterations.len(), 2);
        assert_eq!(run.live_nodes, 0);
        assert_eq!(metrics.snapshot().nodes_failed, 1);
    }

    #[test]
    fn all_nodes_straggling_poisons_the_median_and_suppresses_detection() {
        use crate::fault::Fault;
        // The rolling estimate folds the *median* live node so that one
        // straggler cannot poison the baseline — but when every node
        // straggles the median is the straggled time, the estimate chases
        // it, and detection goes quiet while the cluster is still slow.
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let metrics = FaultMetrics::new();
        let faults = (0..4)
            .map(|node| Fault::Straggler {
                node,
                from_iter: 4,
                to_iter: 9,
                factor: 4.0,
            })
            .collect();
        let plan = FaultPlan::new(faults);
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            10,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        assert!(run.iterations[3].stragglers.is_empty());
        // First two slow iterations: flagged against the healthy history.
        assert_eq!(run.iterations[4].stragglers, vec![0, 1, 2, 3]);
        assert_eq!(run.iterations[5].stragglers, vec![0, 1, 2, 3]);
        // From the third slow iteration the EWMA has absorbed the
        // straggled median (est = 2.53h, threshold 2x) and every node
        // looks "normal" again — detection suppressed, not recovery.
        assert!(run.iterations[6].stragglers.is_empty());
        assert!(run.iterations[8].stragglers.is_empty());
        let healthy = run.iterations[2].total_ms;
        assert!(
            run.iterations[8].total_ms > 2.0 * healthy,
            "iteration is still gated by the slowdown: {} vs {}",
            run.iterations[8].total_ms,
            healthy
        );
        // One detection per node for the phase, no deaths, mode intact.
        assert_eq!(metrics.snapshot().stragglers_detected, 4);
        assert_eq!(metrics.snapshot().nodes_failed, 0);
        assert_eq!(run.final_mode, SyncMode::Synchronized);
        assert_eq!(run.live_nodes, 4);
    }

    #[test]
    fn transfer_faults_cost_retries_and_exhaustion_kills_the_sender() {
        use crate::fault::Fault;
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let policy = FaultPolicy {
            max_retries: 2,
            ..FaultPolicy::default()
        };
        // One recoverable drop at iter 1; three faults (over budget) from
        // node 3 at iter 4.
        let plan = FaultPlan::new(vec![
            Fault::TransferDrop { node: 0, iter: 1, layer: 5 },
            Fault::TransferDrop { node: 3, iter: 4, layer: 2 },
            Fault::TransferCorrupt { node: 3, iter: 4, layer: 2 },
            Fault::TransferDrop { node: 3, iter: 4, layer: 2 },
        ]);
        let metrics = FaultMetrics::new();
        let run = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            8,
            &plan,
            &policy,
            &metrics,
        )
        .unwrap();
        assert!(run.iterations[1].retry_penalty_ms > 0.0);
        assert_eq!(run.iterations[1].mode, SyncMode::Synchronized);
        // Node 3 exhausts its budget during iter 4 and leaves the ring.
        assert_eq!(run.iterations[4].newly_dead, vec![3]);
        assert_eq!(run.iterations[5].live_nodes, 3);
        assert_eq!(run.final_mode, SyncMode::LossyDegraded);
        let snap = metrics.snapshot();
        assert_eq!(snap.nodes_failed, 1);
        assert_eq!(snap.transfers_dropped, 2, "third fault exceeded the budget");
        assert_eq!(snap.transfers_corrupted, 1);
        assert_eq!(snap.retries, 3);
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        let ok = FaultPolicy::default();
        assert!(ok.validate().is_ok());
        assert!(FaultPolicy { transfer_timeout_ms: 0.0, ..ok }.validate().is_err());
        assert!(FaultPolicy { max_retries: 0, ..ok }.validate().is_err());
        assert!(FaultPolicy { backoff_cap_ms: 0.1, backoff_base_ms: 1.0, ..ok }
            .validate()
            .is_err());
        assert!(FaultPolicy { straggler_threshold: 1.0, ..ok }.validate().is_err());
        assert!(FaultPolicy { ewma_alpha: 0.0, ..ok }.validate().is_err());
        let spec = ClusterSpec {
            nodes: 0,
            network: NetworkModel::aries_like(),
        };
        let err = simulate_run(
            &spec,
            &vgg_like_layers(),
            8,
            1,
            &FaultPlan::none(),
            &ok,
            &FaultMetrics::new(),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig { .. }));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPolicy::default();
        assert_eq!(p.backoff_ms(0), 1.0);
        assert_eq!(p.backoff_ms(1), 2.0);
        assert_eq!(p.backoff_ms(2), 4.0);
        assert_eq!(p.backoff_ms(10), 50.0, "clamped to the cap");
        assert_eq!(p.backoff_ms(63), 50.0, "no shift overflow");
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_saturates_with_nodes() {
        let net = NetworkModel::aries_like();
        let t8 = net.allreduce_time(1e6, 8);
        let t16 = net.allreduce_time(1e6, 16);
        assert!(t16 < t8 * 1.5, "ring saturates: {t8} vs {t16}");
        assert!(net.allreduce_time(2e6, 8) > t8);
        assert_eq!(net.allreduce_time(1e6, 1), 0.0);
    }

    #[test]
    fn merge_rejects_nonfinite_contributions() {
        let metrics = FaultMetrics::new();
        let a = [1.0f32, 2.0, 3.0];
        let b = [f32::NAN, 2.0, 3.0];
        let c = [3.0f32, 4.0, f32::INFINITY];
        let d = [5.0f32, 6.0, 7.0];
        let (merged, rejected) =
            merge_finite_gradients(&[&a, &b, &c, &d], &metrics).unwrap();
        assert_eq!(rejected, vec![1, 2]);
        assert_eq!(merged, vec![3.0, 4.0, 5.0], "mean of the two clean nodes");
        assert_eq!(metrics.snapshot().gradients_rejected, 2);

        // Every contribution poisoned: the only safe merge is a zero
        // (skipped) update.
        let (merged, rejected) = merge_finite_gradients(&[&b, &c], &metrics).unwrap();
        assert_eq!(rejected, vec![0, 1]);
        assert!(merged.iter().all(|&v| v == 0.0));

        // Ill-formed rings are rejected outright.
        assert!(merge_finite_gradients(&[], &metrics).is_err());
        let short = [1.0f32];
        assert!(merge_finite_gradients(&[&a, &short], &metrics).is_err());
    }

    #[test]
    fn grad_poison_evicts_node_and_degrades_the_ring() {
        use crate::fault::Fault;
        let spec = ClusterSpec {
            nodes: 4,
            network: NetworkModel::infiniband_like(),
        };
        let plan = FaultPlan::new(vec![Fault::GradPoison { node: 1, iter: 2 }]);
        let metrics = FaultMetrics::new();
        let rep = simulate_run(
            &spec,
            &vgg_like_layers(),
            64,
            6,
            &plan,
            &FaultPolicy::default(),
            &metrics,
        )
        .unwrap();
        assert_eq!(rep.iterations[2].newly_dead, vec![1]);
        assert_eq!(rep.live_nodes, 3);
        assert_eq!(rep.final_mode, SyncMode::LossyDegraded);
        // The ring shrinks from the *next* iteration.
        assert_eq!(rep.iterations[2].live_nodes, 4);
        assert_eq!(rep.iterations[3].live_nodes, 3);
        assert_eq!(rep.iterations[3].mode, SyncMode::LossyDegraded);
        let snap = metrics.snapshot();
        assert_eq!(snap.gradients_rejected, 1);
        assert_eq!(snap.nodes_failed, 1);
    }

    /// End-to-end containment over *real* executors: three replicas
    /// train on shards with their gradients merged through
    /// [`merge_finite_gradients`]; at one iteration node 1 contributes
    /// NaN gradients. The merge must stay finite, the poisoned node must
    /// be counted, and the survivors must keep converging.
    #[test]
    fn degraded_allreduce_survives_a_poisoned_replica() {
        use latte_core::{compile, OptLevel};
        use latte_nn::models::{mlp, ModelConfig};

        let cfg = ModelConfig {
            batch: 4,
            input_size: 6,
            channel_div: 1,
            classes: 3,
            with_loss: true,
            seed: 33,
        };
        let nodes = 3;
        let mut replicas: Vec<crate::exec::Executor> = (0..nodes)
            .map(|_| {
                crate::exec::Executor::new(
                    compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let param_names: Vec<(String, String)> = replicas[0]
            .params()
            .iter()
            .map(|b| (b.value.clone(), b.grad.clone()))
            .collect();
        // Master weights start from replica 0.
        let mut master: Vec<Vec<f32>> = param_names
            .iter()
            .map(|(v, _)| replicas[0].read_buffer(v).unwrap())
            .collect();

        let shard = |node: usize, iter: usize| -> (Vec<f32>, Vec<f32>) {
            let mut data = Vec::with_capacity(4 * 6);
            let mut labels = Vec::with_capacity(4);
            for item in 0..4 {
                let class = (node + iter + item) % 3;
                for j in 0..6 {
                    data.push(if j % 3 == class { 1.0 } else { 0.1 });
                }
                labels.push(class as f32);
            }
            (data, labels)
        };

        let metrics = FaultMetrics::new();
        let poisoned_iter = 5;
        let mut first_loss = None;
        let mut last_loss = 0.0f32;
        for iter in 0..30 {
            let mut contributions: Vec<Vec<Vec<f32>>> = Vec::with_capacity(nodes);
            let mut losses = Vec::with_capacity(nodes);
            for (node, exec) in replicas.iter_mut().enumerate() {
                for ((v, _), m) in param_names.iter().zip(&master) {
                    exec.write_buffer(v, m).unwrap();
                }
                let (data, labels) = shard(node, iter);
                exec.set_input("data", &data).unwrap();
                exec.set_input("label", &labels).unwrap();
                exec.forward();
                losses.push(exec.loss());
                exec.backward();
                let mut grads: Vec<Vec<f32>> = param_names
                    .iter()
                    .map(|(_, g)| exec.read_buffer(g).unwrap())
                    .collect();
                if node == 1 && iter == poisoned_iter {
                    for g in &mut grads {
                        for v in g.iter_mut() {
                            *v = f32::NAN;
                        }
                    }
                }
                contributions.push(grads);
            }
            for (p, _) in param_names.iter().enumerate() {
                let views: Vec<&[f32]> =
                    contributions.iter().map(|c| c[p].as_slice()).collect();
                let (merged, rejected) = merge_finite_gradients(&views, &metrics).unwrap();
                assert!(
                    merged.iter().all(|v| v.is_finite()),
                    "merged gradient must stay finite"
                );
                if iter == poisoned_iter {
                    assert_eq!(rejected, vec![1]);
                }
                for (m, g) in master[p].iter_mut().zip(&merged) {
                    *m -= 0.1 * g;
                }
            }
            let mean_loss = losses.iter().sum::<f32>() / nodes as f32;
            first_loss.get_or_insert(mean_loss);
            last_loss = mean_loss;
        }
        assert!(last_loss.is_finite());
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "survivors must keep converging: {} -> {last_loss}",
            first_loss.unwrap()
        );
        // One poisoned contribution per parameter buffer.
        assert_eq!(
            metrics.snapshot().gradients_rejected,
            param_names.len() as u64
        );
    }
}
