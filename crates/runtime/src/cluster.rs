//! Cluster-level data parallelism as a discrete-event simulation
//! (the paper's Section 6 and Figures 18–19).
//!
//! No MPI cluster exists in this environment, so the *machines* are
//! modeled while the *algorithm* is reproduced exactly: gradient
//! summation over model replicas, with each layer's asynchronous
//! all-reduce (`MPI_Iallreduce`, modeled as a ring) initiated the moment
//! its backward completes and overlapped with the remaining
//! back-propagation — the mechanism the paper credits for its scaling
//! ("as soon as a gradient is computed, Latte initiates asynchronous
//! communication ... and then continues computing more gradients").
//!
//! Per-layer compute times come from *measured* single-node executor
//! profiles (see [`crate::exec::Executor::backward_timed`]); the network
//! is a latency/bandwidth model with a single NIC per node (transfers
//! serialize).

/// A network fabric model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Per-node injection bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Cray-Aries-like ("dragonfly") parameters for the Cori evaluation.
    pub fn aries_like() -> Self {
        NetworkModel {
            latency: 1.5e-6,
            bandwidth: 8e9,
        }
    }

    /// FDR-InfiniBand-like parameters for the commodity cluster.
    pub fn infiniband_like() -> Self {
        NetworkModel {
            latency: 3e-6,
            bandwidth: 6e9,
        }
    }

    /// Ring all-reduce time for `bytes` across `nodes`:
    /// `2(N-1)` steps of `bytes/N` plus per-step latency.
    pub fn allreduce_time(&self, bytes: f64, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        2.0 * (n - 1.0) * (self.latency + bytes / n / self.bandwidth)
    }
}

/// One layer's contribution to an iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Group name (diagnostic).
    pub name: String,
    /// Forward milliseconds per *item* on one node.
    pub fwd_ms_per_item: f64,
    /// Backward milliseconds per item on one node.
    pub bwd_ms_per_item: f64,
    /// Fixed per-batch overhead milliseconds (copies, kernel setup) —
    /// this is what makes small per-node batches less efficient, the
    /// effect behind the Figure-18 efficiency droop.
    pub fixed_ms: f64,
    /// Gradient bytes this layer contributes to the all-reduce.
    pub grad_bytes: f64,
}

/// The cluster being simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Fabric model.
    pub network: NetworkModel,
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Pure compute milliseconds (forward + backward on one node).
    pub compute_ms: f64,
    /// Total communication milliseconds (all layers' all-reduces).
    pub comm_ms: f64,
    /// Communication *not* hidden behind backward compute.
    pub exposed_comm_ms: f64,
    /// End-to-end iteration milliseconds.
    pub total_ms: f64,
}

impl IterationReport {
    /// Images per second for a global batch.
    pub fn throughput(&self, global_batch: usize) -> f64 {
        global_batch as f64 / (self.total_ms / 1e3)
    }
}

/// Simulates one data-parallel iteration.
///
/// `layers` are in *forward* order; backward runs them in reverse, and
/// each layer's gradient all-reduce is enqueued on the NIC the moment its
/// backward finishes.
pub fn simulate_iteration(
    spec: &ClusterSpec,
    layers: &[LayerProfile],
    per_node_batch: usize,
) -> IterationReport {
    let items = per_node_batch as f64;
    let fwd_ms: f64 = layers
        .iter()
        .map(|l| l.fixed_ms + l.fwd_ms_per_item * items)
        .sum();
    // Backward with overlapped communication: single NIC, FIFO.
    let mut t = fwd_ms;
    let mut nic_free = fwd_ms;
    let mut comm_ms = 0.0;
    for l in layers.iter().rev() {
        t += l.fixed_ms + l.bwd_ms_per_item * items;
        let ar = spec
            .network
            .allreduce_time(l.grad_bytes, spec.nodes)
            * 1e3;
        comm_ms += ar;
        let start = t.max(nic_free);
        nic_free = start + ar;
    }
    let total = t.max(nic_free);
    IterationReport {
        compute_ms: fwd_ms + (t - fwd_ms),
        comm_ms,
        exposed_comm_ms: (nic_free - t).max(0.0),
        total_ms: total,
    }
}

/// A strong-scaling sweep (fixed global batch split across nodes; the
/// Figure-18 Cori experiment). Returns `(nodes, throughput, efficiency)`
/// rows; efficiency is relative to perfect linear scaling of the
/// single-node throughput.
pub fn strong_scaling(
    network: NetworkModel,
    layers: &[LayerProfile],
    global_batch: usize,
    node_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    let base = simulate_iteration(
        &ClusterSpec { nodes: 1, network },
        layers,
        global_batch,
    )
    .throughput(global_batch);
    node_counts
        .iter()
        .map(|&n| {
            let per_node = (global_batch / n).max(1);
            let rep = simulate_iteration(&ClusterSpec { nodes: n, network }, layers, per_node);
            let thr = rep.throughput(per_node * n);
            (n, thr, thr / (base * n as f64))
        })
        .collect()
}

/// A weak-scaling sweep (fixed per-node batch; the Figure-19 commodity
/// cluster experiment). Returns `(nodes, throughput, efficiency)` rows.
pub fn weak_scaling(
    network: NetworkModel,
    layers: &[LayerProfile],
    per_node_batch: usize,
    node_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    let base = simulate_iteration(
        &ClusterSpec { nodes: 1, network },
        layers,
        per_node_batch,
    )
    .throughput(per_node_batch);
    node_counts
        .iter()
        .map(|&n| {
            let rep =
                simulate_iteration(&ClusterSpec { nodes: n, network }, layers, per_node_batch);
            let thr = rep.throughput(per_node_batch * n);
            (n, thr, thr / (base * n as f64))
        })
        .collect()
}

/// Builds *analytic* layer profiles at the paper's published model scale:
/// per-layer times from floating-point operation counts at an assumed
/// effective node throughput, gradient bytes from exact parameter counts.
/// Used to project cluster behaviour in the regime the paper measured
/// (full-width models, where communication is substantial) without
/// needing hours of single-core measurement.
///
/// Each entry of `layers` is `(name, fwd_flops_per_item, param_count)`.
///
/// `serial_items` models the many-core node's loss of parallel
/// efficiency at small batches (the paper attributes the Figure-18 droop
/// to "a reduction in the amount of available parallelism"): each layer
/// pass carries a fixed cost equivalent to processing `serial_items`
/// additional items, so per-node efficiency is roughly
/// `items / (items + serial_items)`.
pub fn analytic_profiles(
    layers: &[(String, f64, f64)],
    node_gflops: f64,
    serial_items: f64,
) -> Vec<LayerProfile> {
    layers
        .iter()
        .map(|(name, flops, params)| {
            let fwd = flops / (node_gflops * 1e9) * 1e3;
            LayerProfile {
                name: name.clone(),
                fwd_ms_per_item: fwd,
                // Backward is roughly 2x forward (two GEMMs per layer).
                bwd_ms_per_item: 2.0 * fwd,
                // Split across the two phases (simulate adds it twice).
                fixed_ms: serial_items * 1.5 * fwd,
                grad_bytes: params * 4.0,
            }
        })
        .collect()
}

/// Builds layer profiles from measured per-group forward/backward times
/// (see `Executor::forward_timed`), distributing gradient bytes by the
/// ensembles named in each backward group.
pub fn profiles_from_measurements(
    fwd: &[(String, f64)],
    bwd: &[(String, f64)],
    batch: usize,
    grad_bytes_by_group: impl Fn(&str) -> f64,
    fixed_fraction: f64,
) -> Vec<LayerProfile> {
    // Pair forward groups with backward groups by position from the ends
    // (backward runs in reverse order and may have fewer groups — e.g.
    // data layers have no backward).
    let items = batch as f64;
    fwd.iter()
        .enumerate()
        .map(|(i, (name, f_ms))| {
            let b_ms = bwd
                .iter()
                .rev()
                .nth(i)
                .map(|(_, m)| *m)
                .unwrap_or(0.0);
            LayerProfile {
                name: name.clone(),
                fwd_ms_per_item: f_ms * (1.0 - fixed_fraction) / items,
                bwd_ms_per_item: b_ms * (1.0 - fixed_fraction) / items,
                fixed_ms: (f_ms + b_ms) * fixed_fraction,
                grad_bytes: grad_bytes_by_group(name),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_like_layers() -> Vec<LayerProfile> {
        // Coarse VGG-ish: heavy convs with small gradients, light FCs
        // with huge gradients.
        let mut layers = Vec::new();
        for (i, (fwd, bwd, mb)) in [
            (4.0, 8.0, 0.15),
            (3.0, 6.0, 0.3),
            (2.5, 5.0, 2.3),
            (2.0, 4.0, 9.4),
            (1.0, 2.0, 9.4),
            (0.6, 1.2, 400.0),
            (0.2, 0.4, 64.0),
            (0.1, 0.2, 16.0),
        ]
        .into_iter()
        .enumerate()
        {
            layers.push(LayerProfile {
                name: format!("layer{i}"),
                fwd_ms_per_item: fwd / 10.0,
                bwd_ms_per_item: bwd / 10.0,
                fixed_ms: 0.4,
                grad_bytes: mb * 1e6,
            });
        }
        layers
    }

    #[test]
    fn single_node_has_no_communication() {
        let rep = simulate_iteration(
            &ClusterSpec {
                nodes: 1,
                network: NetworkModel::aries_like(),
            },
            &vgg_like_layers(),
            64,
        );
        assert_eq!(rep.comm_ms, 0.0);
        assert_eq!(rep.exposed_comm_ms, 0.0);
    }

    #[test]
    fn weak_scaling_is_near_linear() {
        // Figure 19's claim: constant communication cost as nodes grow,
        // ~84% efficiency at 32 nodes.
        let rows = weak_scaling(
            NetworkModel::infiniband_like(),
            &vgg_like_layers(),
            64,
            &[1, 2, 4, 8, 16, 32],
        );
        let eff32 = rows.last().unwrap().2;
        assert!(eff32 > 0.7, "weak-scaling efficiency at 32 nodes: {eff32}");
        // Efficiency roughly flat: ring all-reduce cost saturates.
        let eff2 = rows[1].2;
        assert!((eff2 - eff32).abs() < 0.25, "{eff2} vs {eff32}");
    }

    #[test]
    fn strong_scaling_droops_at_small_batches() {
        // Figure 18's claim: efficiency drops as per-node batch shrinks.
        let rows = strong_scaling(
            NetworkModel::aries_like(),
            &vgg_like_layers(),
            512,
            &[1, 2, 4, 8, 16, 32, 64],
        );
        let eff: Vec<f64> = rows.iter().map(|r| r.2).collect();
        assert!(eff[0] > 0.99);
        assert!(
            eff.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "monotone droop: {eff:?}"
        );
        assert!(eff[6] < 0.9, "64-node efficiency must droop: {}", eff[6]);
        assert!(eff[6] > 0.1, "but not collapse entirely: {}", eff[6]);
        // At moderate node counts the droop is mild (the paper's curve
        // stays near-linear through 8 nodes).
        assert!(eff[3] > 0.6, "8-node efficiency: {}", eff[3]);
    }

    #[test]
    fn overlap_hides_most_communication() {
        let spec = ClusterSpec {
            nodes: 16,
            network: NetworkModel::infiniband_like(),
        };
        let rep = simulate_iteration(&spec, &vgg_like_layers(), 64);
        assert!(
            rep.exposed_comm_ms < rep.comm_ms * 0.6,
            "exposed {} of {}",
            rep.exposed_comm_ms,
            rep.comm_ms
        );
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_saturates_with_nodes() {
        let net = NetworkModel::aries_like();
        let t8 = net.allreduce_time(1e6, 8);
        let t16 = net.allreduce_time(1e6, 16);
        assert!(t16 < t8 * 1.5, "ring saturates: {t8} vs {t16}");
        assert!(net.allreduce_time(2e6, 8) > t8);
        assert_eq!(net.allreduce_time(1e6, 1), 0.0);
    }
}
