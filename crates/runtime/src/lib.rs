//! # latte-runtime
//!
//! The Latte runtime: buffer allocation, kernel lowering ("code
//! generation"), the execution engine, solvers, data pipelines, and the
//! data-parallel / heterogeneous / cluster training machinery of the
//! paper's Section 6.
//!
//! * [`Executor`] — lowers a `latte_core::CompiledNet` to native kernels
//!   and runs forward/backward passes over an allocated buffer store.
//! * [`ExecutionPlan`] — the lowered groups plus the liveness-planned
//!   buffer arena (`ExecConfig::arena`) that lets non-overlapping
//!   intermediates share storage.
//! * [`solver`] — SGD (+momentum, LR policies), RMSProp, AdaGrad, and the
//!   `solve` training loop.
//! * [`data`] — synthetic datasets and the double-buffered input loader.
//! * [`pool`] — the persistent worker pool (the paper's
//!   `schedule(static, 1)` OpenMP team): per-worker GEMM engines,
//!   pool-owned gradient-lane scratch, deterministic static interleaving.
//! * [`parallel`] — intra-node data parallelism with synchronized or
//!   *lossy* gradient accumulation (Figure 20).
//! * [`accel`] — the simulated-coprocessor chunk scheduler (Figure 17).
//! * [`cluster`] — the discrete-event cluster simulation with overlapped
//!   ring all-reduce (Figures 18–19), including the fault-aware
//!   multi-iteration mode with retries, straggler detection, and
//!   degraded (lossy) all-reduce.
//! * [`frame`] — the shared wire-framing conventions (CRC32-sealed
//!   payloads behind a length prefix) used by both the training
//!   transport and the `latte-serve` network front-end.
//! * [`transport`] — the real communicator layer: framed, CRC-checked,
//!   deadline-bounded gradient exchange behind the `Transport` trait,
//!   with an in-process channel backend (deterministic tests) and a TCP
//!   backend (true multi-process rings).
//! * [`ring`] — ring all-reduce over a `Transport`: overlapped
//!   reduce-scatter/all-gather with retries, exponential backoff, EWMA
//!   straggler detection, and ring healing into the lossy mode.
//! * [`dist`] — the distributed trainer: layer-by-layer gradient
//!   streaming into a background comm thread, bit-identical to the
//!   serial oracle in synchronized mode.
//! * [`fault`] — deterministic, seedable fault injection (crashes,
//!   stragglers, transfer drops/corruption, I/O errors, process death),
//!   including `FaultyTransport` to replay fault plans against the real
//!   transport.
//! * [`supervisor`] — the fault-tolerant training loop: periodic atomic
//!   checkpoints, crash detection, and resume-from-checkpoint with a
//!   loss-continuity check.
//! * [`health`] — numerical-health guardrails: NaN/Inf tensor
//!   sentinels, loss-anomaly classification (non-finite / spike /
//!   plateau), and the quarantine / LR-cut / rollback reaction policies
//!   the supervisor applies.
//! * [`checkpoint`] — crash-safe (atomic, CRC-verified) weight
//!   serialization.
//! * [`metrics`] — evaluation helpers and the fault-event counters.
//! * [`registry`] — extern kernels for normalization ensembles.

#![warn(missing_docs)]

pub mod accel;
pub mod checkpoint;
pub mod cluster;
pub mod data;
pub mod dist;
pub mod error;
pub mod fault;
pub mod frame;
pub mod health;
pub mod metrics;
mod exec;
mod lower;
pub mod parallel;
mod plan;
pub mod pool;
pub mod registry;
pub mod ring;
pub mod solver;
pub mod store;
pub mod supervisor;
pub mod trace;
pub mod transport;
pub mod tune;

pub use error::RuntimeError;
pub use exec::{CompiledProgram, ExecConfig, Executor, GradBucket};
pub use plan::ExecutionPlan;
pub use trace::{TraceCache, TraceCacheStats};
pub use tune::{TuneError, Tuner, TunerStats};
